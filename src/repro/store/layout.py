"""Store directory layout: names, shard discovery, path helpers.

A *store* is a directory with up to three kinds of children::

    <root>/objects/<key[:2]>/<key>.pkl   content-addressed object area
    <root>/runs.jsonl                    run-history table (JSONL)
    <root>/shard-<host>-<pid>[-...]/     per-writer shards, each again
                                         {objects/, runs.jsonl}

Every layer of nesting is the same shape, which is what makes merging
uniform: a shard is merged into its store exactly the way a foreign
store is merged into a master.
"""

from __future__ import annotations

import os
import re
from typing import List, Optional, Tuple

#: Object-area directory name inside a store (and inside each shard).
OBJECTS_DIRNAME = "objects"

#: Prefix marking per-writer shard directories inside a store.
SHARD_PREFIX = "shard-"

#: Characters allowed in a shard-name component; anything else is
#: squashed to ``-`` so hostnames never produce hostile paths.
_SAFE = re.compile(r"[^A-Za-z0-9_.-]+")


def _safe_component(text: str) -> str:
    return _SAFE.sub("-", text) or "anon"


def default_shard_name(suffix: str = "") -> str:
    """A shard directory name unique to this writer process.

    ``shard-<host>-<pid>`` identifies one process on one machine — two
    concurrent invocations (or two machines sharing a network store)
    can never collide.  An optional ``suffix`` distinguishes finer
    writers within one process (worker threads).
    """
    name = f"{SHARD_PREFIX}{safe_hostname()}-{os.getpid()}"
    if suffix:
        name += f"-{_safe_component(suffix)}"
    return name


def is_shard_dir(name: str) -> bool:
    """True when a store child directory name is a shard."""
    return name.startswith(SHARD_PREFIX)


def safe_hostname() -> str:
    """This machine's hostname as it appears in shard names."""
    try:
        host = os.uname().nodename
    except AttributeError:  # pragma: no cover - non-POSIX
        host = os.environ.get("COMPUTERNAME", "host")
    return _safe_component(host)


#: Worker sub-shards — the per-worker object areas a parallel
#: store-backed pipeline arms (``-w<index>`` suffix).  Unlike ``K/N``
#: corpus shards, these are join artifacts: they only outlive their
#: process when an interrupted run skipped the absorb, so a later store
#: open may safely fold them back.
_WORKER_SHARD = re.compile(
    rf"^{SHARD_PREFIX}(?P<host>.+)-(?P<pid>\d+)-w\d+$")


def parse_worker_shard(name: str) -> Optional[Tuple[str, int]]:
    """``(host, pid)`` when ``name`` is a worker sub-shard, else None."""
    match = _WORKER_SHARD.match(name)
    if match is None:
        return None
    return match.group("host"), int(match.group("pid"))


def list_shards(root: str) -> List[str]:
    """The store's shard directory paths, sorted by name.

    Missing or unreadable roots yield an empty list — shard discovery
    is always best-effort.
    """
    try:
        names = os.listdir(root)
    except OSError:
        return []
    return [os.path.join(root, name) for name in sorted(names)
            if is_shard_dir(name)
            and os.path.isdir(os.path.join(root, name))]
