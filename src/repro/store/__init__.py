"""Sharded, content-addressed persistence for the assessment stack.

One store directory holds everything an assessment persists across
runs, processes, and machines:

* ``objects/`` — the content-addressed object area (two-level fanout,
  atomic writes); the result cache's entries live here;
* ``runs.jsonl`` — the run-history table (one JSON manifest per run),
  subsuming the PR 6 run ledger format byte-for-byte;
* ``shard-<host>-<pid>*/`` — per-process shard directories, each a
  miniature store (its own object area + run table) that one writer
  owns exclusively, so concurrent invocations and worker pools never
  contend on shared files.

:func:`~repro.store.merge.merge_into` folds any number of shards (and
whole foreign stores, and legacy ``--ledger`` JSONL directories) into a
master store *idempotently and commutatively*: the merged master's
bytes are identical regardless of merge order, because objects resolve
content-addressed and run manifests union by run id into a canonical
sorted table.  That is the scale-out contract — one corpus split across
N machines, each writing its own shard, merged into one master that a
final assessment replays byte-identically (the mini-coverage
``Storage`` pattern: process-private partial databases combined into a
master).

The legacy surfaces are thin facades over this layer:
:class:`repro.core.cache.ResultCache` is an :class:`ObjectStore` whose
object area is its root directory, and
:class:`repro.obs.runlog.RunLedger` is a :class:`RunHistory`.
"""

from .gc import GcStats, collect_garbage
from .history import (
    LEDGER_FILENAME,
    LEDGER_SCHEMA,
    RunHistory,
    RunRecord,
    new_run_id,
)
from .layout import (
    OBJECTS_DIRNAME,
    SHARD_PREFIX,
    default_shard_name,
    is_shard_dir,
    list_shards,
)
from .merge import MergeStats, import_ledger, merge_into, merge_shards
from .objects import CACHE_MISS, SCHEMA_TAG, ObjectStore
from .store import Store

__all__ = [
    "CACHE_MISS",
    "GcStats",
    "LEDGER_FILENAME",
    "LEDGER_SCHEMA",
    "MergeStats",
    "OBJECTS_DIRNAME",
    "ObjectStore",
    "RunHistory",
    "RunRecord",
    "SCHEMA_TAG",
    "SHARD_PREFIX",
    "Store",
    "collect_garbage",
    "default_shard_name",
    "import_ledger",
    "is_shard_dir",
    "list_shards",
    "merge_into",
    "merge_shards",
    "new_run_id",
]
