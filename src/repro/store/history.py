"""The run-history table: one JSON manifest per assessment run.

This subsumes the PR 6 run ledger.  The on-disk format is unchanged —
one ``runs.jsonl`` of :class:`RunRecord` objects, one ``os.O_APPEND``
JSON line per run — so every existing ledger directory *is* a valid
run history.  What the store layer adds on top:

* **Shard union.**  A history living at a store root also reads the
  run tables of the store's ``shard-*/`` directories, deduplicated by
  run id, so ``repro-trends`` and the report bridge see a live view of
  a fleet's runs even before a merge folds the shards in.
* **Canonical rewrite.**  :meth:`RunHistory.rewrite` serializes a set
  of raw manifests deterministically (sorted by timestamp + run id,
  canonical JSON) — the primitive :func:`~repro.store.merge.merge_into`
  uses to make merged masters byte-identical regardless of merge
  order.
* **Raw access.**  :meth:`RunHistory.raw_records` returns the parsed
  JSON objects unfiltered, so merging preserves fields this version of
  the reader does not know about.

Design points carried over from the ledger:

* **Append-only JSONL.**  One ``os.O_APPEND`` write per run keeps
  concurrent assessments from torn interleaving on POSIX, and a
  corrupt line (a crashed writer, a merge artifact) costs exactly that
  line: :meth:`RunHistory.records` skips it and counts it.
* **Schema-versioned.**  Every record carries ``schema``
  (:data:`LEDGER_SCHEMA`); readers default missing fields so old
  tables survive new readers and vice versa.
* **Fingerprinted.**  ``config_fingerprint`` and ``rules_fingerprint``
  let the trend layer refuse to compare apples to oranges — a finding
  spike means nothing across a rule-profile change, and a shard run
  (a slice of the corpus) is never compared against a full run.
"""

from __future__ import annotations

import json
import os
import uuid
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Tuple

from .layout import list_shards

__all__ = [
    "LEDGER_FILENAME",
    "LEDGER_SCHEMA",
    "RunHistory",
    "RunRecord",
    "new_run_id",
]

#: Bump when a :class:`RunRecord` field changes meaning (readers
#: tolerate added/removed fields without a bump).
LEDGER_SCHEMA = 1

#: Run-table file name inside a history (store, shard, or ledger)
#: directory.
LEDGER_FILENAME = "runs.jsonl"


def new_run_id() -> str:
    """A fresh 12-hex-digit run id."""
    return uuid.uuid4().hex[:12]


@dataclass
class RunRecord:
    """One assessment run's manifest — everything the trend layer needs.

    Attributes:
        run_id: the run's correlation id (also stamped into the event
            log and printed by the CLI).
        timestamp: ISO-8601 UTC wall time the record was built.
        schema: :data:`LEDGER_SCHEMA` at write time.
        config_fingerprint: digest over the assessment-relevant pipeline
            configuration (ASIL target, thresholds, style and
            architecture limits, strictness, shard slice).
        rules_fingerprint: how the active rule profile deviates from
            registry defaults (``""`` when no profile or no deviation).
        corpus: input statistics — ``files``, ``units``,
            ``unparseable``, ``loc``, ``functions``.
        jobs / executor: the fan-out configuration the run used.
        shard: the corpus slice this run assessed (``"K/N"``; ``""``
            for a full run).
        stages: per-stage wall seconds (``STAGE_NAMES`` keys; empty
            when the run was not traced).
        total_seconds: end-to-end assessment wall time.
        faults: parallel fault counters (``FAULT_COUNTERS``).
        cache: result-store accounting — ``hits``, ``misses``,
            ``puts``, ``corrupt_entries`` (empty when no cache).
        findings_by_rule: finding count per rule id.
        findings_by_severity: finding count per severity name.
        total_findings: sum over all checkers.
        degradations: contained faults (checker crashes, parser bugs).
        hotspots: top-K slowest files and checkers
            (see :func:`repro.obs.profile.hotspots`).
        exit_code: the CLI exit code the run reported (0 clean,
            3 degraded).
        objects: object keys this run read or wrote in its store —
            the GC retention set (empty for non-store-backed runs).
    """

    run_id: str
    timestamp: str
    schema: int = LEDGER_SCHEMA
    config_fingerprint: str = ""
    rules_fingerprint: str = ""
    corpus: Dict[str, int] = field(default_factory=dict)
    jobs: int = 1
    executor: str = "thread"
    shard: str = ""
    stages: Dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    faults: Dict[str, int] = field(default_factory=dict)
    cache: Dict[str, int] = field(default_factory=dict)
    findings_by_rule: Dict[str, int] = field(default_factory=dict)
    findings_by_severity: Dict[str, int] = field(default_factory=dict)
    total_findings: int = 0
    degradations: int = 0
    hotspots: Dict[str, List] = field(default_factory=dict)
    exit_code: int = 0
    objects: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """The JSON object written to the table (field order stable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, document: Dict) -> "RunRecord":
        """Rebuild a record, defaulting fields the document lacks.

        Unknown keys are dropped, so newer writers do not break older
        readers (and vice versa) — the schema-stability contract the
        trend layer depends on.
        """
        known = {f.name for f in fields(cls)}
        kept = {key: value for key, value in document.items()
                if key in known}
        kept.setdefault("run_id", "")
        kept.setdefault("timestamp", "")
        return cls(**kept)


def canonical_line(document: Dict) -> str:
    """One manifest serialized deterministically (sorted keys).

    Two histories holding the same set of manifests rewrite to the
    same bytes through this — the foundation of order-independent
    merges.
    """
    return json.dumps(document, sort_keys=True, separators=(", ", ": "))


def _sort_key(document: Dict) -> Tuple[str, str, str]:
    return (str(document.get("timestamp", "")),
            str(document.get("run_id", "")),
            canonical_line(document))


class RunHistory:
    """The run table of one store, shard, or legacy ledger directory.

    Attributes:
        directory: the history directory (created on first append).
        path: the ``runs.jsonl`` file inside it.
        corrupt_lines: unparseable lines skipped by the last
            :meth:`records` call.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.path = os.path.join(directory, LEDGER_FILENAME)
        self.corrupt_lines = 0

    # ------------------------------------------------------------------

    def append(self, record: RunRecord) -> str:
        """Write one record as a JSON line; returns the table path.

        Raises :class:`OSError` when the directory or file cannot be
        written — the CLI surfaces that as a clean exit 2, like any
        other unwritable output path.
        """
        os.makedirs(self.directory, exist_ok=True)
        line = json.dumps(record.to_dict()) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
        return self.path

    def _parse_file(self, path: str) -> List[Dict]:
        documents: List[Dict] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    document = json.loads(line)
                    if not isinstance(document, dict):
                        raise ValueError("record is not an object")
                    documents.append(document)
                except (ValueError, TypeError):
                    self.corrupt_lines += 1
        return documents

    def raw_records(self, shards: bool = True) -> List[Dict]:
        """Every parseable manifest as a raw JSON object, oldest first.

        The master table is read in file order, then each shard table
        (sorted by shard name), deduplicated by non-empty run id —
        first occurrence wins.  Corrupt lines are skipped and counted
        in :attr:`corrupt_lines`; a history with neither a table nor
        any shard raises :class:`OSError`.
        """
        self.corrupt_lines = 0
        shard_paths = ([os.path.join(shard, LEDGER_FILENAME)
                        for shard in list_shards(self.directory)]
                       if shards else [])
        try:
            documents = self._parse_file(self.path)
        except OSError:
            if not any(os.path.exists(path) for path in shard_paths):
                raise
            documents = []
        seen = {str(document.get("run_id", ""))
                for document in documents if document.get("run_id")}
        for path in shard_paths:
            try:
                shard_documents = self._parse_file(path)
            except OSError:
                continue
            for document in shard_documents:
                run_id = str(document.get("run_id", ""))
                if run_id and run_id in seen:
                    continue
                if run_id:
                    seen.add(run_id)
                documents.append(document)
        return documents

    def records(self) -> List[RunRecord]:
        """Every parseable record, oldest first (shard tables included).

        Corrupt lines are skipped and counted in :attr:`corrupt_lines`;
        a missing or unreadable history raises :class:`OSError`.
        """
        return [RunRecord.from_dict(document)
                for document in self.raw_records()]

    def tail(self, count: int) -> List[RunRecord]:
        """The last ``count`` records, oldest first."""
        records = self.records()
        return records[-max(0, count):] if count else []

    # ------------------------------------------------------------------

    def rewrite(self, documents: List[Dict]) -> str:
        """Atomically replace the table with a canonical serialization.

        Manifests are sorted by ``(timestamp, run_id)`` and written
        with sorted keys, so any two histories holding the same
        manifest set produce byte-identical tables — what makes
        merging commutative.  Returns the table path.
        """
        os.makedirs(self.directory, exist_ok=True)
        lines = [canonical_line(document) + "\n"
                 for document in sorted(documents, key=_sort_key)]
        temporary = f"{self.path}.tmp.{os.getpid()}"
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        os.replace(temporary, self.path)
        return self.path
