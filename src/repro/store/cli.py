"""Command-line store administration: ``repro-store``.

Subcommands::

    repro-store merge STORE [--from DIR ...] [--from-ledger DIR ...]
    repro-store gc STORE --max-age DAYS --max-size MB [--dry-run]
    repro-store stats STORE
    repro-store runs STORE [--last N]

``merge`` always folds the store's own ``shard-*/`` directories into
the master areas (``--keep-shards`` preserves them); ``--from`` pulls
in foreign stores or shard directories (read-only), and
``--from-ledger`` imports legacy ``--ledger`` JSONL run tables.  Exit
codes follow the house convention: 0 success, 2 unusable invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .gc import collect_garbage
from .merge import merge_into
from .store import Store


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Administer a sharded repro result store: merge "
                    "shards and foreign stores, collect garbage, "
                    "inspect objects and run history.")
    commands = parser.add_subparsers(dest="command", metavar="COMMAND")

    merge = commands.add_parser(
        "merge", help="fold shards (and other stores/ledgers) into "
                      "the master store")
    merge.add_argument("store", metavar="STORE",
                       help="master store directory")
    merge.add_argument("--from", dest="sources", action="append",
                       default=[], metavar="DIR",
                       help="also merge DIR (a store, shard, or "
                            "object area; read-only; repeatable)")
    merge.add_argument("--from-ledger", dest="ledgers", action="append",
                       default=[], metavar="DIR",
                       help="import a legacy --ledger JSONL "
                            "directory's run history (repeatable)")
    merge.add_argument("--keep-shards", action="store_true",
                       help="leave the store's own shard directories "
                            "in place after merging")
    merge.add_argument("--json", metavar="FILE",
                       help="also write the merge statistics as JSON")

    gc = commands.add_parser(
        "gc", help="sweep old/oversized cache entries (run-manifest "
                   "references are never swept)")
    gc.add_argument("store", metavar="STORE",
                    help="store directory to collect")
    gc.add_argument("--max-age", type=float, default=None,
                    metavar="DAYS",
                    help="sweep entries older than DAYS")
    gc.add_argument("--max-size", type=float, default=None,
                    metavar="MB",
                    help="keep at most MB of entries, newest first")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be swept without removing "
                         "anything")

    stats = commands.add_parser(
        "stats", help="object, run, and shard counts")
    stats.add_argument("store", metavar="STORE",
                       help="store directory to inspect")
    stats.add_argument("--json", metavar="FILE",
                       help="also write the statistics as JSON")

    runs = commands.add_parser(
        "runs", help="list the run history (shard tables included)")
    runs.add_argument("store", metavar="STORE",
                      help="store directory to inspect")
    runs.add_argument("--last", type=int, default=20, metavar="N",
                      help="show the last N runs (default 20)")
    return parser


def _write_json(path: str, document) -> bool:
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
    except OSError as error:
        print(f"cannot write JSON: {error}", file=sys.stderr)
        return False
    return True


def _merge(args) -> int:
    store = Store(args.store)
    try:
        stats = merge_into(store, sources=args.sources,
                           ledgers=args.ledgers,
                           remove_shards=not args.keep_shards)
    except OSError as error:
        print(f"cannot merge into store: {error}", file=sys.stderr)
        return 2
    print(f"merged {stats.shards_merged} shard(s)"
          + (f" + {len(stats.sources)} source(s)"
             if stats.sources else "")
          + f" into {args.store}")
    print(f"objects: {stats.objects_added} added, "
          f"{stats.objects_identical} identical, "
          f"{stats.objects_conflicts} conflict(s)")
    print(f"runs: {stats.runs_added} added, "
          f"{stats.runs_known} already recorded")
    if args.json and not _write_json(args.json, stats.to_dict()):
        return 2
    return 0


def _gc(args) -> int:
    if args.max_age is None and args.max_size is None:
        print("gc needs --max-age DAYS and/or --max-size MB",
              file=sys.stderr)
        return 2
    for name, value in (("--max-age", args.max_age),
                        ("--max-size", args.max_size)):
        if value is not None and value < 0:
            print(f"{name} must be >= 0, got {value}", file=sys.stderr)
            return 2
    stats = collect_garbage(Store(args.store),
                            max_age_days=args.max_age,
                            max_size_mb=args.max_size,
                            dry_run=args.dry_run)
    verb = "would sweep" if args.dry_run else "swept"
    print(f"{verb} {stats.swept} entr{'y' if stats.swept == 1 else 'ies'}"
          f" ({stats.swept_bytes} bytes) of {stats.examined} examined; "
          f"kept {stats.kept_fresh} fresh, "
          f"{stats.kept_referenced} run-referenced")
    return 0


def _stats(args) -> int:
    stats = Store(args.store).stats()
    print(f"store {stats.root}")
    print(f"  objects: {stats.objects} ({stats.object_bytes} bytes)")
    print(f"  runs:    {stats.runs}")
    print(f"  shards:  {stats.shards} "
          f"({stats.shard_objects} objects, {stats.shard_runs} runs "
          f"pending merge)")
    if args.json and not _write_json(args.json, stats.to_dict()):
        return 2
    return 0


def _runs(args) -> int:
    if args.last < 1:
        print(f"--last must be a positive integer, got {args.last}",
              file=sys.stderr)
        return 2
    history = Store(args.store).history()
    try:
        records = history.tail(args.last)
    except OSError as error:
        print(f"cannot read run history: {error}", file=sys.stderr)
        return 2
    if not records:
        print(f"store {args.store} holds no readable run manifests",
              file=sys.stderr)
        return 2
    header = (f"{'run':<13}{'timestamp':<21}{'shard':<8}{'units':>6}"
              f"{'findings':>9}{'exit':>5}")
    print(header)
    print("-" * len(header))
    for record in records:
        print(f"{record.run_id[:12]:<13}{record.timestamp[:20]:<21}"
              f"{(record.shard or '-'):<8}"
              f"{record.corpus.get('units', 0):>6}"
              f"{record.total_findings:>9}{record.exit_code:>5}")
    if history.corrupt_lines:
        print(f"({history.corrupt_lines} corrupt line(s) skipped)",
              file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        return 2
    return {"merge": _merge, "gc": _gc,
            "stats": _stats, "runs": _runs}[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
