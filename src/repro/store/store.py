"""The :class:`Store` facade: one directory, all three areas.

A store ties together the object area (:mod:`repro.store.objects`),
the run-history table (:mod:`repro.store.history`), and the shard
directories (:mod:`repro.store.layout`) under one root, and hands out
correctly-wired views of each:

* :meth:`Store.object_store` — the result-cache backend, optionally
  redirected into a writer-private shard;
* :meth:`Store.history` — the run table (shard tables unioned in);
* :meth:`Store.shard` — a shard's own history, for recording a shard
  run's manifest next to its objects.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from typing import Dict, List, Optional

from .history import LEDGER_FILENAME, RunHistory
from .layout import (
    OBJECTS_DIRNAME,
    default_shard_name,
    list_shards,
    parse_worker_shard,
    safe_hostname,
)
from .objects import ObjectStore, _process_alive


@dataclass(frozen=True)
class StoreStats:
    """What ``repro-store stats`` reports for one store."""

    root: str
    objects: int
    object_bytes: int
    runs: int
    shards: int
    shard_objects: int
    shard_runs: int

    def to_dict(self) -> Dict:
        return {
            "root": self.root,
            "objects": self.objects,
            "object_bytes": self.object_bytes,
            "runs": self.runs,
            "shards": self.shards,
            "shard_objects": self.shard_objects,
            "shard_runs": self.shard_runs,
        }


class Store:
    """One persistence root: ``objects/`` + ``runs.jsonl`` + shards."""

    def __init__(self, root: str) -> None:
        self.root = root

    # ------------------------------------------------------------------

    @property
    def objects_root(self) -> str:
        """The master object area directory."""
        return os.path.join(self.root, OBJECTS_DIRNAME)

    def shard_path(self, name: Optional[str] = None) -> str:
        """A shard directory path (this process's by default)."""
        return os.path.join(self.root,
                            name if name else default_shard_name())

    def shards(self) -> List[str]:
        """Existing shard directory paths, sorted."""
        return list_shards(self.root)

    # ------------------------------------------------------------------

    def object_store(self, shard: Optional[str] = None) -> ObjectStore:
        """The store's object area as a result-cache backend.

        Args:
            shard: when given (a shard directory name, or ``""`` for
                this process's default name), writes are redirected
                into that shard's private object area; reads still
                consult the master area first.  ``None`` writes
                straight into the master area.

        Either way the returned store has
        :attr:`~repro.store.objects.ObjectStore.worker_shard_base` set,
        so a parallel pipeline fans its workers' puts into private
        sub-shards and folds them back on join.
        """
        shard_root = None
        if shard is not None:
            shard_root = os.path.join(self.shard_path(shard or None),
                                      OBJECTS_DIRNAME)
        area = ObjectStore(self.objects_root, shard_root=shard_root)
        area.worker_shard_base = self.root
        area.record_references = True
        self.sweep_dead_worker_shards(area)
        return area

    def sweep_dead_worker_shards(self, area: ObjectStore) -> int:
        """Absorb worker sub-shards whose owning process is gone.

        A parallel store-backed run arms per-worker
        ``shard-<host>-<pid>-w<index>/`` areas and folds them back on
        join; a run killed mid-pool can still leak them (the absorb
        runs in a ``finally``, but ``SIGKILL`` skips even that).  On
        the next store open, any such directory belonging to a dead
        process *on this host* is absorbed into ``area``'s write area
        and removed — mirroring the stale ``*.tmp.<pid>`` sweep, and
        losing nothing because entries are content-addressed.

        ``K/N`` corpus shards and foreign hosts' shards are never
        touched: the former await an explicit ``repro-store merge``,
        and the latter's PIDs cannot be probed from here.  Returns the
        number of shard directories swept; never raises.
        """
        host = safe_hostname()
        swept = 0
        for shard_dir in list_shards(self.root):
            owner = parse_worker_shard(os.path.basename(shard_dir))
            if owner is None:
                continue
            shard_host, pid = owner
            if shard_host != host or _process_alive(pid):
                continue
            area.absorb(os.path.join(shard_dir, OBJECTS_DIRNAME))
            shutil.rmtree(shard_dir, ignore_errors=True)
            swept += 1
        if swept:
            area.metrics.counter("cache.swept_shards").inc(swept)
            area.log.info("cache.sweep_shards", root=self.root,
                          removed=swept)
        return swept

    def history(self) -> RunHistory:
        """The master run table (shard tables unioned on read)."""
        return RunHistory(self.root)

    def shard(self, name: Optional[str] = None) -> RunHistory:
        """One shard's own run table (no further nesting)."""
        return RunHistory(self.shard_path(name))

    # ------------------------------------------------------------------

    def stats(self) -> StoreStats:
        """Object / run / shard counts and sizes, best-effort."""
        area = ObjectStore(self.objects_root)
        objects = 0
        object_bytes = 0
        for _key, path in area.entries():
            objects += 1
            try:
                object_bytes += os.path.getsize(path)
            except OSError:
                pass
        shard_objects = 0
        shard_runs = 0
        shards = self.shards()
        for shard_dir in shards:
            shard_objects += sum(
                1 for _ in area.entries(
                    os.path.join(shard_dir, OBJECTS_DIRNAME)))
            try:
                shard_runs += len(
                    RunHistory(shard_dir)._parse_file(
                        os.path.join(shard_dir, LEDGER_FILENAME)))
            except OSError:
                pass
        runs = 0
        history = RunHistory(self.root)
        try:
            runs = len(history._parse_file(history.path))
        except OSError:
            pass
        return StoreStats(root=self.root, objects=objects,
                          object_bytes=object_bytes, runs=runs,
                          shards=len(shards),
                          shard_objects=shard_objects,
                          shard_runs=shard_runs)
