"""Merging shards, stores, and legacy ledgers into a master store.

The contract (pinned by ``tests/store/test_merge.py``):

* **Idempotent** — merging the same source twice changes nothing:
  ``merge(merge(a, b), b) == merge(a, b)``.
* **Commutative** — the master's bytes are identical regardless of
  merge order: objects with the same key resolve content-addressed
  (identical by construction; a genuinely conflicting byte sequence
  resolves to the lexicographically smaller one, which is
  order-independent), and run manifests union by run id into one
  canonical sorted table.
* **Non-destructive to sources** — foreign stores are only read; the
  store's *own* shards are folded in with same-filesystem renames and
  then removed (pass ``remove_shards=False`` to keep them).

A "source" is anything shaped like a store: a full store root, a
single shard directory, or a bare object area.  Legacy ``--ledger``
JSONL directories import through the same path
(:func:`import_ledger` / ``repro-store merge --from-ledger``): their
run manifests union into the master table, objects simply absent.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .history import LEDGER_FILENAME, RunHistory, canonical_line
from .layout import OBJECTS_DIRNAME, list_shards
from .objects import ObjectStore
from .store import Store

__all__ = ["MergeStats", "import_ledger", "merge_into", "merge_shards"]


@dataclass
class MergeStats:
    """What one merge did, for the CLI and for tests.

    Attributes:
        objects_added: entries new to the master object area.
        objects_identical: entries already present with the same bytes.
        objects_conflicts: entries present with *different* bytes
            (resolved deterministically; should be zero for
            content-addressed writers).
        runs_added: manifests new to the master run table.
        runs_known: manifests already present (by run id or identical
            line).
        shards_merged: shard directories folded in.
        sources: foreign directories read.
    """

    objects_added: int = 0
    objects_identical: int = 0
    objects_conflicts: int = 0
    runs_added: int = 0
    runs_known: int = 0
    shards_merged: int = 0
    sources: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "objects_added": self.objects_added,
            "objects_identical": self.objects_identical,
            "objects_conflicts": self.objects_conflicts,
            "runs_added": self.runs_added,
            "runs_known": self.runs_known,
            "shards_merged": self.shards_merged,
            "sources": list(self.sources),
        }


def _object_areas(directory: str) -> List[str]:
    """Every object area under a store-shaped directory.

    Accepts a store root (``objects/`` + shards), a shard directory
    (``objects/``), or a bare object area (two-hex-fanout directories
    directly inside).
    """
    areas: List[str] = []
    nested = os.path.join(directory, OBJECTS_DIRNAME)
    if os.path.isdir(nested):
        areas.append(nested)
    for shard in list_shards(directory):
        shard_nested = os.path.join(shard, OBJECTS_DIRNAME)
        if os.path.isdir(shard_nested):
            areas.append(shard_nested)
    if not areas and os.path.isdir(directory):
        areas.append(directory)
    return areas


def _run_tables(directory: str) -> List[str]:
    """Every run-table file under a store-shaped directory, sorted so
    the master table precedes its shards."""
    tables: List[str] = []
    master = os.path.join(directory, LEDGER_FILENAME)
    if os.path.isfile(master):
        tables.append(master)
    for shard in list_shards(directory):
        table = os.path.join(shard, LEDGER_FILENAME)
        if os.path.isfile(table):
            tables.append(table)
    return tables


def _merge_entry(source_path: str, destination: str, move: bool,
                 stats: MergeStats) -> None:
    """Land one object at ``destination``, content-addressed.

    A missing destination takes the source entry (renamed when
    ``move``); an existing one is compared and — on the off chance the
    bytes differ — resolved to the lexicographically smaller sequence,
    so the winner does not depend on merge order.
    """
    os.makedirs(os.path.dirname(destination), exist_ok=True)
    if not os.path.exists(destination):
        if move:
            os.replace(source_path, destination)
        else:
            _atomic_copy(source_path, destination)
        stats.objects_added += 1
        return
    with open(source_path, "rb") as handle:
        incoming = handle.read()
    with open(destination, "rb") as handle:
        present = handle.read()
    if incoming == present:
        stats.objects_identical += 1
    else:
        stats.objects_conflicts += 1
        if incoming < present:
            _atomic_write(destination, incoming)
    if move:
        os.remove(source_path)


def _atomic_copy(source_path: str, destination: str) -> None:
    with open(source_path, "rb") as handle:
        _atomic_write(destination, handle.read())


def _atomic_write(destination: str, payload: bytes) -> None:
    temporary = f"{destination}.tmp.{os.getpid()}"
    with open(temporary, "wb") as handle:
        handle.write(payload)
    os.replace(temporary, destination)


def _union_documents(pools: Sequence[Tuple[List[Dict], bool]],
                     stats: MergeStats) -> List[Dict]:
    """Union manifest pools by run id (identical lines otherwise).

    ``pools`` pairs each document list with a flag saying whether its
    documents are *incoming* (counted as added/known) or already the
    master's.  A run id claimed twice with different content resolves
    to the lexicographically smaller canonical line — deterministic
    and order-independent, like the object rule.
    """
    by_key: Dict[str, str] = {}
    for documents, incoming in pools:
        for document in documents:
            line = canonical_line(document)
            run_id = str(document.get("run_id", "") or "")
            key = f"id:{run_id}" if run_id else f"line:{line}"
            present = by_key.get(key)
            if present is None:
                by_key[key] = line
                if incoming:
                    stats.runs_added += 1
            else:
                if incoming:
                    stats.runs_known += 1
                if line != present and line < present:
                    by_key[key] = line
    return [json.loads(line) for line in by_key.values()]


def merge_into(store: Store, sources: Sequence[str] = (),
               ledgers: Sequence[str] = (),
               remove_shards: bool = True) -> MergeStats:
    """Fold shards, foreign stores, and legacy ledgers into ``store``.

    The store's own ``shard-*/`` directories are always merged (and
    removed unless ``remove_shards=False``); each ``sources`` entry is
    read as a store/shard/object-area and copied in; each ``ledgers``
    entry contributes only its run table.  The master run table is
    rewritten canonically, so the result is byte-identical regardless
    of the order sources are merged in.  Raises :class:`OSError` when
    the master store itself cannot be written.
    """
    stats = MergeStats()
    area = ObjectStore(store.objects_root)
    history = store.history()

    # Master manifests first (not incoming), then every incoming pool.
    pools: List[Tuple[List[Dict], bool]] = []
    try:
        pools.append((history._parse_file(history.path), False))
    except OSError:
        pools.append(([], False))

    own_shards = store.shards()
    for shard_dir in own_shards:
        table = os.path.join(shard_dir, LEDGER_FILENAME)
        if os.path.isfile(table):
            pools.append((RunHistory(shard_dir)._parse_file(table), True))
        shard_area = os.path.join(shard_dir, OBJECTS_DIRNAME)
        for key, path in list(area.entries(shard_area)):
            _merge_entry(path, area.entry_path(key), move=remove_shards,
                         stats=stats)
        stats.shards_merged += 1

    for source in sources:
        reader = RunHistory(source)
        for table in _run_tables(source):
            pools.append((reader._parse_file(table), True))
        for source_area in _object_areas(source):
            if os.path.realpath(source_area) == \
                    os.path.realpath(store.objects_root):
                continue  # merging a store into itself: objects stay
            for key, path in area.entries(source_area):
                _merge_entry(path, area.entry_path(key), move=False,
                             stats=stats)
        stats.sources.append(source)

    for ledger_dir in ledgers:
        table = os.path.join(ledger_dir, LEDGER_FILENAME)
        pools.append((RunHistory(ledger_dir)._parse_file(table), True))
        stats.sources.append(ledger_dir)

    history.rewrite(_union_documents(pools, stats))
    if remove_shards:
        for shard_dir in own_shards:
            shutil.rmtree(shard_dir, ignore_errors=True)
    return stats


def merge_shards(store: Store, remove_shards: bool = True) -> MergeStats:
    """Fold the store's own shard directories into its master areas."""
    return merge_into(store, remove_shards=remove_shards)


def import_ledger(store: Store, directory: str) -> MergeStats:
    """Union a legacy ``--ledger`` JSONL directory's runs into the
    master run table (the ``repro-store merge --from-ledger`` path)."""
    return merge_into(store, ledgers=[directory])
