"""The content-addressed object area: atomic, sharded, accounted.

This is the persistence primitive under the result cache.  Entries are
pickled under ``<area>/<key[:2]>/<key>.pkl`` (two-level fanout keeps
directories small on big trees) and written atomically (temp file +
``os.replace``), so concurrent readers never observe torn entries.

Two object areas can cooperate on one store:

* ``root`` — the shared (master) area every reader consults first;
* ``shard_root`` — an optional writer-private area (a shard's
  ``objects/`` directory).  When set, every :meth:`put` lands there
  instead of the master, so N concurrent writers never contend on the
  same files; a later :func:`~repro.store.merge.merge_into` folds the
  shards back.  Reads fall through master → own shard, so a sharded
  writer still sees both the fleet's merged history and its own fresh
  results.

The store is best-effort by design: an unwritable directory degrades
to a cold run, never to a crash.  Read trouble is *classified*, not
flattened: a missing entry is a plain miss, while an entry that exists
but cannot be opened or loaded (EACCES, a torn directory, a truncated
pickle) additionally counts into ``corrupt_entries`` and emits a
``cache.corrupt_entry`` event, so silent store rot stays visible in
telemetry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Iterator, Optional, Tuple

from ..obs.log import NULL_LOG, EventLog
from ..obs.metrics import MetricsRegistry, NullMetricsRegistry

#: Shared no-op sink for unattached stores.
_NULL_METRICS = NullMetricsRegistry()

#: Bump to invalidate every object (layout or pickle-schema change).
SCHEMA_TAG = "repro-cache:1"

#: Sentinel distinguishing "no entry" from a stored ``None``.
CACHE_MISS = object()

#: Errors meaning "the entry's bytes exist but do not load" — cache
#: rot, schema drift, or a torn concurrent writer.
_LOAD_ERRORS = (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError, ValueError)


def _process_alive(pid: int) -> bool:
    """Best-effort liveness probe for a temp file's writer."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM) — treat as alive
    return True


class ObjectStore:
    """A content-addressed pickle area with hit/miss accounting.

    Attributes:
        root: the shared object area (created lazily on first write
            when no shard is configured).
        shard_root: optional writer-private object area receiving every
            write; ``None`` writes straight into :attr:`root`.
        hits: entries served from disk this process.
        misses: lookups that found no (readable) entry.
        puts: entries successfully written this process.
        corrupt_entries: misses caused by an unreadable *existing*
            entry (torn pickle, wrong schema, EACCES) rather than
            absence.
        referenced: every key this process hit or wrote — the material
            a run manifest pins so GC never sweeps a run's entries.
        record_references: when True, :func:`~repro.obs.runlog.
            build_run_record` copies :attr:`referenced` into the run
            manifest (store-backed runs only; plain ``--cache`` runs
            keep their manifests byte-identical to earlier releases).
        worker_shard_base: optional store root under which the pipeline
            may create per-worker shard directories for its fan-out
            (set by ``--store``; ``None`` keeps puts in the parent).

    The same accounting lands in an attached
    :class:`~repro.obs.MetricsRegistry` (counters ``cache.hits``,
    ``cache.misses``, ``cache.puts``, ``cache.corrupt_entries``) and
    corruption/sweep incidents in an attached event log — see
    :meth:`attach`; both default to shared no-ops.
    """

    def __init__(self, root: str,
                 shard_root: Optional[str] = None) -> None:
        self.root = root
        self.shard_root = shard_root
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt_entries = 0
        self.referenced = set()
        self.record_references = False
        self.worker_shard_base: Optional[str] = None
        self.metrics: MetricsRegistry = _NULL_METRICS
        self.log: EventLog = NULL_LOG
        self._swept = False

    def attach(self, metrics: MetricsRegistry = None,
               log: EventLog = None) -> "ObjectStore":
        """Route accounting into a metrics registry and an event log.

        The pipeline attaches its tracer's registry and configured log
        here, so store behavior shows up in ``--metrics-json``,
        Prometheus output, and ``--log-json`` without the store ever
        importing the pipeline.  Returns ``self`` for chaining.
        """
        self.metrics = metrics if metrics is not None else _NULL_METRICS
        self.log = log if log is not None else NULL_LOG
        return self

    # ------------------------------------------------------------------

    @property
    def write_root(self) -> str:
        """Where :meth:`put` lands — the shard when one is configured."""
        return self.shard_root if self.shard_root is not None else self.root

    @staticmethod
    def key_for(stage_tag: str, path: str, source: str,
                fingerprint: str = "") -> str:
        """The object key for one per-file result.

        Args:
            stage_tag: versioned stage name (:data:`~repro.core.cache.
                PARSE_TAG` / :data:`~repro.core.cache.CHECK_TAG`).
            path: the file's tree-relative path (findings embed it, so
                the same text at a different path is a different entry).
            source: the full source text.
            fingerprint: extra key material — for checker bundles, the
                joined checker fingerprints.
        """
        digest = hashlib.sha256()
        for part in (SCHEMA_TAG, stage_tag, fingerprint, path, source):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x1f")
        return digest.hexdigest()

    def entry_path(self, key: str, root: Optional[str] = None) -> str:
        """Filesystem path of the entry for ``key`` (may not exist)."""
        return os.path.join(root if root is not None else self.root,
                            key[:2], key + ".pkl")

    # Backwards-compatible alias.
    _entry_path = entry_path

    def _read_roots(self) -> Tuple[str, ...]:
        if self.shard_root is not None:
            return (self.root, self.shard_root)
        return (self.root,)

    # ------------------------------------------------------------------

    def sweep_stale(self, root: Optional[str] = None) -> int:
        """Remove ``*.tmp.<pid>`` leftovers from crashed writers.

        A writer that dies between creating its temp file and the atomic
        ``os.replace`` leaves the temp behind forever; enough crashed
        runs and the object area fills with garbage.  A temp file is
        stale when its owning process is gone (or its name is mangled).
        Sweeps the write area by default.  Returns the number of files
        removed; never raises.
        """
        area = root if root is not None else self.write_root
        removed = 0
        try:
            directories = os.listdir(area)
        except OSError:
            return 0
        for subdirectory in directories:
            directory = os.path.join(area, subdirectory)
            try:
                names = os.listdir(directory)
            except (OSError, NotADirectoryError):
                continue
            for name in names:
                if ".tmp." not in name:
                    continue
                pid_text = name.rpartition(".tmp.")[2]
                if pid_text.isdigit() and _process_alive(int(pid_text)):
                    continue  # a concurrent writer; leave its temp alone
                try:
                    os.remove(os.path.join(directory, name))
                    removed += 1
                except OSError:
                    pass
        if removed:
            self.metrics.counter("cache.swept_tmp").inc(removed)
            self.log.info("cache.sweep", root=area, removed=removed)
        return removed

    def get(self, key: str) -> Any:
        """The stored value for ``key``, or :data:`CACHE_MISS`.

        Corrupt, truncated, or unreadable entries count as misses — the
        caller recomputes and overwrites them.  Absence
        (``FileNotFoundError``, or a parent directory that is not a
        directory at all) is a *plain* miss; an entry that exists but
        cannot be opened or loaded is additionally counted as corrupt
        and logged, so silent store rot is visible in telemetry.
        """
        for root in self._read_roots():
            path = self.entry_path(key, root)
            try:
                handle = open(path, "rb")
            except (FileNotFoundError, NotADirectoryError):
                continue  # absent here; try the next area
            except OSError as error:
                return self._corrupt_miss(path, error)
            try:
                with handle:
                    value = pickle.load(handle)
            except _LOAD_ERRORS as error:
                return self._corrupt_miss(path, error)
            self.hits += 1
            self.metrics.counter("cache.hits").inc()
            self.referenced.add(key)
            return value
        self.misses += 1
        self.metrics.counter("cache.misses").inc()
        return CACHE_MISS

    def _corrupt_miss(self, path: str, error: Exception) -> Any:
        self.misses += 1
        self.corrupt_entries += 1
        self.metrics.counter("cache.misses").inc()
        self.metrics.counter("cache.corrupt_entries").inc()
        self.log.warning("cache.corrupt_entry", path=path,
                         error=f"{type(error).__name__}: {error}")
        return CACHE_MISS

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` under ``key``; False when the write failed.

        The write is atomic and best-effort: store trouble must never
        fail an assessment.  That contract covers more than disk
        trouble — an unpicklable ``value`` (``PicklingError`` or
        ``TypeError``) and deeply recursive payloads
        (``RecursionError``) are swallowed the same way, and the first
        write of a process sweeps stale temp files left behind by
        crashed writers.
        """
        if not self._swept:
            self._swept = True
            self.sweep_stale()
        path = self.entry_path(key, self.write_root)
        temporary = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(temporary, "wb") as handle:
                pickle.dump(value, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temporary, path)
        except (OSError, pickle.PicklingError, TypeError,
                AttributeError, RecursionError):
            try:
                os.remove(temporary)
            except OSError:
                pass
            return False
        self.puts += 1
        self.metrics.counter("cache.puts").inc()
        self.referenced.add(key)
        return True

    # ------------------------------------------------------------------
    # area iteration and bulk moves (merge / gc building blocks)

    def entries(self, root: Optional[str] = None
                ) -> Iterator[Tuple[str, str]]:
        """Yield ``(key, path)`` for every entry in an area, sorted.

        Sorted traversal keeps everything built on top (merges, GC
        decisions, stats) deterministic.  Missing areas yield nothing.
        """
        area = root if root is not None else self.root
        try:
            subdirectories = sorted(os.listdir(area))
        except OSError:
            return
        for subdirectory in subdirectories:
            directory = os.path.join(area, subdirectory)
            try:
                names = sorted(os.listdir(directory))
            except (OSError, NotADirectoryError):
                continue
            for name in names:
                if name.endswith(".pkl"):
                    yield name[:-4], os.path.join(directory, name)

    def absorb(self, area_root: str) -> int:
        """Move another object area's entries into the write area.

        The fan-out join: worker shards produced under
        :attr:`worker_shard_base` are folded back with same-filesystem
        ``os.replace`` — no re-pickling, no copies.  An entry already
        present in the write area wins (it is content-addressed: same
        key, same value).  Returns the number of entries absorbed;
        never raises.
        """
        absorbed = 0
        for key, path in list(self.entries(area_root)):
            destination = self.entry_path(key, self.write_root)
            try:
                os.makedirs(os.path.dirname(destination), exist_ok=True)
                if os.path.exists(destination):
                    os.remove(path)
                else:
                    os.replace(path, destination)
                    absorbed += 1
                    self.puts += 1
                    self.metrics.counter("cache.puts").inc()
                self.referenced.add(key)
            except OSError:
                continue
        return absorbed
