"""Store garbage collection: bounded size, bounded age, pinned runs.

Object areas grow without bound: every changed file writes two fresh
entries (parse + checker bundle) and nothing ever removed the old
ones.  :func:`collect_garbage` implements ``repro-store gc``:

* ``max_age_days`` — entries whose mtime is older are swept;
* ``max_size_mb`` — newest-first (LRU by mtime), entries beyond the
  byte budget are swept;
* **retention** — an entry referenced by any run manifest in the
  store's history (master or shard tables) is never swept, whatever
  its age: a recorded run stays replayable until its manifest is gone.

Sweep counts surface through the existing ``cache.*`` metrics
(``cache.gc_swept``, ``cache.gc_bytes``, plus ``cache.swept_tmp`` from
the stale-temp sweep that runs alongside) when a registry is attached
to the returned object store, and in the :class:`GcStats` the CLI
prints.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .objects import ObjectStore
from .store import Store

__all__ = ["GcStats", "collect_garbage", "retained_keys"]


@dataclass
class GcStats:
    """One sweep's outcome.

    Attributes:
        examined: entries considered.
        swept: entries removed (would be removed under ``dry_run``).
        swept_bytes: their total size.
        kept_referenced: entries spared because a run manifest pins
            them.
        kept_fresh: entries spared by being inside both budgets.
        tmp_swept: stale ``*.tmp.<pid>`` files removed alongside.
    """

    examined: int = 0
    swept: int = 0
    swept_bytes: int = 0
    kept_referenced: int = 0
    kept_fresh: int = 0
    tmp_swept: int = 0

    def to_dict(self) -> Dict:
        return {
            "examined": self.examined,
            "swept": self.swept,
            "swept_bytes": self.swept_bytes,
            "kept_referenced": self.kept_referenced,
            "kept_fresh": self.kept_fresh,
            "tmp_swept": self.tmp_swept,
        }


def retained_keys(store: Store) -> Set[str]:
    """Object keys pinned by any run manifest in the store's history.

    Reads the master table and every shard table; a missing history
    simply pins nothing.
    """
    retained: Set[str] = set()
    try:
        documents = store.history().raw_records()
    except OSError:
        return retained
    for document in documents:
        objects = document.get("objects")
        if isinstance(objects, list):
            retained.update(key for key in objects
                            if isinstance(key, str))
    return retained


def collect_garbage(store: Store, max_age_days: Optional[float] = None,
                    max_size_mb: Optional[float] = None,
                    dry_run: bool = False, now: Optional[float] = None,
                    area: Optional[ObjectStore] = None) -> GcStats:
    """Sweep the master object area by age and size, sparing pinned keys.

    Args:
        store: the store to collect.
        max_age_days: sweep entries older than this many days
            (``None`` = no age bound).
        max_size_mb: keep at most this many megabytes, newest first
            (``None`` = no size bound).
        dry_run: count what would be swept without removing anything.
        now: clock override for deterministic tests.
        area: object-store view to sweep through (defaults to the
            store's master area); pass an attached one to surface
            ``cache.gc_swept`` / ``cache.gc_bytes`` counters.
    """
    stats = GcStats()
    if max_age_days is None and max_size_mb is None:
        return stats
    area = area if area is not None else ObjectStore(store.objects_root)
    if not dry_run:
        stats.tmp_swept = area.sweep_stale(store.objects_root)
    pinned = retained_keys(store)
    reference = time.time() if now is None else now
    age_floor = (reference - max_age_days * 86400.0
                 if max_age_days is not None else None)
    budget = (int(max_size_mb * 1024 * 1024)
              if max_size_mb is not None else None)

    entries: List[Tuple[float, int, str, str]] = []
    for key, path in area.entries(store.objects_root):
        try:
            status = os.stat(path)
        except OSError:
            continue
        entries.append((status.st_mtime, status.st_size, key, path))
    # Newest first: the size budget keeps the most recently used
    # entries, exactly an LRU eviction in bulk.
    entries.sort(key=lambda entry: (-entry[0], entry[2]))

    kept_bytes = 0
    for mtime, size, key, path in entries:
        stats.examined += 1
        too_old = age_floor is not None and mtime < age_floor
        over_budget = budget is not None and kept_bytes + size > budget
        if not too_old and not over_budget:
            kept_bytes += size
            stats.kept_fresh += 1
            continue
        if key in pinned:
            kept_bytes += size
            stats.kept_referenced += 1
            continue
        stats.swept += 1
        stats.swept_bytes += size
        if not dry_run:
            try:
                os.remove(path)
            except OSError:
                pass
    if stats.swept:
        area.metrics.counter("cache.gc_swept").inc(stats.swept)
        area.metrics.counter("cache.gc_bytes").inc(stats.swept_bytes)
        area.log.info("cache.gc", root=store.objects_root,
                      swept=stats.swept, bytes=stats.swept_bytes,
                      dry_run=dry_run)
    return stats
