"""Serving layer: the long-lived ``repro-serve`` assessment daemon.

Where ``repro-assess`` is one cold process per run, this package keeps
the expensive state — rules profile, result store, parse/check object
cache — resident in one process and answers ``assess`` / ``diff`` /
``rules`` / ``stats`` requests over a line-delimited JSON protocol
(:mod:`.protocol`), over stdio or TCP.  The ``--watch`` mode layers a
stat-first incremental tree watcher (:mod:`.watcher`) on top: only
changed files are re-read, only their parse/check stages re-run
(everything else is a content-addressed cache hit), and each material
change streams a verdict- plus finding-level diff (:mod:`.stream`)
against the previous assessment.

Fault containment is per-request: a checker crash degrades one reply
(``"degraded": true`` — the protocol's exit-code-3), never the daemon.
"""

from .protocol import (
    PROTOCOL_VERSION,
    VERBS,
    encode_reply,
    error_reply,
    parse_request,
)
from .server import AssessmentServer, run_stdio, run_tcp
from .stream import finding_diff, watch_events
from .watcher import TreeWatcher, WatchDelta

__all__ = [
    "AssessmentServer",
    "PROTOCOL_VERSION",
    "TreeWatcher",
    "VERBS",
    "WatchDelta",
    "encode_reply",
    "error_reply",
    "finding_diff",
    "parse_request",
    "run_stdio",
    "run_tcp",
    "watch_events",
]
