"""The long-lived assessment daemon behind ``repro-serve``.

One :class:`AssessmentServer` process loads the rules profile and the
result store once, then answers ``assess`` / ``diff`` / ``rules`` /
``stats`` requests indefinitely, keeping the parse/check object cache
hot in memory (:class:`~repro.core.cache.MemoryCache` by default, the
store's shared object area under ``--store``).  A repeat ``assess`` of
an unchanged tree therefore recomputes nothing: every per-file stage
short-circuits to a content-addressed cache hit, and the reply is
byte-identical to the first.

Each request runs inside the fault-containment boundary the pipeline
already provides: a crashing checker or a corrupt cache entry degrades
*that one reply* (``"degraded": true`` — the protocol mapping of the
CLI's exit code 3), and an unexpected fault in the serve layer itself
is caught and answered as ``ok: false`` — the daemon keeps serving
either way.

Store- or ledger-backed serving appends one
:class:`~repro.obs.runlog.RunRecord` per assessment through the same
:class:`~repro.store.history.RunHistory` the one-shot CLI uses, so
watch iterations and served requests feed the ``repro-trends`` window
exactly like standalone runs — with *per-request* cache deltas, not
process-lifetime totals.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional

from ..core.cache import MemoryCache, ResultCache
from ..core.config import PipelineConfig
from ..core.diff import (
    diff_assessments,
    gap_reduction,
    load_assessment_view,
)
from ..core.pipeline import AssessmentPipeline
from ..errors import ReproError, ServeError
from ..obs import (
    EventLog,
    NULL_LOG,
    RunLedger,
    Tracer,
    build_run_record,
    new_run_id,
)
from ..rules import REGISTRY, RuleProfile
from .protocol import PROTOCOL_VERSION, encode_reply, error_reply, \
    parse_request
from .stream import finding_diff
from .watcher import TreeWatcher, WatchDelta

__all__ = ["AssessmentServer", "run_stdio", "run_tcp"]


class _CacheDelta:
    """One request's slice of the shared cache accounting.

    :func:`~repro.obs.runlog.build_run_record` reads hit/miss/put/
    corruption counts off whatever cache object it is handed; a daemon
    must hand it the *request's* delta, not the process-lifetime
    totals, or every served run's manifest would double-count its
    predecessors'.
    """

    def __init__(self, cache: ResultCache) -> None:
        self._cache = cache
        self._hits = cache.hits
        self._misses = cache.misses
        self._puts = cache.puts
        self._corrupt = cache.corrupt_entries
        self.record_references = getattr(cache, "record_references",
                                         False)

    @property
    def hits(self) -> int:
        return self._cache.hits - self._hits

    @property
    def misses(self) -> int:
        return self._cache.misses - self._misses

    @property
    def puts(self) -> int:
        return self._cache.puts - self._puts

    @property
    def corrupt_entries(self) -> int:
        return self._cache.corrupt_entries - self._corrupt

    @property
    def referenced(self):
        return getattr(self._cache, "referenced", ())

    def to_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts,
                "corrupt_entries": self.corrupt_entries}


class AssessmentServer:
    """Warm assessment state plus the verb dispatch table.

    Thread-safe: requests are serialized on an internal lock, so the
    TCP mode's per-connection threads share one hot cache without
    interleaving pipeline runs.
    """

    def __init__(self, root: Optional[str] = None, *,
                 profile: Optional[RuleProfile] = None,
                 store=None, ledger_dir: Optional[str] = None,
                 cache: Optional[ResultCache] = None,
                 jobs: int = 1, executor: str = "thread",
                 strict: bool = False,
                 task_timeout: Optional[float] = None,
                 log: Optional[EventLog] = None,
                 extra_checkers: tuple = ()) -> None:
        self.log = log if log is not None else NULL_LOG
        self.profile = profile
        self.store = store
        self.ledger_dir = ledger_dir
        if cache is None:
            cache = (store.object_store() if store is not None
                     else MemoryCache())
        self.cache = cache
        self.jobs = jobs
        self.executor = executor
        self.strict = strict
        self.task_timeout = task_timeout
        self.extra_checkers = extra_checkers
        self.default_root = os.path.abspath(root) if root else None
        self.watchers: Dict[str, TreeWatcher] = {}
        #: Latest and previous assessment per root (the diff operands).
        self.results: Dict[str, Any] = {}
        self.previous: Dict[str, Any] = {}
        self.closing = False
        self.started = time.monotonic()
        self.requests = 0
        self.assessments = 0
        self.errors = 0
        self.degraded_replies = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # request entry points

    def handle_line(self, line: str) -> Dict[str, Any]:
        """Serve one raw request line; never raises."""
        try:
            request = parse_request(line)
        except ServeError as error:
            with self._lock:
                self.requests += 1
                self.errors += 1
            return error_reply(None, str(error))
        return self.handle(request)

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one parsed request; never raises.

        The per-request containment boundary: expected errors
        (:class:`~repro.errors.ReproError` — bad path, malformed
        baseline) and unexpected ones (a bug anywhere below) both
        degrade to an ``ok: false`` reply for *this* request.
        """
        request_id = request.get("id")
        verb = request.get("verb")
        with self._lock:
            self.requests += 1
            try:
                handler = getattr(self, f"_verb_{verb}")
                reply = handler(request)
            except ReproError as error:
                self.errors += 1
                self.log.warning("serve.request_error", verb=verb,
                                 error=str(error))
                return error_reply(request_id, str(error))
            except Exception as error:  # the daemon must outlive bugs
                self.errors += 1
                self.log.error(
                    "serve.crash", verb=verb,
                    error=f"{type(error).__name__}: {error}")
                return error_reply(
                    request_id,
                    f"internal fault serving {verb!r}: "
                    f"{type(error).__name__}: {error}",
                    degraded=True)
            reply["id"] = request_id
            reply.setdefault("ok", True)
            if reply.get("degraded"):
                self.degraded_replies += 1
            return reply

    # ------------------------------------------------------------------
    # shared plumbing

    def _root_for(self, request: Dict[str, Any]) -> str:
        path = request.get("path") or self.default_root
        if not path:
            raise ServeError(
                "no tree to assess: pass \"path\" in the request or "
                "start repro-serve with a default tree")
        if not isinstance(path, str):
            raise ServeError("request path must be a string")
        return os.path.abspath(path)

    def watcher(self, root: str) -> TreeWatcher:
        try:
            return self.watchers[root]
        except KeyError:
            watcher = TreeWatcher(root, log=self.log)
            self.watchers[root] = watcher
            return watcher

    def refresh(self, root: str) -> WatchDelta:
        """Poll a root's tree (creating its watcher on first use)."""
        with self._lock:
            return self.watcher(root).poll()

    def _config(self, tracer: Optional[Tracer]) -> PipelineConfig:
        return PipelineConfig(
            tracer=tracer, log=self.log, jobs=self.jobs,
            executor=self.executor, cache=self.cache,
            rules=self.profile, strict=self.strict,
            task_timeout=self.task_timeout,
            extra_checkers=self.extra_checkers)

    def _record_run(self, result, root: str, duration: float,
                    tracer: Optional[Tracer], delta: _CacheDelta,
                    files: int) -> Optional[str]:
        if self.store is None and self.ledger_dir is None:
            return None
        run_id = new_run_id()
        record = build_run_record(
            result, run_id=run_id, duration=duration,
            exit_code=3 if result.degraded else 0,
            config=self._config(tracer), tracer=tracer,
            cache=delta, files=files)
        if self.ledger_dir is not None:
            RunLedger(self.ledger_dir).append(record)
        if self.store is not None:
            self.store.history().append(record)
        return run_id

    # ------------------------------------------------------------------
    # verbs

    def _verb_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "protocol": PROTOCOL_VERSION}

    def _verb_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.closing = True
        self.log.info("serve.shutdown")
        return {"closing": True}

    def _verb_rules(self, request: Dict[str, Any]) -> Dict[str, Any]:
        rules = [{
            "id": rule.id,
            "title": rule.title,
            "severity": rule.severity.name,
            "checker": rule.checker,
            "table": rule.table,
            "topic": rule.topic,
            "enabled": (self.profile.enabled(rule.id)
                        if self.profile is not None else True),
        } for rule in sorted(REGISTRY, key=lambda rule: rule.id)]
        return {"rules": rules, "count": len(rules)}

    def _verb_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        cache: Dict[str, Any] = {
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "puts": self.cache.puts,
            "corrupt_entries": self.cache.corrupt_entries,
            "backend": type(self.cache).__name__,
        }
        if isinstance(self.cache, MemoryCache):
            cache["entries"] = len(self.cache)
        roots = {root: {
            "files": len(watcher.sources),
            "polls": watcher.polls,
            "skipped_unreadable": watcher.skipped_total,
        } for root, watcher in sorted(self.watchers.items())}
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "requests": self.requests,
            "assessments": self.assessments,
            "errors": self.errors,
            "degraded_replies": self.degraded_replies,
            "skipped_unreadable": sum(
                watcher.skipped_total
                for watcher in self.watchers.values()),
            "cache": cache,
            "roots": roots,
        }

    def assess(self, root: str, refresh: bool = True) -> Dict[str, Any]:
        """Assess ``root``, hot: one reply dict (no ``id`` yet).

        ``refresh=False`` reuses the watcher's current sources — the
        watch loop polls separately and must not double-stat the tree.
        """
        with self._lock:
            watcher = self.watcher(root)
            if refresh:
                watcher.poll()
            sources = watcher.sources
            if not sources:
                raise ServeError(
                    f"no C/C++/CUDA sources found under {root}")
            tracer = (Tracer()
                      if self.store is not None
                      or self.ledger_dir is not None else None)
            delta = _CacheDelta(self.cache)
            start = time.perf_counter()
            result = AssessmentPipeline(self._config(tracer)).run(sources)
            duration = time.perf_counter() - start
            self.assessments += 1
            self.previous[root] = self.results.get(root)
            self.results[root] = result
            run_id = self._record_run(result, root, duration, tracer,
                                      delta, files=len(sources))
            reply: Dict[str, Any] = {
                "root": root,
                "files": len(sources),
                "units": result.unit_count,
                "total_loc": result.total_loc,
                "total_findings": sum(
                    report.finding_count
                    for report in result.reports.values()),
                "findings": {
                    name: sorted(finding.located()
                                 for finding in report.findings)
                    for name, report in sorted(result.reports.items())},
                "verdicts": result.verdict_counts(),
                "cache": delta.to_dict(),
                "seconds": round(duration, 6),
                "degraded": result.degraded,
            }
            if result.degraded:
                reply["degradations"] = [
                    crash.describe() for crash in result.crashes]
            if run_id is not None:
                reply["run"] = run_id
            return reply

    def _verb_assess(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self.assess(self._root_for(request),
                           refresh=request.get("refresh", True))

    def diff(self, root: str,
             baseline_path: Optional[str] = None) -> Dict[str, Any]:
        """Diff ``root``'s latest assessment against its predecessor.

        With ``baseline_path``, the "before" side is a saved ``--json``
        document instead of the in-memory previous run.
        """
        with self._lock:
            after = self.results.get(root)
            if after is None:
                raise ServeError(
                    f"nothing assessed yet for {root}: issue an "
                    f"\"assess\" first")
            if baseline_path is not None:
                before = load_assessment_view(baseline_path)
                findings = None
            else:
                before = self.previous.get(root)
                if before is None:
                    raise ServeError(
                        f"only one assessment of {root} so far: diff "
                        f"needs two, or a \"baseline\" document")
                findings = finding_diff(before, after)
            reply: Dict[str, Any] = {
                "root": root,
                "verdicts": diff_assessments(before, after).to_dict(),
                "gap_reduction": gap_reduction(before, after),
            }
            if findings is not None:
                reply["findings"] = findings
            return reply

    def _verb_diff(self, request: Dict[str, Any]) -> Dict[str, Any]:
        baseline = request.get("baseline")
        if baseline is not None and not isinstance(baseline, str):
            raise ServeError("diff baseline must be a file path string")
        return self.diff(self._root_for(request), baseline)


# ----------------------------------------------------------------------
# transports


def run_stdio(server: AssessmentServer, stdin, stdout) -> int:
    """Serve line-delimited requests from ``stdin`` until EOF/shutdown.

    Returns the number of requests served.  Blank lines are ignored so
    hand-driven sessions (``repro-serve src/ < requests.jsonl``) stay
    forgiving.
    """
    served = 0
    for line in stdin:
        if not line.strip():
            continue
        reply = server.handle_line(line)
        stdout.write(encode_reply(reply))
        stdout.flush()
        served += 1
        if server.closing:
            break
    return served


def run_tcp(server: AssessmentServer, host: str, port: int,
            ready=None) -> None:
    """Serve the protocol over TCP until a ``shutdown`` request.

    Each connection is a thread speaking the same line protocol as
    stdio mode; the shared :class:`AssessmentServer` lock serializes
    the actual assessment work.  ``port`` may be 0 (ephemeral); the
    bound ``(host, port)`` is passed to ``ready`` once listening, so
    tests and CI can connect without racing the bind.
    """
    import socketserver

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            for raw in self.rfile:
                line = raw.decode("utf-8", "replace")
                if not line.strip():
                    continue
                reply = server.handle_line(line)
                self.wfile.write(
                    encode_reply(reply).encode("utf-8"))
                self.wfile.flush()
                if server.closing:
                    tcp_server.shutdown()
                    return

    class Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with Server((host, port), Handler) as tcp_server:
        bound = tcp_server.server_address
        server.log.info("serve.listening", host=bound[0],
                        port=bound[1])
        if ready is not None:
            ready(bound)
        tcp_server.serve_forever(poll_interval=0.1)
