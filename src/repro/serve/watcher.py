"""Incremental tree watching: stat-first, content-verified.

The watch loop's contract with the pipeline is *don't re-read what
didn't change, don't re-emit what didn't really change*:

* a fast ``os.stat`` pass over the walked tree decides which files
  even need re-reading (mtime_ns + size unchanged ⇒ content assumed
  unchanged — the same heuristic build systems use);
* files whose stat moved are re-read and content-hashed: an editor's
  save that rewrote identical bytes (format-on-save, atomic-rename
  churn) is *touched*, not *changed*, and triggers no re-assessment;
* a file that vanishes between the walk and the read (the classic
  atomic-rename race) is folded into ``removed`` instead of crashing
  the iteration, and one that turns unreadable (EACCES, broken
  symlink) is skipped with a ``parse.skipped_unreadable`` warning,
  keeping its last-known content so the corpus stays consistent.

The watcher owns the authoritative ``{path: source}`` mapping the
server feeds the pipeline; re-running the parse/check stages for only
the changed files then falls out of the content-addressed result cache
(unchanged files hit, changed files miss).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..corpus.writer import SOURCE_EXTENSIONS, iter_tree_files
from ..obs.log import NULL_LOG, EventLog

__all__ = ["TreeWatcher", "WatchDelta"]


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8", "surrogatepass")).hexdigest()


@dataclass
class WatchDelta:
    """What one :meth:`TreeWatcher.poll` observed, all paths sorted.

    Attributes:
        added: files that appeared since the previous poll.
        changed: files whose *content* changed.
        removed: files that disappeared (including mid-iteration races
            where the walk saw the name but the read did not).
        touched: files whose stat moved but whose content is
            byte-identical — observed, deliberately not re-emitted.
        skipped: files that could not be read this poll (logged as
            ``parse.skipped_unreadable``); previously-known content is
            retained.
    """

    added: List[str] = field(default_factory=list)
    changed: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    touched: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def material(self) -> bool:
        """True when the corpus the pipeline sees actually differs."""
        return bool(self.added or self.changed or self.removed)

    def to_dict(self) -> Dict[str, List[str]]:
        return {"added": self.added, "changed": self.changed,
                "removed": self.removed, "touched": self.touched,
                "skipped": self.skipped}


class TreeWatcher:
    """Stat-based incremental view of one source tree.

    Attributes:
        root: the watched tree root (as given).
        sources: the authoritative ``{relative path: source}`` mapping
            after the latest :meth:`poll`.
        polls: total polls taken.
        skipped_total: cumulative unreadable-file skips, for the serve
            ``stats`` verb.
    """

    def __init__(self, root: str, extensions=SOURCE_EXTENSIONS,
                 log: Optional[EventLog] = None) -> None:
        self.root = root
        self.extensions = extensions
        self.log = log if log is not None else NULL_LOG
        self.sources: Dict[str, str] = {}
        self.polls = 0
        self.skipped_total = 0
        self._stats: Dict[str, Tuple[int, int]] = {}
        self._digests: Dict[str, str] = {}

    # ------------------------------------------------------------------

    def _read(self, full: str) -> str:
        with open(full, "r", encoding="utf-8",
                  errors="replace") as handle:
            return handle.read()

    def _skip(self, relative: str, error: OSError,
              delta: WatchDelta) -> None:
        self.log.warning("parse.skipped_unreadable", path=relative,
                         error=f"{type(error).__name__}: {error}")
        delta.skipped.append(relative)
        self.skipped_total += 1

    def poll(self) -> WatchDelta:
        """Observe the tree once and fold differences into state.

        Raises:
            CorpusError: when the root itself is gone or not a
                directory (the tree, not a file, disappeared — that is
                not a per-file race to paper over).
        """
        self.polls += 1
        delta = WatchDelta()
        seen = set()
        for relative, full in iter_tree_files(self.root, self.extensions):
            known = relative in self.sources
            try:
                stat = os.stat(full)
            except OSError:
                # Vanished between the walk and the stat: for a known
                # file that is a removal; an unknown one never existed
                # as far as the corpus is concerned.
                continue
            seen.add(relative)
            state = (stat.st_mtime_ns, stat.st_size)
            if known and self._stats.get(relative) == state:
                continue  # stat-identical: not even re-read
            try:
                text = self._read(full)
            except FileNotFoundError:
                seen.discard(relative)  # deleted mid-iteration
                continue
            except OSError as error:
                self._skip(relative, error, delta)
                if not known:
                    seen.discard(relative)
                continue
            digest = _digest(text)
            if not known:
                delta.added.append(relative)
            elif digest == self._digests.get(relative):
                delta.touched.append(relative)
                self._stats[relative] = state
                continue
            else:
                delta.changed.append(relative)
            self.sources[relative] = text
            self._stats[relative] = state
            self._digests[relative] = digest
        for relative in sorted(set(self.sources) - seen):
            delta.removed.append(relative)
            del self.sources[relative]
            self._stats.pop(relative, None)
            self._digests.pop(relative, None)
        for paths in (delta.added, delta.changed, delta.touched,
                      delta.skipped):
            paths.sort()
        return delta
