"""Command-line entry point: ``repro-serve``.

Examples::

    repro-serve src/                    # stdio: JSON requests on stdin
    repro-serve src/ --tcp 127.0.0.1:9026
    repro-serve --watch src/ --interval 2

Stdio and TCP modes answer the line-delimited JSON protocol
(:mod:`repro.serve.protocol`); ``--watch`` turns the same warm server
into a streaming re-assessor that prints one JSON event per material
change.  All three share the hot cache: the daemon parses and checks
each file version exactly once.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..core.cache import ResultCache
from ..errors import ReproError
from ..obs import LEVELS, EventLog, new_run_id
from ..rules import REGISTRY, profile_from_globs
from ..store import Store
from .protocol import encode_reply
from .server import AssessmentServer, run_stdio, run_tcp
from .stream import watch_events


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-lived assessment daemon: answers assess/diff/"
                    "rules/stats requests over line-delimited JSON "
                    "with a hot parse/check cache, or streams "
                    "incremental re-assessments with --watch.")
    parser.add_argument("path", nargs="?",
                        help="default source tree for requests that "
                             "carry no \"path\"")
    parser.add_argument("--tcp", metavar="HOST:PORT",
                        help="serve over TCP instead of stdio (PORT 0 "
                             "binds an ephemeral port, printed on "
                             "stderr)")
    parser.add_argument("--watch", metavar="PATH",
                        help="watch PATH: assess once, then re-assess "
                             "only what changes, one JSON event line "
                             "per assessment")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="poll interval for --watch (default 2.0)")
    parser.add_argument("--iterations", type=int, default=0, metavar="N",
                        help="stop --watch after N polls past the "
                             "baseline (default 0 = run until "
                             "interrupted)")
    parser.add_argument("--store", metavar="DIR",
                        help="back the daemon with a sharded result "
                             "store: its object area is the cache and "
                             "every served assessment appends a run "
                             "manifest for repro-trends")
    parser.add_argument("--cache", metavar="DIR",
                        help="on-disk result cache directory (default: "
                             "a process-private in-memory cache)")
    parser.add_argument("--ledger", nargs="?", const=".repro",
                        default=None, metavar="DIR",
                        help="append each served assessment's manifest "
                             "to DIR/runs.jsonl (default DIR: .repro)")
    parser.add_argument("--enable", action="append", metavar="GLOB",
                        default=None,
                        help="enable only rules matching GLOB "
                             "(repeatable)")
    parser.add_argument("--disable", action="append", metavar="GLOB",
                        default=None,
                        help="disable rules matching GLOB (repeatable; "
                             "applied after --enable)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="workers for each assessment's fan-out "
                             "(default 1 = serial)")
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread",
                        help="pool flavor for --jobs > 1")
    parser.add_argument("--strict", action="store_true",
                        help="re-raise contained faults instead of "
                             "degrading the affected reply (debugging "
                             "aid; a strict fault kills the daemon)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task deadline for --jobs > 1")
    parser.add_argument("--log-json", metavar="FILE",
                        help="write structured JSONL events (requests, "
                             "skipped files, contained crashes) to "
                             "FILE")
    parser.add_argument("--log-level", choices=tuple(LEVELS),
                        default=None,
                        help="minimum level written to --log-json "
                             "(default info)")
    return parser


def _parse_endpoint(value: str):
    host, separator, port = value.rpartition(":")
    if not separator or not host:
        raise ValueError(
            f"--tcp expects HOST:PORT, got {value!r}")
    return host, int(port)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    root = args.watch or args.path
    if root is None:
        parser.error("give a source tree path (or --watch PATH)")
    if args.watch and args.tcp:
        print("--watch and --tcp are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.store and args.cache:
        print("--store and --cache are mutually exclusive (a store "
              "contains its own object area)", file=sys.stderr)
        return 2
    if args.interval <= 0:
        print(f"--interval must be positive, got {args.interval}",
              file=sys.stderr)
        return 2
    if args.iterations < 0:
        print(f"--iterations must be >= 0, got {args.iterations}",
              file=sys.stderr)
        return 2
    if args.task_timeout is not None and args.task_timeout <= 0:
        print(f"--task-timeout must be positive, got "
              f"{args.task_timeout}", file=sys.stderr)
        return 2
    if args.log_level is not None and not args.log_json:
        print("--log-level has no effect without --log-json",
              file=sys.stderr)
        return 2
    endpoint = None
    if args.tcp:
        try:
            endpoint = _parse_endpoint(args.tcp)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
    try:
        profile = profile_from_globs(args.enable, args.disable,
                                     REGISTRY)
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    store = Store(args.store) if args.store else None
    cache = ResultCache(args.cache) if args.cache else None
    log_handle = None
    event_log = None
    if args.log_json:
        try:
            log_handle = open(args.log_json, "w", encoding="utf-8")
        except OSError as error:
            print(f"cannot open event log: {error}", file=sys.stderr)
            return 2
        event_log = EventLog(log_handle,
                             level=args.log_level or "info",
                             run_id=new_run_id())
    server = AssessmentServer(
        root, profile=profile, store=store, ledger_dir=args.ledger,
        cache=cache, jobs=args.jobs, executor=args.executor,
        strict=args.strict, task_timeout=args.task_timeout,
        log=event_log)
    try:
        if args.watch:
            return _watch(server, args)
        if endpoint is not None:
            def announce(bound) -> None:
                print(f"repro-serve listening on "
                      f"{bound[0]}:{bound[1]}", file=sys.stderr)
            run_tcp(server, endpoint[0], endpoint[1], ready=announce)
            return 0
        run_stdio(server, sys.stdin, sys.stdout)
        return 0
    except KeyboardInterrupt:
        return 0
    finally:
        if log_handle is not None:
            log_handle.close()


def _watch(server: AssessmentServer, args) -> int:
    """Run the watch loop; exit 3 when any iteration was degraded."""
    import os

    root = os.path.abspath(args.watch)
    degraded = False
    try:
        for event in watch_events(server, root,
                                  iterations=args.iterations,
                                  interval=args.interval):
            degraded = degraded or bool(event.get("degraded"))
            sys.stdout.write(encode_reply(event))
            sys.stdout.flush()
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 3 if degraded else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
