"""The ``repro-serve`` wire protocol: one JSON object per line.

Requests and replies are newline-delimited JSON — the simplest shape a
CI runner, an editor plugin, or ``nc`` can speak, and the same framing
the run ledger and event log already use.  A request names a ``verb``
and optionally carries an ``id`` the reply echoes back, so clients may
pipeline requests over one connection::

    -> {"id": 1, "verb": "assess", "path": "src/"}
    <- {"id": 1, "ok": true, "degraded": false, ...}

Contract:

* every reply carries ``ok`` — ``true`` when the verb produced its
  result (possibly *degraded*: a contained checker crash or corrupt
  cache entry sets ``"degraded": true``, the protocol mapping of the
  CLI's exit code 3), ``false`` when the request itself failed;
* a failed request carries ``error`` and never kills the daemon — the
  containment boundary is per-request;
* replies are serialized deterministically (sorted keys, compact
  separators), so byte-comparing two replies is byte-comparing their
  content.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..errors import ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "VERBS",
    "encode_reply",
    "error_reply",
    "parse_request",
]

#: Bump when a verb's reply shape changes incompatibly.
PROTOCOL_VERSION = 1

#: Recognized request verbs.
VERBS = ("assess", "diff", "rules", "stats", "ping", "shutdown")

#: JSON scalar types allowed as a request id (echoed verbatim).
_ID_TYPES = (str, int, float, type(None))


def parse_request(line: str) -> Dict[str, Any]:
    """Decode and validate one request line.

    Raises:
        ServeError: not JSON, not an object, a non-scalar ``id``, or a
            missing/unknown ``verb``.  The daemon maps this to an
            ``ok: false`` reply; it never tears the connection down.
    """
    try:
        request = json.loads(line)
    except ValueError as error:
        raise ServeError(f"request is not valid JSON: {error}")
    if not isinstance(request, dict):
        raise ServeError(
            f"request must be a JSON object, got {type(request).__name__}")
    if not isinstance(request.get("id", None), _ID_TYPES):
        raise ServeError("request id must be a JSON scalar")
    verb = request.get("verb")
    if verb is None:
        raise ServeError(f"request has no verb (one of {VERBS})")
    if verb not in VERBS:
        raise ServeError(f"unknown verb {verb!r} (one of {VERBS})")
    return request


def error_reply(request_id: Optional[Any], message: str,
                degraded: bool = False) -> Dict[str, Any]:
    """The reply for a request that could not be served."""
    return {"id": request_id, "ok": False, "degraded": degraded,
            "error": message}


def encode_reply(reply: Dict[str, Any]) -> str:
    """One reply as a deterministic JSON line (trailing newline).

    Sorted keys and compact separators make equal replies equal bytes —
    the property the serve acceptance tests (and caching clients) pin.
    """
    return json.dumps(reply, sort_keys=True,
                      separators=(",", ":")) + "\n"
