"""Watch-mode streaming: finding-level diffs between live assessments.

:mod:`repro.core.diff` compares two assessments at the verdict level —
which ISO 26262 techniques improved or regressed.  The watch loop needs
one level finer: *which findings* appeared or disappeared when a file
changed, and *which rules* those findings belong to.  Both layers ride
in every streamed event, so a CI tail sees "edit to ``control.cpp``
added two ``M15.1`` findings and flipped goto-usage to non-compliant"
in a single JSON line.

Findings are compared as multisets of their :meth:`~repro.checkers.
base.Finding.located` strings — two identical findings on different
lines of the same file are distinct, two byte-identical ones collapse —
so an identical-rewrite touch produces an empty diff by construction.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Any, Dict, Iterator, List

from ..errors import ReproError

__all__ = ["finding_diff", "watch_events"]


def _located_counts(result) -> Counter:
    """Multiset of ``(checker, located-string, rule)`` across reports."""
    counts: Counter = Counter()
    for name, report in result.reports.items():
        for finding in report.findings:
            counts[(name, finding.located(), finding.rule)] += 1
    return counts


def finding_diff(before, after) -> Dict[str, Any]:
    """Findings that appeared (``new``) or disappeared (``fixed``).

    Both operands are live :class:`~repro.core.assessment.
    AssessmentResult` objects (a saved ``--json`` baseline carries only
    per-checker counts, not individual findings — verdict-level diffing
    via :func:`~repro.core.diff.diff_assessments` covers that case).
    """
    before_counts = _located_counts(before)
    after_counts = _located_counts(after)
    new: List[str] = []
    fixed: List[str] = []
    rules_changed = set()
    for key, count in (after_counts - before_counts).items():
        _, located, rule = key
        new.extend([located] * count)
        rules_changed.add(rule)
    for key, count in (before_counts - after_counts).items():
        _, located, rule = key
        fixed.extend([located] * count)
        rules_changed.add(rule)
    return {"new": sorted(new), "fixed": sorted(fixed),
            "rules_changed": sorted(rules_changed)}


def watch_events(server, root: str, *, iterations: int = 0,
                 interval: float = 2.0,
                 sleep=time.sleep) -> Iterator[Dict[str, Any]]:
    """The ``--watch`` loop: yield one event per (re-)assessment.

    The first event is the baseline (``"event": "baseline"``); each
    later poll that observed a *material* delta (content added, changed,
    or removed — identical rewrites do not count) re-assesses through
    the server's hot cache and yields an ``"update"`` event carrying the
    delta, the fresh assessment reply, and the verdict- plus
    finding-level diff against the previous iteration.

    Args:
        server: the :class:`~repro.serve.server.AssessmentServer`
            holding cache, profile, and store state.
        root: tree to watch.
        iterations: total polls *after* the baseline; ``0`` means run
            until interrupted.  Finite values make the loop
            deterministic for tests and CI.
        interval: seconds between polls.
        sleep: injectable clock for tests.

    A degraded assessment (contained checker crash) yields its event
    with ``"degraded": true`` and the loop continues — the containment
    boundary is per-iteration, matching the serve protocol's
    per-request boundary.
    """
    baseline = server.assess(root)
    yield {"event": "baseline", "iteration": 0, **baseline}
    count = 0
    while iterations == 0 or count < iterations:
        count += 1
        sleep(interval)
        delta = server.refresh(root)
        if not delta.material:
            continue
        previous = server.results.get(root)
        try:
            reply = server.assess(root, refresh=False)
        except ReproError as error:
            # Per-iteration containment: a tree emptying out (or any
            # other expected fault) degrades this event, not the loop.
            yield {"event": "error", "iteration": count,
                   "delta": delta.to_dict(), "error": str(error),
                   "degraded": True}
            continue
        current = server.results[root]
        event: Dict[str, Any] = {
            "event": "update", "iteration": count,
            "delta": delta.to_dict(), **reply,
        }
        if previous is not None:
            event["diff"] = server.diff(root)["verdicts"]
            event["finding_diff"] = finding_diff(previous, current)
        yield event
