"""Fused single-sweep checker engine.

One :class:`~repro.engine.interests.UnitSweep` per translation unit
drives all checkers in a single token walk (see
:mod:`repro.engine.driver` for the entry point,
:func:`~repro.engine.driver.fused_unit_bundle`).

This package's ``__init__`` deliberately re-exports only the leaf
modules (:mod:`.interests`, :mod:`.index`): the driver imports the
checker base class, which itself imports :mod:`.index` for the
enclosing-function line index — importing the driver here would close
that loop.  Import the driver explicitly as ``repro.engine.driver``.
"""

from .index import FunctionLineIndex, function_line_index
from .interests import UnitSweep

__all__ = ["FunctionLineIndex", "UnitSweep", "function_line_index"]
