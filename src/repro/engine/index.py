"""Precomputed line-interval index for enclosing-function lookups.

``enclosing_function_name`` used to scan every function of a unit per
lookup — O(functions) per finding, and the cast checker alone performs
one lookup per cast (Apollo has >1,400).  The index flattens the
function intervals into one per-line name array at first use, making
every subsequent lookup a list access.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["FunctionLineIndex", "function_line_index"]


class FunctionLineIndex:
    """Maps a 1-based source line to its innermost function's name.

    Matches the legacy scan's tie-breaking exactly: the function with
    the strictly smallest line span containing the line wins, earliest
    declaration first on equal spans (a later function only replaces a
    line's entry when its span is strictly smaller).
    """

    def __init__(self, functions: Sequence) -> None:
        top = 0
        for function in functions:
            if function.end_line > top:
                top = function.end_line
        unclaimed = top + 2  # wider than any real span
        names: List[str] = [""] * (top + 1)
        spans: List[int] = [unclaimed] * (top + 1)
        for function in functions:
            start = max(function.start_line, 0)
            span = function.end_line - function.start_line
            name = function.qualified_name
            for line in range(start, function.end_line + 1):
                if span < spans[line]:
                    names[line] = name
                    spans[line] = span
        self._names = names

    def lookup(self, line: int) -> str:
        """Qualified name of the function containing ``line``, or ``""``."""
        names = self._names
        if 0 <= line < len(names):
            return names[line]
        return ""


def function_line_index(unit) -> FunctionLineIndex:
    """The unit's line index, built once and memoized on the unit
    (the same pattern the deviation scan uses)."""
    index = getattr(unit, "_function_line_index", None)
    if index is None:
        index = FunctionLineIndex(unit.functions)
        unit._function_line_index = index
    return index
