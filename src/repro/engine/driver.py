"""The fused checker driver: all checkers over one unit in one sweep.

:func:`fused_unit_bundle` is the drop-in successor of
:func:`repro.core.parallel.check_unit_bundle`: same signature, same
``{checker name: per-unit report}`` result, byte-identical reports —
but instead of calling ``checker.check_unit(unit)`` N times (N
redundant walks of ``unit.tokens`` / ``unit.code`` /
``body_tokens(function)``), it builds one :class:`~repro.engine.
interests.UnitSweep`, lets every checker register its interests, and
walks the unit once.  Checkers that do not implement
:meth:`~repro.checkers.base.Checker.unit_visitor` (external
``extra_checkers``) transparently fall back to their ``check_unit``.

Crash containment matches the legacy per-checker contract: a checker
whose handler raises outside the :class:`~repro.errors.ReproError`
hierarchy is contained to a ``crash_report`` for this unit while every
other checker's report is unaffected.  Because a fused sweep
interleaves checkers, containment is retry-based: the sweep aborts,
the crashed checker is dropped, and the unit is re-swept with the
survivors — their reports are rebuilt from scratch, which discards the
aborted sweep's partial emissions exactly as the legacy path discards
a crashed ``check_unit``'s partial report.  Crashes are rare (fault
injection and genuine bugs), so the retry costs nothing in the steady
state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..checkers.base import (
    Checker,
    CheckerReport,
    crash_report,
    make_crash,
)
from ..errors import ReproError
from ..lang.cppmodel import TranslationUnit
from ..obs import NULL_LOG, EventLog
from .interests import UnitSweep

__all__ = ["fused_unit_bundle"]


def fused_unit_bundle(checkers: Sequence[Checker], unit: TranslationUnit,
                      strict: bool = False,
                      log: EventLog = NULL_LOG
                      ) -> Dict[str, CheckerReport]:
    """Run every checker over one unit in a single fused sweep.

    Returns ``{checker name: report}`` with each report byte-identical
    to ``checker.check_unit(unit)``.  ``strict=True`` re-raises checker
    crashes instead of containing them; a contained crash is logged as
    a ``checker.crash`` event at stage ``"check_unit"``, matching the
    legacy bundle's containment exactly.
    """
    checkers = list(checkers)
    active = checkers
    crashed: Dict[str, CheckerReport] = {}
    while True:
        sweep = UnitSweep(unit)
        try:
            fresh = _sweep_unit(active, unit, sweep)
        except ReproError:
            raise
        except Exception as error:
            owner = sweep.owner
            if strict or owner is None:
                raise
            log.error("checker.crash", checker=owner.name,
                      stage="check_unit", path=unit.filename,
                      error=f"{type(error).__name__}: {error}")
            crashed[owner.name] = crash_report(owner.name, make_crash(
                owner.name, "check_unit", error, path=unit.filename))
            active = [checker for checker in active
                      if checker is not owner]
            continue
        break
    if not crashed:
        return fresh
    return {checker.name: crashed.get(checker.name,
                                      fresh.get(checker.name))
            for checker in checkers}


def _sweep_unit(checkers: List[Checker], unit: TranslationUnit,
                sweep: UnitSweep) -> Dict[str, CheckerReport]:
    """One attempt: register every checker, run the sweep once.

    ``sweep.owner`` tracks whose code is executing at all times, so the
    caller can attribute an escape to the offending checker.
    """
    reports: Dict[str, CheckerReport] = {}
    fallback: List[Checker] = []
    for checker in checkers:
        sweep.owner = checker
        if type(checker).unit_visitor is Checker.unit_visitor:
            # No visitor: the legacy check_unit runs after the sweep.
            fallback.append(checker)
            continue
        report = checker.new_report((unit,))
        if checker.unit_visitor(unit, report, sweep):
            reports[checker.name] = report
        else:
            fallback.append(checker)
    sweep.run()
    for checker in fallback:
        sweep.owner = checker
        reports[checker.name] = checker.check_unit(unit)
    return reports
