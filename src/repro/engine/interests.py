"""Interest registration for the fused single-sweep checker engine.

A :class:`UnitSweep` is built per translation unit.  Each checker's
:meth:`~repro.checkers.base.Checker.unit_visitor` registers *interests*
— token-kind events, punctuator/keyword text events, per-function
callbacks, and end-of-unit hooks — and the sweep then walks the unit's
code tokens **once**, dispatching every event to every interested
checker.  This replaces N independent full-token sweeps (one per
checker) with one shared sweep plus O(1) dict dispatch per token.

Emission-order contract (what makes fused output byte-identical to the
per-checker path): for any single checker, events fire in the phase
order *registration → token sweep (code order) → functions-begin hooks
→ per-function callbacks (declaration order) → end hooks*.  A checker
whose legacy ``check_unit`` emits in that same shape can register its
pieces directly; work whose legacy position differs (e.g. a second
full-code sweep that ran after the per-function loop) buffers its
findings and flushes them from an end hook.

Every registered callable is tagged with the checker that owns it, so
the driver can attribute a mid-sweep crash to the offending checker
and contain it (see :mod:`repro.engine.driver`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..lang.cppmodel import TranslationUnit
from ..lang.tokens import TokenKind

__all__ = ["UnitSweep"]

#: ``(owning checker, callable)`` — the owner is only read for crash
#: attribution, never during normal dispatch beyond a list write.
_Entry = Tuple[object, Callable]


class UnitSweep:
    """One unit's fused dispatch tables, populated by checker visitors.

    The driver sets :attr:`owner` to the registering checker before each
    ``unit_visitor`` call, so registrations are attributed automatically.
    """

    def __init__(self, unit: TranslationUnit) -> None:
        self.unit = unit
        #: The checker currently registering (or being dispatched to).
        self.owner: Optional[object] = None
        self._by_kind: Dict[TokenKind, List[_Entry]] = {}
        self._by_text: Dict[str, List[_Entry]] = {}
        self._functions: List[_Entry] = []
        self._functions_begin: List[_Entry] = []
        self._end: List[_Entry] = []

    # ------------------------------------------------------------------
    # registration (called from Checker.unit_visitor)

    def on_kind(self, kind: TokenKind,
                handler: Callable[[int, object], None]) -> None:
        """Call ``handler(index, token)`` for every code token of ``kind``.

        Registering for hot kinds (IDENTIFIER, PUNCT) costs a dispatch
        on most tokens; prefer :meth:`on_text` for specific punctuators
        and keywords.
        """
        self._by_kind.setdefault(kind, []).append((self.owner, handler))

    def on_text(self, text: str,
                handler: Callable[[int, object], None]) -> None:
        """Call ``handler(index, token)`` for each PUNCT/KEYWORD token
        spelled ``text``.

        Punctuator symbols and keyword words can never collide, so one
        table serves both kinds; identifiers never dispatch here.
        """
        self._by_text.setdefault(text, []).append((self.owner, handler))

    def on_function(self,
                    handler: Callable[[object, list], None]) -> None:
        """Call ``handler(function, body)`` per function, declaration
        order; ``body`` is the shared ``unit.body_tokens(function)``
        slice, cut once for all checkers."""
        self._functions.append((self.owner, handler))

    def at_functions(self, hook: Callable[[], None]) -> None:
        """Call ``hook()`` after the token sweep, before the first
        per-function callback."""
        self._functions_begin.append((self.owner, hook))

    def at_end(self, hook: Callable[[], None]) -> None:
        """Call ``hook()`` after everything else — the place to flush
        buffered findings and compute summary statistics."""
        self._end.append((self.owner, hook))

    # ------------------------------------------------------------------
    # dispatch (called by the driver)

    def run(self) -> None:
        """Walk the unit once, dispatching all registered interests."""
        by_kind = self._by_kind
        by_text = self._by_text
        punct = TokenKind.PUNCT
        keyword = TokenKind.KEYWORD
        if by_kind or by_text:
            for index, token in enumerate(self.unit.code):
                kind = token.kind
                entries = by_kind.get(kind)
                if entries is not None:
                    for entry in entries:
                        self.owner = entry[0]
                        entry[1](index, token)
                if kind is punct or kind is keyword:
                    entries = by_text.get(token.text)
                    if entries is not None:
                        for entry in entries:
                            self.owner = entry[0]
                            entry[1](index, token)
        for owner, hook in self._functions_begin:
            self.owner = owner
            hook()
        if self._functions:
            unit = self.unit
            for function in unit.functions:
                body = unit.body_tokens(function)
                for owner, handler in self._functions:
                    self.owner = owner
                    handler(function, body)
        for owner, hook in self._end:
            self.owner = owner
            hook()
