"""Specifications for the synthetic Apollo-like corpus.

The corpus generator is calibrated against every number the paper reports
(see :mod:`repro.corpus.apollo` for the calibrated instance).  A
:class:`ModuleSpec` describes one top-level Apollo module; the ``scale``
knob shrinks everything proportionally so unit tests can run on a small
corpus while benchmarks regenerate the full-size one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import CorpusError


@dataclass(frozen=True)
class ComplexityProfile:
    """How many functions to generate in each cyclomatic-complexity band.

    ``low`` functions get CC drawn from 1-10; the other bands pin exact
    CC targets inside 11-20 / 21-50 / 51+, making framework-wide counts
    (the paper's "554 functions with moderate or higher complexity")
    reproducible to the unit.
    """

    low: int
    moderate: int
    risky: int
    unstable: int

    @property
    def total(self) -> int:
        return self.low + self.moderate + self.risky + self.unstable

    @property
    def over_ten(self) -> int:
        return self.moderate + self.risky + self.unstable

    def scaled(self, factor: float) -> "ComplexityProfile":
        return ComplexityProfile(
            low=max(1, round(self.low * factor)),
            moderate=max(1 if self.moderate else 0,
                         round(self.moderate * factor)),
            risky=max(1 if self.risky else 0, round(self.risky * factor)),
            unstable=max(1 if self.unstable else 0,
                         round(self.unstable * factor)),
        )


@dataclass(frozen=True)
class ModuleSpec:
    """One Apollo module's generation targets."""

    name: str
    profile: ComplexityProfile
    globals_count: int = 10
    cast_count: int = 40
    multi_exit_ratio: float = 0.35
    cuda_kernel_count: int = 0
    goto_count: int = 1
    recursive_functions: int = 0
    uninitialized_count: int = 8
    functions_per_file: int = 9
    defensive_ratio: float = 0.0
    dynamic_alloc_ratio: float = 0.45
    submodules: Tuple[str, ...] = ("core", "common", "util")

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise CorpusError(f"module name {self.name!r} must be an "
                              f"identifier")
        if not 0.0 <= self.multi_exit_ratio <= 1.0:
            raise CorpusError(
                f"multi-exit ratio must be in [0, 1], got "
                f"{self.multi_exit_ratio}")
        if not 0.0 <= self.defensive_ratio <= 1.0:
            raise CorpusError(
                f"defensive ratio must be in [0, 1], got "
                f"{self.defensive_ratio}")
        if self.functions_per_file < 1:
            raise CorpusError("functions_per_file must be >= 1")

    def scaled(self, factor: float) -> "ModuleSpec":
        return ModuleSpec(
            name=self.name,
            profile=self.profile.scaled(factor),
            globals_count=max(1, round(self.globals_count * factor)),
            cast_count=max(1, round(self.cast_count * factor)),
            multi_exit_ratio=self.multi_exit_ratio,
            cuda_kernel_count=(max(1, round(self.cuda_kernel_count * factor))
                               if self.cuda_kernel_count else 0),
            goto_count=(max(1, round(self.goto_count * factor))
                        if self.goto_count else 0),
            recursive_functions=self.recursive_functions,
            uninitialized_count=(max(1, round(self.uninitialized_count
                                              * factor))
                                 if self.uninitialized_count else 0),
            functions_per_file=self.functions_per_file,
            defensive_ratio=self.defensive_ratio,
            dynamic_alloc_ratio=self.dynamic_alloc_ratio,
            submodules=self.submodules,
        )


@dataclass(frozen=True)
class CorpusSpec:
    """The full corpus: modules plus global generation parameters."""

    modules: Tuple[ModuleSpec, ...]
    seed: int = 26262
    scale: float = 1.0

    def __post_init__(self) -> None:
        names = [module.name for module in self.modules]
        if len(set(names)) != len(names):
            raise CorpusError("duplicate module names in corpus spec")
        if self.scale <= 0:
            raise CorpusError(f"scale must be positive, got {self.scale}")

    def effective_modules(self) -> List[ModuleSpec]:
        """Module specs with the scale factor applied."""
        if self.scale == 1.0:
            return list(self.modules)
        return [module.scaled(self.scale) for module in self.modules]

    @property
    def expected_over_ten(self) -> int:
        """Expected framework-wide count of CC>10 functions."""
        return sum(module.profile.over_ten
                   for module in self.effective_modules())
