"""CUDA translation-unit generator for the synthetic corpus.

Perception's GPU code follows the exact structure of the paper's Figure 4
excerpt: a ``__global__`` kernel indexing through raw pointers, and a host
wrapper that ``cudaMalloc``s device buffers, copies data in, launches with
``<<<grid, block>>>``, copies results back and frees.  Every generated
kernel therefore exhibits Observation 4's intrinsic violations (pointers +
dynamic memory) by construction — because that *is* the CUDA idiom.
"""

from __future__ import annotations

import random
from typing import List, Tuple

_KERNEL_OPS = [
    ("scale", "{out}[index] = {a}[index] * factor;"),
    ("offset", "{out}[index] = {a}[index] + factor;"),
    ("blend", "{out}[index] = {a}[index] * factor + {b}[index];"),
    ("clip", "{out}[index] = {a}[index] > factor ? factor : {a}[index];"),
    ("square", "{out}[index] = {a}[index] * {a}[index] * factor;"),
]


def generate_cuda_unit(rng: random.Random, module: str,
                       kernel_count: int) -> Tuple[str, List[str]]:
    """Generate one ``.cu`` translation unit.

    Returns:
        (source text, list of kernel names).
    """
    lines: List[str] = [
        f'#include "{module}/cuda/device_buffers.h"',
        "#include <cuda_runtime.h>",
        "",
        "#define BLOCK 512",
        "",
        f"namespace apollo {{",
        f"namespace {module} {{",
        "",
    ]
    kernel_names: List[str] = []
    for index in range(kernel_count):
        op_name, op_template = rng.choice(_KERNEL_OPS)
        kernel = f"{op_name}_{module}_kernel_{index}"
        wrapper = f"{op_name}_{module}_gpu_{index}"
        kernel_names.append(kernel)
        needs_b = "{b}" in op_template
        body = op_template.format(out="output", a="input", b="aux")
        aux_param = ", float *aux" if needs_b else ""
        lines += [
            f"__global__ void {kernel}(float *output, float *input"
            f"{aux_param},",
            f"                         float factor, int n) {{",
            "  int index = blockIdx.x * blockDim.x + threadIdx.x;",
            "  if (index < n) {",
            f"    {body}",
            "  }",
            "}",
            "",
        ]
        aux_arg = ", d_aux" if needs_b else ""
        aux_decl = ["  float *d_aux;"] if needs_b else []
        aux_alloc = (["  cudaMalloc((void**)&d_aux, n * sizeof(float));",
                      "  cudaMemcpy(d_aux, input, n * sizeof(float),",
                      "             cudaMemcpyHostToDevice);"]
                     if needs_b else [])
        aux_free = ["  cudaFree(d_aux);"] if needs_b else []
        lines += [
            f"void {wrapper}(float *output, float *input, float factor,",
            f"               int n) {{",
            "  dim3 grid((n - 1) / BLOCK + 1);",
            "  dim3 block(BLOCK);",
            "  float *d_output;",
            "  float *d_input;",
            *aux_decl,
            "  cudaMalloc((void**)&d_output, n * sizeof(float));",
            "  cudaMalloc((void**)&d_input, n * sizeof(float));",
            *aux_alloc,
            "  cudaMemcpy(d_input, input, n * sizeof(float),",
            "             cudaMemcpyHostToDevice);",
            f"  {kernel}<<<grid, block>>>(d_output, d_input{aux_arg},",
            "                            factor, n);",
            "  cudaMemcpy(output, d_output, n * sizeof(float),",
            "             cudaMemcpyDeviceToHost);",
            "  cudaFree(d_output);",
            "  cudaFree(d_input);",
            *aux_free,
            "}",
            "",
        ]
    lines += [
        f"}}  // namespace {module}",
        "}  // namespace apollo",
        "",
    ]
    return "\n".join(lines), kernel_names
