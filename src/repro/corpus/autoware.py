"""A second calibrated corpus: Autoware-like.

Section 2 of the paper: "These are the main stages of Apollo and also
other state-of-the-art AD frameworks [Autoware, Udacity].  All of them
have similar design and implementation characteristics, so the
conclusions we derive for Apollo in this work hold to a large extent for
all AD frameworks."

This spec models Autoware's public characteristics circa 2018: a smaller
ROS-based stack (~140k LOC) with the same module decomposition, the same
mainstream-C++ idioms (dynamic allocation, globals, multi-exit
functions), and GPU perception code — so the assessment pipeline should
reach the same observations, which is exactly the generalization claim
the integration tests verify.
"""

from __future__ import annotations

from .spec import ComplexityProfile, CorpusSpec, ModuleSpec


def _profile(low: int, moderate: int, risky: int,
             unstable: int) -> ComplexityProfile:
    return ComplexityProfile(low=low, moderate=moderate, risky=risky,
                             unstable=unstable)


AUTOWARE_MODULES = (
    ModuleSpec(
        name="perception",
        profile=_profile(low=1800, moderate=70, risky=24, unstable=4),
        globals_count=420,
        cast_count=260,
        multi_exit_ratio=0.39,
        cuda_kernel_count=32,
        goto_count=4,
        recursive_functions=1,
        uninitialized_count=10,
        submodules=("lidar_tracker", "vision_detector", "fusion"),
    ),
    ModuleSpec(
        name="planning",
        profile=_profile(low=1350, moderate=48, risky=16, unstable=3),
        globals_count=110,
        cast_count=170,
        multi_exit_ratio=0.36,
        goto_count=3,
        recursive_functions=1,
        uninitialized_count=8,
        submodules=("mission", "motion", "lattice"),
    ),
    ModuleSpec(
        name="localization",
        profile=_profile(low=760, moderate=26, risky=9, unstable=2),
        globals_count=70,
        cast_count=110,
        multi_exit_ratio=0.34,
        goto_count=2,
        uninitialized_count=6,
        submodules=("ndt", "gnss"),
    ),
    ModuleSpec(
        name="detection",
        profile=_profile(low=620, moderate=22, risky=8, unstable=1),
        globals_count=80,
        cast_count=90,
        multi_exit_ratio=0.40,
        cuda_kernel_count=8,
        goto_count=2,
        uninitialized_count=6,
        submodules=("yolo", "euclidean_cluster"),
    ),
    ModuleSpec(
        name="control",
        profile=_profile(low=520, moderate=18, risky=6, unstable=1),
        globals_count=50,
        cast_count=70,
        multi_exit_ratio=0.31,
        goto_count=1,
        uninitialized_count=5,
        submodules=("waypoint_follower", "twist"),
    ),
    ModuleSpec(
        name="map",
        profile=_profile(low=680, moderate=20, risky=7, unstable=1),
        globals_count=60,
        cast_count=80,
        multi_exit_ratio=0.32,
        goto_count=1,
        recursive_functions=1,
        uninitialized_count=5,
        submodules=("vector_map", "lanelet"),
    ),
    ModuleSpec(
        name="common",
        profile=_profile(low=540, moderate=12, risky=4, unstable=1),
        globals_count=45,
        cast_count=60,
        multi_exit_ratio=0.28,
        goto_count=1,
        uninitialized_count=4,
        submodules=("ros_bridge", "util"),
    ),
)

#: The Autoware-like corpus (~140k LOC at scale 1.0).
AUTOWARE_SPEC = CorpusSpec(modules=AUTOWARE_MODULES, seed=20160825,
                           scale=1.0)


def autoware_spec(scale: float = 1.0, seed: int = 20160825) -> CorpusSpec:
    """The Autoware-like spec, optionally scaled."""
    return CorpusSpec(modules=AUTOWARE_MODULES, seed=seed, scale=scale)
