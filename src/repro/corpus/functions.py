"""Function-body factory for the synthetic corpus.

Builds C++ function definitions whose *measured* properties are exact:
cyclomatic complexity hits a requested target because every snippet
template has a known decision cost; casts, early exits, gotos, dynamic
allocation, and uninitialized locals are planted on request and nowhere
else.  Generated code is Google-style-clean (2-space indent, braces at end
of line, < 80 columns, CamelCase names) because the paper finds Apollo
style- and naming-compliant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

_VERBS = ["Compute", "Update", "Estimate", "Filter", "Track", "Predict",
          "Plan", "Evaluate", "Resolve", "Project", "Fuse", "Align",
          "Validate", "Extract", "Publish", "Select"]
_NOUNS = ["Trajectory", "Obstacle", "Lane", "Signal", "Pose", "Velocity",
          "Boundary", "Waypoint", "Cost", "Heading", "Curvature", "Frame",
          "Cloud", "Grid", "Route", "Command"]
_SUFFIXES = ["", "State", "Delta", "Profile", "Window", "Batch", "Index",
             "Margin"]


@dataclass
class FunctionRequest:
    """What the factory should produce for one function."""

    name: str
    complexity: int
    multi_exit: bool = False
    cast_count: int = 0
    use_goto: bool = False
    uninitialized: bool = False
    dynamic_alloc: bool = False
    recursive: bool = False
    defensive: bool = False
    return_type: str = "float"
    callees: Sequence[str] = field(default_factory=tuple)
    static: bool = False
    parameters: Sequence[str] = field(default_factory=tuple)


class NamePool:
    """Deterministic unique CamelCase name generator."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used = set()

    def function_name(self) -> str:
        while True:
            name = (self._rng.choice(_VERBS) + self._rng.choice(_NOUNS)
                    + self._rng.choice(_SUFFIXES))
            if name not in self._used:
                self._used.add(name)
                return name
            name += str(self._rng.randint(2, 99))
            if name not in self._used:
                self._used.add(name)
                return name

    def class_name(self) -> str:
        while True:
            name = (self._rng.choice(_NOUNS) + self._rng.choice(
                ["Tracker", "Planner", "Filter", "Manager", "Builder",
                 "Monitor", "Adapter", "Estimator"]))
            if name not in self._used:
                self._used.add(name)
                return name
            name += str(self._rng.randint(2, 99))
            if name not in self._used:
                self._used.add(name)
                return name


class _Emitter:
    """Indented line buffer with a local-variable pool."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.lines: List[str] = []
        self.indent = 0
        self._locals: List[str] = []
        self._int_locals: List[str] = []
        self._counter = 0

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.indent + text if text else "")

    def fresh_local(self, type_name: str = "float",
                    initializer: Optional[str] = None) -> str:
        stem = self.rng.choice(["value", "delta", "score", "ratio",
                                "accum"])
        name = f"{stem}_{self._counter}"
        self._counter += 1
        if initializer is None:
            initializer = (f"{self.rng.randint(1, 9)}.{self.rng.randint(0, 9)}f"
                           if type_name == "float"
                           else str(self.rng.randint(0, 16)))
        self.emit(f"{type_name} {name} = {initializer};")
        self._locals.append(name)
        if type_name == "int":
            self._int_locals.append(name)
        return name

    def any_local(self) -> str:
        if not self._locals:
            return self.fresh_local()
        return self.rng.choice(self._locals)

    def any_int_local(self) -> str:
        if not self._int_locals:
            return self.fresh_local("int")
        return self.rng.choice(self._int_locals)


class FunctionFactory:
    """Renders :class:`FunctionRequest` objects into C++ source text."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    # ------------------------------------------------------------------

    def render(self, request: FunctionRequest,
               method_of: str = "") -> List[str]:
        """Produce the lines of one function definition.

        Args:
            request: generation targets.
            method_of: when non-empty, render an out-of-line method
                definition ``Ret Class::Name(...)``.
        """
        if request.recursive:
            return self._render_recursive(request, method_of)
        emitter = _Emitter(self.rng)
        parameters = self.parameters_for(request)
        qualifier = "static " if request.static and not method_of else ""
        scope = f"{method_of}::" if method_of else ""
        for line in self._signature_lines(
                f"{qualifier}{request.return_type} {scope}{request.name}",
                parameters):
            emitter.emit(line)
        emitter.indent += 1

        if request.defensive:
            # Validate the first named parameter before any use — the
            # defensive idiom the paper finds missing (Observation 6).
            for parameter in parameters:
                name = parameter.split()[-1].lstrip("*&")
                if name.isidentifier():
                    emitter.emit(f"CHECK_GE({name}, 0);")
                    break
        seed_local = emitter.fresh_local("float")
        count_local = emitter.fresh_local("int",
                                          str(self.rng.randint(4, 32)))
        if request.uninitialized:
            emitter.emit(f"int raw_{emitter._counter};")
            emitter._counter += 1
        if request.dynamic_alloc:
            emitter.emit(f"float* buffer_{emitter._counter} = "
                         f"new float[{count_local}];")
            buffer_name = f"buffer_{emitter._counter}"
            emitter._counter += 1
        else:
            buffer_name = ""
        for _ in range(request.cast_count):
            self._emit_cast(emitter)

        remaining = request.complexity - 1
        if request.multi_exit and remaining > 0:
            self._emit_early_return(emitter, request, count_local)
            remaining -= 1
        while remaining > 0:
            remaining -= self._emit_decision_snippet(emitter, remaining,
                                                     request)
        if request.use_goto:
            emitter.emit(f"goto finalize_{request.name.lower()};")
            emitter.emit(f"finalize_{request.name.lower()}:")
        if buffer_name:
            emitter.emit(f"delete[] {buffer_name};")
        self._emit_return(emitter, request, seed_local)
        emitter.indent -= 1
        emitter.emit("}")
        return emitter.lines

    # ------------------------------------------------------------------

    def parameters_for(self, request: FunctionRequest) -> List[str]:
        """The parameter list of ``request``, generated once and cached."""
        if request.parameters:
            return list(request.parameters)
        parameters = self._parameters(request)
        request.parameters = tuple(parameters)
        return parameters

    @staticmethod
    def _signature_lines(head: str, parameters: List[str],
                         terminator: str = " {",
                         indent: str = "    ") -> List[str]:
        """Google-style signature, wrapped to stay under 80 columns."""
        single = f"{head}({', '.join(parameters)}){terminator}"
        if len(single) <= 79:
            return [single]
        lines = [f"{head}("]
        current = indent
        for index, parameter in enumerate(parameters):
            suffix = ("," if index < len(parameters) - 1
                      else ")" + terminator)
            piece = parameter + suffix
            if current.strip() and len(current) + len(piece) + 1 > 79:
                lines.append(current.rstrip())
                current = indent
            current += piece + (" " if suffix == "," else "")
        lines.append(current.rstrip())
        return lines

    @classmethod
    def declaration_lines(cls, return_type: str, name: str,
                          parameters: List[str],
                          indent: str = "  ") -> List[str]:
        """A wrapped method declaration for a class body."""
        return cls._signature_lines(f"{indent}{return_type} {name}",
                                    parameters, terminator=";",
                                    indent=indent + "    ")

    def _parameters(self, request: FunctionRequest) -> List[str]:
        count = self.rng.randint(1, 4)
        names = ["input", "limit", "gain", "horizon", "threshold"]
        self.rng.shuffle(names)
        parameters = []
        for index in range(count):
            kind = self.rng.random()
            name = names[index]
            if kind < 0.45:
                parameters.append(f"float {name}")
            elif kind < 0.70:
                parameters.append(f"int {name}")
            elif kind < 0.85:
                parameters.append(f"const std::vector<float>& {name}")
            else:
                parameters.append(f"float* {name}")
        return parameters

    def _emit_cast(self, emitter: _Emitter) -> None:
        source = emitter.any_local()
        style = self.rng.random()
        target = f"cast_{emitter._counter}"
        emitter._counter += 1
        if style < 0.5:
            emitter.emit(f"int {target} = (int){source};")
        elif style < 0.8:
            emitter.emit(f"int {target} = static_cast<int>({source});")
        else:
            emitter.emit(f"float {target} = "
                         f"static_cast<float>({emitter._counter});")
        emitter._locals.append(target)

    def _emit_early_return(self, emitter: _Emitter,
                           request: FunctionRequest,
                           count_local: str) -> None:
        value = "0" if request.return_type == "int" else "0.0f"
        emitter.emit(f"if ({count_local} > {self.rng.randint(24, 64)}) {{")
        emitter.indent += 1
        if request.return_type == "void":
            emitter.emit("return;")
        else:
            emitter.emit(f"return {value};")
        emitter.indent -= 1
        emitter.emit("}")

    def _emit_decision_snippet(self, emitter: _Emitter, budget: int,
                               request: FunctionRequest) -> int:
        """Emit one control-flow snippet; returns its decision cost."""
        choices = ["if"]
        if budget >= 2:
            choices += ["if_and", "for", "nested_if"]
        if budget >= 3:
            choices += ["switch3", "if_or3", "for_if"]
        if budget >= 5:
            choices += ["switch5"]
        kind = self.rng.choice(choices)
        local = emitter.any_local()
        if kind == "if":
            emitter.emit(f"if ({local} > {self._const()}) {{")
            emitter.indent += 1
            self._emit_work(emitter, request)
            emitter.indent -= 1
            emitter.emit("} else {")
            emitter.indent += 1
            self._emit_work(emitter, request)
            emitter.indent -= 1
            emitter.emit("}")
            return 1
        if kind == "if_and":
            other = emitter.any_local()
            emitter.emit(f"if ({local} > {self._const()} && "
                         f"{other} < {self._const()}) {{")
            emitter.indent += 1
            self._emit_work(emitter, request)
            emitter.indent -= 1
            emitter.emit("}")
            return 2
        if kind == "if_or3":
            emitter.emit(f"if ({local} > {self._const()} || "
                         f"{local} < -{self._const()} || "
                         f"{emitter.any_local()} == 0) {{")
            emitter.indent += 1
            self._emit_work(emitter, request)
            emitter.indent -= 1
            emitter.emit("}")
            return 3
        if kind == "for":
            index = f"i{emitter._counter}"
            emitter._counter += 1
            emitter.emit(f"for (int {index} = 0; {index} < "
                         f"{self.rng.randint(4, 16)}; ++{index}) {{")
            emitter.indent += 1
            emitter.emit(f"{local} += 0.5f * {index};")
            emitter.indent -= 1
            emitter.emit("}")
            return 1
        if kind == "nested_if":
            emitter.emit(f"if ({local} > {self._const()}) {{")
            emitter.indent += 1
            emitter.emit(f"if ({emitter.any_local()} < {self._const()}) {{")
            emitter.indent += 1
            self._emit_work(emitter, request)
            emitter.indent -= 1
            emitter.emit("}")
            emitter.indent -= 1
            emitter.emit("}")
            return 2
        if kind == "for_if":
            index = f"i{emitter._counter}"
            emitter._counter += 1
            emitter.emit(f"for (int {index} = 0; {index} < "
                         f"{self.rng.randint(4, 16)}; ++{index}) {{")
            emitter.indent += 1
            emitter.emit(f"if ({index} % 2 == 0 && {local} > 0.0f) {{")
            emitter.indent += 1
            self._emit_work(emitter, request)
            emitter.indent -= 1
            emitter.emit("}")
            emitter.indent -= 1
            emitter.emit("}")
            return 3
        if kind in ("switch3", "switch5"):
            cases = 3 if kind == "switch3" else 5
            selector = f"mode_{emitter._counter}"
            emitter._counter += 1
            emitter.emit(f"int {selector} = "
                         f"{emitter.any_int_local()} % {cases};")
            emitter.emit(f"switch ({selector}) {{")
            emitter.indent += 1
            for case_index in range(cases):
                emitter.emit(f"case {case_index}:")
                emitter.indent += 1
                emitter.emit(f"{local} += {case_index}.5f;")
                emitter.emit("break;")
                emitter.indent -= 1
            emitter.emit("default:")
            emitter.indent += 1
            emitter.emit("break;")
            emitter.indent -= 1
            emitter.indent -= 1
            emitter.emit("}")
            return cases
        raise AssertionError(f"unknown snippet kind {kind}")

    def _emit_work(self, emitter: _Emitter,
                   request: FunctionRequest) -> None:
        if request.callees and self.rng.random() < 0.4:
            callee = self.rng.choice(list(request.callees))
            emitter.emit(f"{emitter.any_local()} += "
                         f"{callee}({emitter.any_local()});")
        else:
            emitter.emit(f"{emitter.any_local()} *= "
                         f"1.0f + {emitter.any_local()} * 0.01f;")

    def _emit_return(self, emitter: _Emitter, request: FunctionRequest,
                     seed_local: str) -> None:
        if request.return_type == "void":
            return
        if request.return_type == "int":
            emitter.emit(f"return {emitter.any_int_local()};")
        else:
            emitter.emit(f"return {seed_local};")

    def _const(self) -> str:
        return f"{self.rng.randint(1, 99)}.0f"

    # ------------------------------------------------------------------

    def _render_recursive(self, request: FunctionRequest,
                          method_of: str) -> List[str]:
        """A tree-walk recursive helper, as Section 3.5 item 10 describes."""
        name = request.name
        scope = f"{method_of}::" if method_of else ""
        return [
            f"int {scope}{name}(int depth, int fanout) {{",
            "  if (depth <= 0) {",
            "    return 1;",
            "  }",
            "  int total = 1;",
            f"  for (int child = 0; child < fanout; ++child) {{",
            f"    total += {name}(depth - 1, fanout);",
            "  }",
            "  return total;",
            "}",
        ]
