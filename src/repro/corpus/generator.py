"""The synthetic Apollo-like corpus generator.

Emits a deterministic tree of C++/CUDA translation units whose measured
statistics reproduce the paper's numbers (see
:mod:`repro.corpus.apollo` for the calibration and DESIGN.md for the
substitution rationale).  Everything is driven by one
:class:`random.Random` seeded from the spec, so the same spec always
yields byte-identical sources.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .cuda_gen import generate_cuda_unit
from .functions import FunctionFactory, FunctionRequest, NamePool
from .spec import CorpusSpec, ModuleSpec

_COMPLEXITY_BANDS = {
    "low": (1, 10),
    "moderate": (11, 20),
    "risky": (21, 50),
    "unstable": (51, 68),
}

_SYSTEM_HEADERS = ["vector", "cmath", "memory", "string", "algorithm",
                   "map", "utility"]


@dataclass(frozen=True)
class CorpusFile:
    """One generated translation unit."""

    path: str
    source: str
    module: str

    @property
    def line_count(self) -> int:
        return self.source.count("\n")


class Corpus:
    """A generated corpus: files plus the spec that produced them."""

    def __init__(self, spec: CorpusSpec, files: List[CorpusFile]) -> None:
        self.spec = spec
        self.files = files

    def sources(self) -> Dict[str, str]:
        return {record.path: record.source for record in self.files}

    def module_names(self) -> List[str]:
        seen: List[str] = []
        for record in self.files:
            if record.module not in seen:
                seen.append(record.module)
        return seen

    def files_of(self, module: str) -> List[CorpusFile]:
        return [record for record in self.files if record.module == module]

    @property
    def total_lines(self) -> int:
        return sum(record.line_count for record in self.files)

    def describe(self) -> str:
        """A one-screen summary of the generated tree and its targets."""
        lines = [
            f"corpus: {len(self.files)} files, {self.total_lines} lines, "
            f"seed {self.spec.seed}, scale {self.spec.scale}",
            f"{'module':<16}{'files':>7}{'lines':>9}{'cc>10 target':>14}",
            "-" * 46,
        ]
        targets = {module.name: module.profile.over_ten
                   for module in self.spec.effective_modules()}
        for name in self.module_names():
            members = self.files_of(name)
            lines.append(f"{name:<16}{len(members):>7}"
                         f"{sum(record.line_count for record in members):>9}"
                         f"{targets.get(name, 0):>14}")
        return "\n".join(lines)


def generate_corpus(spec: CorpusSpec) -> Corpus:
    """Generate the full corpus for ``spec`` (deterministic)."""
    rng = random.Random(spec.seed)
    files: List[CorpusFile] = []
    defined_by_module: Dict[str, List[str]] = {}
    # One shared pool keeps function names unique across modules, so the
    # name-matched call graph cannot manufacture spurious cycles.
    pool = NamePool(rng)
    for module_spec in spec.effective_modules():
        module_files, names = _generate_module(
            rng, module_spec, defined_by_module, pool)
        files.extend(module_files)
        defined_by_module[module_spec.name] = names
    return Corpus(spec, files)


# ---------------------------------------------------------------------------
# module generation


def _generate_module(rng: random.Random, module: ModuleSpec,
                     other_modules: Dict[str, List[str]],
                     pool: NamePool) -> Tuple[List[CorpusFile], List[str]]:
    factory = FunctionFactory(rng)
    requests = _build_requests(rng, module, pool)
    files: List[CorpusFile] = [_module_header(module)]
    defined: List[str] = []

    per_file = module.functions_per_file
    chunks = [requests[start:start + per_file]
              for start in range(0, len(requests), per_file)]
    globals_remaining = module.globals_count
    for chunk_index, chunk in enumerate(chunks):
        callees = _pick_callees(rng, defined, other_modules)
        for request in chunk:
            request.callees = callees
        globals_here = min(globals_remaining,
                           _globals_for_file(rng, module, len(chunks)))
        globals_remaining -= globals_here
        as_class = chunk_index % 2 == 1
        submodule = module.submodules[chunk_index % len(module.submodules)]
        path = (f"{module.name}/{submodule}/"
                f"{_file_stem(chunk, chunk_index)}.cc")
        source = _render_unit(rng, module, pool, factory, chunk,
                              globals_here, as_class, chunk_index)
        files.append(CorpusFile(path=path, source=source,
                                module=module.name))
        defined.extend(request.name for request in chunk)
    # Any globals the chunking left over go into a dedicated state file.
    if globals_remaining > 0:
        files.append(_globals_file(rng, module, globals_remaining))
    for cuda_index, kernel_count in enumerate(
            _chunk_kernels(module.cuda_kernel_count)):
        source, kernel_names = generate_cuda_unit(rng, module.name,
                                                  kernel_count)
        files.append(CorpusFile(
            path=f"{module.name}/cuda/kernels_{cuda_index}.cu",
            source=source, module=module.name))
        defined.extend(kernel_names)
    return files, defined


def _build_requests(rng: random.Random, module: ModuleSpec,
                    pool: NamePool) -> List[FunctionRequest]:
    requests: List[FunctionRequest] = []
    for band, count in (("low", module.profile.low),
                        ("moderate", module.profile.moderate),
                        ("risky", module.profile.risky),
                        ("unstable", module.profile.unstable)):
        lower, upper = _COMPLEXITY_BANDS[band]
        for _ in range(count):
            if band == "low":
                # Real code skews strongly toward trivial functions.
                complexity = min(upper, max(lower,
                                            1 + int(rng.expovariate(0.45))))
            else:
                complexity = rng.randint(lower, upper)
            requests.append(FunctionRequest(
                name=pool.function_name(),
                complexity=complexity,
                return_type=rng.choice(["float", "float", "int", "void"]),
            ))
    rng.shuffle(requests)
    multi_exit_count = round(module.multi_exit_ratio * len(requests))
    for request in requests[:multi_exit_count]:
        request.multi_exit = True
        if request.return_type == "void":
            request.return_type = "float"
        if request.complexity < 2:
            request.complexity = 2
    casts_left = module.cast_count
    while casts_left > 0:
        request = rng.choice(requests)
        request.cast_count += 1
        casts_left -= 1
    for request in rng.sample(requests,
                              min(module.goto_count, len(requests))):
        request.use_goto = True
    for request in rng.sample(requests,
                              min(module.uninitialized_count,
                                  len(requests))):
        request.uninitialized = True
    for request in requests:
        if rng.random() < module.dynamic_alloc_ratio:
            request.dynamic_alloc = True
        if rng.random() < module.defensive_ratio:
            request.defensive = True
    for _ in range(module.recursive_functions):
        requests.append(FunctionRequest(
            name=pool.function_name() + "Tree",
            complexity=3,
            return_type="int",
            recursive=True,
        ))
    return requests


# ---------------------------------------------------------------------------
# rendering


def _render_unit(rng: random.Random, module: ModuleSpec, pool: NamePool,
                 factory: FunctionFactory,
                 chunk: Sequence[FunctionRequest], globals_count: int,
                 as_class: bool, chunk_index: int) -> str:
    lines: List[str] = []
    lines += _include_block(rng, module)
    if chunk_index % 5 == 0:
        lines += [
            "#define CLAMP_VALUE(x, lo, hi) "
            "((x) < (lo) ? (lo) : ((x) > (hi) ? (hi) : (x)))",
            "",
        ]
    lines += ["namespace apollo {", f"namespace {module.name} {{", ""]
    for index in range(globals_count):
        noun = rng.choice(["frame", "cycle", "retry", "drop", "sync",
                           "fault", "mode", "seq"])
        lines.append(f"int g_{noun}_count_{chunk_index}_{index} = 0;")
    if globals_count:
        lines.append(f"const float kEpsilon{chunk_index} = 1e-6f;")
        lines.append("")
    class_name = ""
    if as_class:
        class_name = pool.class_name()
        lines += _class_declaration(factory, class_name, chunk)
    for request in chunk:
        lines += factory.render(request, method_of=class_name)
        lines.append("")
    lines += [f"}}  // namespace {module.name}", "}  // namespace apollo",
              ""]
    return "\n".join(lines)


def _class_declaration(factory: FunctionFactory, class_name: str,
                       chunk: Sequence[FunctionRequest]) -> List[str]:
    lines = [f"class {class_name} {{", " public:"]
    for request in chunk:
        if request.recursive:
            lines.append(f"  int {request.name}(int depth, int fanout);")
            continue
        parameters = factory.parameters_for(request)
        lines.extend(FunctionFactory.declaration_lines(
            request.return_type, request.name, parameters))
    lines += [" private:", "  int state_ = 0;", "};", ""]
    return lines


def _include_block(rng: random.Random, module: ModuleSpec) -> List[str]:
    lines = [f'#include "{module.name}/common/types.h"']
    for _ in range(rng.randint(1, 2)):
        submodule = rng.choice(module.submodules)
        lines.append(f'#include "{module.name}/{submodule}/'
                     f'{rng.choice(["util", "config", "state"])}.h"')
    lines.append(f"#include <{rng.choice(_SYSTEM_HEADERS)}>")
    lines.append(f"#include <{rng.choice(_SYSTEM_HEADERS)}>")
    lines.append("")
    return lines


def _module_header(module: ModuleSpec) -> CorpusFile:
    guard = f"APOLLO_{module.name.upper()}_COMMON_TYPES_H_"
    source = "\n".join([
        f"#ifndef {guard}",
        f"#define {guard}",
        "",
        "namespace apollo {",
        f"namespace {module.name} {{",
        "",
        "struct Header {",
        "  double timestamp_sec = 0.0;",
        "  int sequence_num = 0;",
        "};",
        "",
        f"constexpr int k{module.name.capitalize()}Version = 3;",
        "",
        f"}}  // namespace {module.name}",
        "}  // namespace apollo",
        "",
        f"#endif  // {guard}",
        "",
    ])
    return CorpusFile(path=f"{module.name}/common/types.h", source=source,
                      module=module.name)


def _globals_file(rng: random.Random, module: ModuleSpec,
                  count: int) -> CorpusFile:
    lines = [f'#include "{module.name}/common/types.h"', "",
             "namespace apollo {", f"namespace {module.name} {{", ""]
    for index in range(count):
        kind = rng.choice(["int", "float", "double", "bool"])
        initializer = {"int": "0", "float": "0.0f", "double": "0.0",
                       "bool": "false"}[kind]
        lines.append(f"{kind} g_shared_state_{index} = {initializer};")
    lines += ["", f"}}  // namespace {module.name}",
              "}  // namespace apollo", ""]
    return CorpusFile(path=f"{module.name}/common/module_state.cc",
                      source="\n".join(lines), module=module.name)


# ---------------------------------------------------------------------------
# helpers


def _chunk_kernels(total: int, per_file: int = 4) -> List[int]:
    """Split a kernel count into per-file chunks."""
    chunks: List[int] = []
    while total > 0:
        take = min(per_file, total)
        chunks.append(take)
        total -= take
    return chunks


def _pick_callees(rng: random.Random, defined: List[str],
                  other_modules: Dict[str, List[str]]) -> Tuple[str, ...]:
    callees: List[str] = []
    if defined:
        callees.extend(rng.sample(defined, min(3, len(defined))))
    donors = [names for names in other_modules.values() if names]
    if donors and rng.random() < 0.35:
        donor = rng.choice(donors)
        callees.append(rng.choice(donor))
    return tuple(callees)


def _globals_for_file(rng: random.Random, module: ModuleSpec,
                      file_count: int) -> int:
    average = max(1, module.globals_count // max(1, file_count))
    return max(0, average + rng.randint(-1, 1))


def _file_stem(chunk: Sequence[FunctionRequest], index: int) -> str:
    if not chunk:
        return f"unit_{index}"
    head = chunk[0].name
    snake = "".join(f"_{ch.lower()}" if ch.isupper() else ch
                    for ch in head).lstrip("_")
    return f"{snake}_{index}"
