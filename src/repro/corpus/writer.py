"""Write a generated corpus to disk as a source tree."""

from __future__ import annotations

import os
from typing import List

from ..errors import CorpusError
from .generator import Corpus


def write_corpus(corpus: Corpus, root: str,
                 overwrite: bool = False) -> List[str]:
    """Materialize every corpus file under ``root``.

    Args:
        corpus: the generated corpus.
        root: target directory (created if missing).
        overwrite: refuse to clobber existing files unless True.

    Returns:
        The written paths, relative to ``root``.
    """
    written: List[str] = []
    for record in corpus.files:
        relative = record.path
        if os.path.isabs(relative) or ".." in relative.split("/"):
            raise CorpusError(f"unsafe corpus path {relative!r}")
        destination = os.path.join(root, relative)
        if os.path.exists(destination) and not overwrite:
            raise CorpusError(f"refusing to overwrite {destination}")
        os.makedirs(os.path.dirname(destination), exist_ok=True)
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(record.source)
        written.append(relative)
    return written


#: Every C, C++, and CUDA suffix an industrial tree uses for sources
#: and headers.  Plain C and the alternate C++ spellings matter: Apollo
#: vendors C libraries, and dropping them silently under-reports LOC.
SOURCE_EXTENSIONS = (".cc", ".cu", ".h", ".cpp", ".cuh",
                     ".c", ".hpp", ".cxx", ".hh")


def read_tree(root: str, extensions=SOURCE_EXTENSIONS) -> dict:
    """Load a source tree back into a path -> source mapping.

    Files are decoded as UTF-8 with invalid bytes replaced by U+FFFD:
    industrial trees contain latin-1 comments and the odd embedded
    blob, and a single such file must degrade to fuzzy-parser noise,
    not kill the whole sweep with a ``UnicodeDecodeError``.

    Raises:
        CorpusError: when ``root`` does not exist or is not a directory
            (``os.walk`` would silently yield nothing).
    """
    if not os.path.exists(root):
        raise CorpusError(f"source tree {root!r} does not exist")
    if not os.path.isdir(root):
        raise CorpusError(f"source tree {root!r} is not a directory")
    sources = {}
    for directory, _, filenames in os.walk(root):
        for filename in filenames:
            if not filename.endswith(tuple(extensions)):
                continue
            full = os.path.join(directory, filename)
            relative = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, "r", encoding="utf-8",
                      errors="replace") as handle:
                sources[relative] = handle.read()
    return sources
