"""Write a generated corpus to disk as a source tree."""

from __future__ import annotations

import os
from typing import Iterator, List, Optional, Tuple

from ..errors import CorpusError
from ..obs.log import NULL_LOG, EventLog
from .generator import Corpus


def write_corpus(corpus: Corpus, root: str,
                 overwrite: bool = False) -> List[str]:
    """Materialize every corpus file under ``root``.

    Args:
        corpus: the generated corpus.
        root: target directory (created if missing).
        overwrite: refuse to clobber existing files unless True.

    Returns:
        The written paths, relative to ``root``.
    """
    written: List[str] = []
    for record in corpus.files:
        relative = record.path
        if os.path.isabs(relative) or ".." in relative.split("/"):
            raise CorpusError(f"unsafe corpus path {relative!r}")
        destination = os.path.join(root, relative)
        if os.path.exists(destination) and not overwrite:
            raise CorpusError(f"refusing to overwrite {destination}")
        os.makedirs(os.path.dirname(destination), exist_ok=True)
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(record.source)
        written.append(relative)
    return written


#: Every C, C++, and CUDA suffix an industrial tree uses for sources
#: and headers.  Plain C and the alternate C++ spellings matter: Apollo
#: vendors C libraries, and dropping them silently under-reports LOC.
#: Matching is case-insensitive (see :func:`iter_tree_files`), so the
#: upper-case spellings (``.C``, ``.CPP``, ``.HH``) common in older
#: industrial trees need no entries of their own.
SOURCE_EXTENSIONS = (".cc", ".cu", ".h", ".cpp", ".cuh",
                     ".c", ".hpp", ".cxx", ".hh")


def iter_tree_files(root: str, extensions=SOURCE_EXTENSIONS
                    ) -> Iterator[Tuple[str, str]]:
    """Yield ``(relative, full)`` for every source file under ``root``.

    Extensions are matched case-insensitively: industrial trees mix
    ``.C``/``.CPP``/``.HH`` (old Unix C++ conventions, DOS-era exports)
    with the lower-case spellings, and a case-sensitive walk silently
    drops them from the corpus.

    Raises:
        CorpusError: when ``root`` does not exist or is not a directory
            (``os.walk`` would silently yield nothing).
    """
    if not os.path.exists(root):
        raise CorpusError(f"source tree {root!r} does not exist")
    if not os.path.isdir(root):
        raise CorpusError(f"source tree {root!r} is not a directory")
    suffixes = tuple(extension.lower() for extension in extensions)
    for directory, _, filenames in os.walk(root):
        for filename in filenames:
            if not filename.lower().endswith(suffixes):
                continue
            full = os.path.join(directory, filename)
            relative = os.path.relpath(full, root).replace(os.sep, "/")
            yield relative, full


def read_tree(root: str, extensions=SOURCE_EXTENSIONS,
              log: Optional[EventLog] = None,
              skipped: Optional[List[str]] = None) -> dict:
    """Load a source tree back into a path -> source mapping.

    Files are decoded as UTF-8 with invalid bytes replaced by U+FFFD:
    industrial trees contain latin-1 comments and the odd embedded
    blob, and a single such file must degrade to fuzzy-parser noise,
    not kill the whole sweep with a ``UnicodeDecodeError``.

    A file that vanishes or turns unreadable between the walk and the
    read — an editor's atomic-rename save racing a watch daemon, a
    broken symlink, a permissions hole — is *skipped*, not fatal: it is
    recorded in ``skipped`` (when a list is passed) and emitted as a
    ``parse.skipped_unreadable`` warning event on ``log``.

    Args:
        root: tree root to walk.
        extensions: source suffixes to load (case-insensitive).
        log: optional :class:`~repro.obs.log.EventLog` receiving one
            ``parse.skipped_unreadable`` warning per skipped file.
        skipped: optional list the skipped relative paths are appended
            to, for stats accounting.

    Raises:
        CorpusError: when ``root`` does not exist or is not a directory
            (``os.walk`` would silently yield nothing).
    """
    log = log if log is not None else NULL_LOG
    sources = {}
    for relative, full in iter_tree_files(root, extensions):
        try:
            with open(full, "r", encoding="utf-8",
                      errors="replace") as handle:
                sources[relative] = handle.read()
        except OSError as error:
            log.warning("parse.skipped_unreadable", path=relative,
                        error=f"{type(error).__name__}: {error}")
            if skipped is not None:
                skipped.append(relative)
    return sources
