"""Synthetic Apollo-like corpus generation (the paper's analysis subject)."""

from .apollo import APOLLO_MODULES, APOLLO_SPEC, EXPECTED_OVER_TEN, apollo_remediated_spec, apollo_spec
from .autoware import AUTOWARE_MODULES, AUTOWARE_SPEC, autoware_spec
from .generator import Corpus, CorpusFile, generate_corpus
from .spec import ComplexityProfile, CorpusSpec, ModuleSpec
from .writer import SOURCE_EXTENSIONS, iter_tree_files, read_tree, write_corpus

__all__ = [
    "APOLLO_MODULES",
    "APOLLO_SPEC",
    "AUTOWARE_MODULES",
    "AUTOWARE_SPEC",
    "autoware_spec",
    "ComplexityProfile",
    "Corpus",
    "CorpusFile",
    "CorpusSpec",
    "EXPECTED_OVER_TEN",
    "ModuleSpec",
    "SOURCE_EXTENSIONS",
    "apollo_remediated_spec",
    "apollo_spec",
    "generate_corpus",
    "iter_tree_files",
    "read_tree",
    "write_corpus",
]
