"""The calibrated Apollo-like corpus specification.

Calibration targets, all from the paper:

* total size > 220k LOC, modules between 5k and 60k LOC (Sections 3.1.1
  and 3.4.2);
* 554 functions with cyclomatic complexity above 10 framework-wide
  (Section 3.1.1) — the per-module ``moderate+risky+unstable`` counts
  below sum to exactly 554;
* more than 1,400 explicit casts (Section 3.1.3) — the planted
  ``cast_count`` values sum to 1,420, and switch selectors/integer returns
  add incidental ``static_cast``s on top;
* roughly 900 mutable globals in the perception module (Section 3.5
  item 5);
* 41% of functions in the object-detection (perception) module with
  several exit points (Section 3.5 item 1);
* GPU code concentrated in perception, structured like the Figure 4
  excerpt;
* a few recursive functions "for well-known purposes such as processing
  trees" (Section 3.5 item 10) and several gotos (item 9).

An average generated function measures ~19 lines including file overhead,
which the function counts below use to hit the LOC targets.
"""

from __future__ import annotations

from .spec import ComplexityProfile, CorpusSpec, ModuleSpec


def _profile(low: int, moderate: int, risky: int,
             unstable: int) -> ComplexityProfile:
    return ComplexityProfile(low=low, moderate=moderate, risky=risky,
                             unstable=unstable)


APOLLO_MODULES = (
    ModuleSpec(
        name="perception",
        profile=_profile(low=2900, moderate=105, risky=38, unstable=7),
        globals_count=900,
        cast_count=400,
        multi_exit_ratio=0.41,
        cuda_kernel_count=48,
        goto_count=6,
        recursive_functions=1,
        uninitialized_count=14,
        submodules=("camera", "lidar", "radar", "fusion", "common"),
    ),
    ModuleSpec(
        name="planning",
        profile=_profile(low=2150, moderate=78, risky=27, unstable=5),
        globals_count=120,
        cast_count=260,
        multi_exit_ratio=0.38,
        goto_count=4,
        recursive_functions=1,
        uninitialized_count=10,
        submodules=("tasks", "reference_line", "scenarios", "common"),
    ),
    ModuleSpec(
        name="prediction",
        profile=_profile(low=1500, moderate=50, risky=17, unstable=3),
        globals_count=90,
        cast_count=150,
        multi_exit_ratio=0.36,
        goto_count=3,
        uninitialized_count=9,
        submodules=("evaluator", "predictor", "container"),
    ),
    ModuleSpec(
        name="map",
        profile=_profile(low=1300, moderate=40, risky=13, unstable=2),
        globals_count=70,
        cast_count=130,
        multi_exit_ratio=0.33,
        goto_count=2,
        recursive_functions=1,
        uninitialized_count=8,
        submodules=("hdmap", "pnc_map", "relative_map"),
    ),
    ModuleSpec(
        name="localization",
        profile=_profile(low=980, moderate=32, risky=11, unstable=2),
        globals_count=60,
        cast_count=120,
        multi_exit_ratio=0.34,
        goto_count=2,
        uninitialized_count=8,
        submodules=("msf", "rtk", "common"),
    ),
    ModuleSpec(
        name="control",
        profile=_profile(low=760, moderate=27, risky=9, unstable=2),
        globals_count=50,
        cast_count=90,
        multi_exit_ratio=0.32,
        goto_count=2,
        uninitialized_count=7,
        submodules=("controller", "common"),
    ),
    ModuleSpec(
        name="drivers",
        profile=_profile(low=680, moderate=18, risky=6, unstable=1),
        globals_count=60,
        cast_count=80,
        multi_exit_ratio=0.30,
        cuda_kernel_count=8,
        goto_count=3,
        uninitialized_count=7,
        submodules=("camera", "lidar", "canbus_bridge"),
    ),
    ModuleSpec(
        name="common",
        profile=_profile(low=580, moderate=11, risky=4, unstable=1),
        globals_count=40,
        cast_count=60,
        multi_exit_ratio=0.28,
        goto_count=1,
        uninitialized_count=5,
        submodules=("math", "util", "monitor"),
    ),
    ModuleSpec(
        name="routing",
        profile=_profile(low=500, moderate=18, risky=6, unstable=1),
        globals_count=30,
        cast_count=70,
        multi_exit_ratio=0.31,
        goto_count=1,
        recursive_functions=1,
        uninitialized_count=5,
        submodules=("graph", "strategy"),
    ),
    ModuleSpec(
        name="canbus",
        profile=_profile(low=400, moderate=14, risky=5, unstable=1),
        globals_count=40,
        cast_count=60,
        multi_exit_ratio=0.30,
        goto_count=2,
        uninitialized_count=5,
        submodules=("vehicle", "proto_adapter"),
    ),
)

#: Framework-wide CC>10 target; the paper reports 554.
EXPECTED_OVER_TEN = sum(module.profile.over_ten
                        for module in APOLLO_MODULES)

#: The full-scale calibrated corpus.
APOLLO_SPEC = CorpusSpec(modules=APOLLO_MODULES, seed=26262, scale=1.0)


def apollo_spec(scale: float = 1.0, seed: int = 26262) -> CorpusSpec:
    """The calibrated spec, optionally scaled down for fast tests."""
    return CorpusSpec(modules=APOLLO_MODULES, seed=seed, scale=scale)


def apollo_remediated_spec(scale: float = 1.0,
                           seed: int = 26262) -> CorpusSpec:
    """The corpus after applying the engineering-effort remediations.

    Models what the paper says is reachable without research
    innovations: low complexity (no CC>10 functions), no gotos, minimal
    casts, initialized variables, few globals, mostly single-exit
    functions, defensive parameter validation, and static allocation.
    The CUDA kernels stay — pointers in GPU code need the research-level
    subset migration, so the GPU-related verdicts intentionally persist.
    """
    remediated = []
    for module in APOLLO_MODULES:
        profile = ComplexityProfile(
            low=module.profile.total, moderate=0, risky=0, unstable=0)
        remediated.append(ModuleSpec(
            name=module.name,
            profile=profile,
            globals_count=1,
            cast_count=1,
            multi_exit_ratio=0.02,
            cuda_kernel_count=module.cuda_kernel_count,
            goto_count=0,
            recursive_functions=0,
            uninitialized_count=0,
            defensive_ratio=0.97,
            dynamic_alloc_ratio=0.02,
            submodules=module.submodules,
        ))
    return CorpusSpec(modules=tuple(remediated), seed=seed, scale=scale)
