"""Markdown rendering of a complete assessment — the shareable report."""

from __future__ import annotations

from typing import List

from ..iso26262.asil import TABLE_COLUMNS
from ..iso26262.compliance import TableAssessment
from .assessment import AssessmentResult
from .remediation import plan_remediation, render_plan


def _table_markdown(assessment: TableAssessment) -> List[str]:
    lines = [
        f"### Table {assessment.table.paper_number}: "
        f"{assessment.table.caption}",
        "",
        "| # | technique | " + " | ".join(asil.name
                                          for asil in TABLE_COLUMNS)
        + " | verdict | rationale |",
        "|---|---|" + "---|" * len(TABLE_COLUMNS) + "---|---|",
    ]
    for entry in assessment.assessments:
        grades = " | ".join(entry.technique.grades[asil].symbol
                            for asil in TABLE_COLUMNS)
        lines.append(
            f"| {entry.technique.index} | {entry.technique.title} | "
            f"{grades} | **{entry.verdict.value}** | "
            f"{entry.rationale} |")
    lines.append("")
    return lines


def render_markdown(result: AssessmentResult,
                    title: str = "ISO 26262-6 adherence assessment"
                    ) -> str:
    """Render the whole assessment as a Markdown document."""
    lines: List[str] = [
        f"# {title}",
        "",
        "## Summary",
        "",
        f"- translation units analyzed: **{result.unit_count}**",
        f"- total lines of code: **{result.total_loc}**",
        f"- functions: **{result.total_functions}**",
        f"- functions with cyclomatic complexity > 10: "
        f"**{result.moderate_or_higher}**",
        "",
        "## Module metrics (Figure 3)",
        "",
        "| module | LOC | functions | cc>5 | cc>10 | cc>20 | cc>50 |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in result.figure3():
        lines.append(f"| {row['module']} | {row['loc']} | "
                     f"{row['functions']} | {row['cc>5']} | "
                     f"{row['cc>10']} | {row['cc>20']} | {row['cc>50']} |")
    lines += ["", "## Requirement tables", ""]
    for key in ("modeling_coding", "architectural_design", "unit_design"):
        lines.extend(_table_markdown(result.tables[key]))

    lines += ["## Observations", ""]
    for observation in sorted(result.observations,
                              key=lambda entry: entry.number):
        badge = "✔" if observation.supported else "✘"
        lines.append(f"- **Observation {observation.number}** {badge} "
                     f"*{observation.title}* — {observation.statement}")
    lines += ["", "## Remediation", "", "```",
              render_plan(plan_remediation(result.tables)), "```", ""]
    return "\n".join(lines)
