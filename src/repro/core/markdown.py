"""Markdown rendering of a complete assessment — the shareable report.

The CLI writes this document through the reporter bridge
(:class:`~repro.report.base.MarkdownReporter` calls
:func:`render_markdown`), alongside the JSON, SARIF, Cobertura, and
HTML-dashboard surfaces; the rendered bytes are pinned identical to the
pre-bridge ad-hoc writer.
"""

from __future__ import annotations

from typing import List

from ..iso26262.asil import TABLE_COLUMNS
from ..iso26262.compliance import TableAssessment
from ..rules import REGISTRY
from .assessment import AssessmentResult
from .remediation import plan_remediation, render_plan


def _table_markdown(assessment: TableAssessment) -> List[str]:
    lines = [
        f"### Table {assessment.table.paper_number}: "
        f"{assessment.table.caption}",
        "",
        "| # | technique | " + " | ".join(asil.name
                                          for asil in TABLE_COLUMNS)
        + " | verdict | rationale |",
        "|---|---|" + "---|" * len(TABLE_COLUMNS) + "---|---|",
    ]
    for entry in assessment.assessments:
        grades = " | ".join(entry.technique.grades[asil].symbol
                            for asil in TABLE_COLUMNS)
        lines.append(
            f"| {entry.technique.index} | {entry.technique.title} | "
            f"{grades} | **{entry.verdict.value}** | "
            f"{entry.rationale} |")
    lines.append("")
    return lines


def _rule_index_markdown(result: AssessmentResult) -> List[str]:
    """The per-rule activity table, shown when the rules layer was used.

    One row per registered rule: its effective severity under the run's
    profile (``off`` when disabled), its ISO 26262 topic, and how many
    findings it produced / had suppressed by deviations (plus how many
    are new against the baseline, when one was compared).
    """
    findings: dict = {}
    suppressed: dict = {}
    for report in result.reports.values():
        for rule, count in report.count_by_rule().items():
            findings[rule] = findings.get(rule, 0) + count
        for finding in report.suppressed:
            suppressed[finding.rule] = suppressed.get(finding.rule, 0) + 1
    new_by_rule = (result.baseline.new_by_rule()
                   if result.baseline is not None else None)
    header = "| rule | checker | severity | topic | findings | suppressed |"
    divider = "|---|---|---|---|---|---|"
    if new_by_rule is not None:
        header += " new |"
        divider += "---|"
    lines = ["## Rule index", "", header, divider]
    for rule in REGISTRY:
        if result.profile is not None \
                and not result.profile.enabled(rule.id):
            severity = "off"
        elif result.profile is not None:
            severity = result.profile.severity_for(
                rule.id, rule.severity).name
        else:
            severity = rule.severity.name
        topic = f"{rule.table}/{rule.topic}" if rule.table else "-"
        row = (f"| {rule.id} | {rule.checker} | {severity} | {topic} | "
               f"{findings.get(rule.id, 0)} | "
               f"{suppressed.get(rule.id, 0)} |")
        if new_by_rule is not None:
            row += f" {new_by_rule.get(rule.id, 0)} |"
        lines.append(row)
    lines.append("")
    return lines


def _degradations_markdown(result: AssessmentResult) -> List[str]:
    """The contained-fault report, shown only on degraded runs.

    One row per :class:`~repro.checkers.base.CheckerCrash`, so a reader
    knows exactly which checker's evidence is incomplete (and where),
    without digging through logs.
    """
    lines = [
        "## Degradations",
        "",
        f"This run completed **degraded**: {len(result.crashes)} "
        f"internal fault(s) were contained. Findings from the named "
        f"checkers are a lower bound; every other checker ran in full.",
        "",
        "| checker | stage | file | exception |",
        "|---|---|---|---|",
    ]
    for crash in result.crashes:
        lines.append(f"| {crash.checker} | {crash.stage} | "
                     f"{crash.path or '-'} | {crash.exc_type}: "
                     f"{crash.message} |")
    lines.append("")
    return lines


def render_markdown(result: AssessmentResult,
                    title: str = "ISO 26262-6 adherence assessment"
                    ) -> str:
    """Render the whole assessment as a Markdown document."""
    lines: List[str] = [
        f"# {title}",
        "",
        "## Summary",
        "",
        f"- translation units analyzed: **{result.unit_count}**",
        f"- total lines of code: **{result.total_loc}**",
        f"- functions: **{result.total_functions}**",
        f"- functions with cyclomatic complexity > 10: "
        f"**{result.moderate_or_higher}**",
        "",
    ]
    if result.degraded:
        lines.extend(_degradations_markdown(result))
    lines += [
        "## Module metrics (Figure 3)",
        "",
        "| module | LOC | functions | cc>5 | cc>10 | cc>20 | cc>50 |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in result.figure3():
        lines.append(f"| {row['module']} | {row['loc']} | "
                     f"{row['functions']} | {row['cc>5']} | "
                     f"{row['cc>10']} | {row['cc>20']} | {row['cc>50']} |")
    lines += ["", "## Requirement tables", ""]
    for key in ("modeling_coding", "architectural_design", "unit_design"):
        lines.extend(_table_markdown(result.tables[key]))

    if result.profile is not None or result.total_suppressed \
            or result.baseline is not None:
        lines.extend(_rule_index_markdown(result))

    lines += ["## Observations", ""]
    for observation in sorted(result.observations,
                              key=lambda entry: entry.number):
        badge = "✔" if observation.supported else "✘"
        lines.append(f"- **Observation {observation.number}** {badge} "
                     f"*{observation.title}* — {observation.statement}")
    lines += ["", "## Remediation", "", "```",
              render_plan(plan_remediation(result.tables)), "```", ""]
    return "\n".join(lines)
