"""Assessment diffing: quantify what a remediation campaign achieved.

Compares two :class:`~repro.core.assessment.AssessmentResult` objects
(e.g. baseline vs. remediated codebase) technique by technique, reporting
verdict transitions and residual gaps — the evidence a safety case would
attach to a remediation milestone.

Two user-facing surfaces consume this module:

* ``repro-assess --diff-baseline FILE`` diffs the current run against a
  previous run's ``--json`` document (rehydrated through
  :func:`assessment_view_from_dict`);
* the ``repro-serve`` ``diff`` verb and ``--watch`` stream diff each
  fresh assessment against the daemon's in-memory previous one.

Both accept anything shaped like an assessment — a live
:class:`~repro.core.assessment.AssessmentResult` or the lightweight
view rebuilt from JSON — because :func:`diff_assessments` and
:func:`gap_reduction` only walk ``tables -> assessments -> technique``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import BaselineError
from ..iso26262.compliance import GapSeverity, Verdict
from .assessment import AssessmentResult

#: Ordering used to decide whether a transition is an improvement.
_VERDICT_RANK: Dict[Verdict, int] = {
    Verdict.NON_COMPLIANT: 0,
    Verdict.UNKNOWN: 1,
    Verdict.PARTIAL: 2,
    Verdict.NOT_APPLICABLE: 3,
    Verdict.COMPLIANT: 3,
}


@dataclass(frozen=True)
class VerdictTransition:
    """One technique's verdict movement between two assessments."""

    table_key: str
    technique_key: str
    title: str
    before: Verdict
    after: Verdict

    @property
    def improved(self) -> bool:
        return _VERDICT_RANK[self.after] > _VERDICT_RANK[self.before]

    @property
    def regressed(self) -> bool:
        return _VERDICT_RANK[self.after] < _VERDICT_RANK[self.before]

    @property
    def unchanged(self) -> bool:
        return self.before is self.after

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready shape (what the serve ``diff`` verb replies)."""
        return {
            "table": self.table_key,
            "technique": self.technique_key,
            "title": self.title,
            "before": self.before.value,
            "after": self.after.value,
            "direction": ("improved" if self.improved
                          else "regressed" if self.regressed
                          else "unchanged"),
        }


@dataclass
class AssessmentDiff:
    """The full comparison."""

    transitions: List[VerdictTransition]

    @property
    def improved(self) -> List[VerdictTransition]:
        return [entry for entry in self.transitions if entry.improved]

    @property
    def regressed(self) -> List[VerdictTransition]:
        return [entry for entry in self.transitions if entry.regressed]

    @property
    def residual_gaps(self) -> List[VerdictTransition]:
        return [entry for entry in self.transitions
                if entry.after in (Verdict.NON_COMPLIANT, Verdict.PARTIAL)]

    def render(self) -> str:
        lines = ["Assessment diff (baseline -> remediated)",
                 "=" * 60]
        for entry in self.transitions:
            if entry.unchanged:
                continue
            marker = "+" if entry.improved else "-"
            lines.append(f" {marker} {entry.title}: "
                         f"{entry.before.value} -> {entry.after.value}")
        lines.append("")
        lines.append(f"improved: {len(self.improved)}  "
                     f"regressed: {len(self.regressed)}  "
                     f"residual gaps: {len(self.residual_gaps)}")
        if self.residual_gaps:
            lines.append("residual (need deeper/research effort):")
            for entry in self.residual_gaps:
                lines.append(f"  - {entry.title} ({entry.after.value})")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rollup: transitions plus the summary counts."""
        return {
            "transitions": [entry.to_dict()
                            for entry in self.transitions
                            if not entry.unchanged],
            "improved": len(self.improved),
            "regressed": len(self.regressed),
            "residual_gaps": [entry.to_dict()
                              for entry in self.residual_gaps],
        }


def diff_assessments(before: AssessmentResult,
                     after: AssessmentResult) -> AssessmentDiff:
    """Compare two assessments over the same requirement tables.

    Either side may be a live result or a JSON-rehydrated view
    (:func:`assessment_view_from_dict`); only the
    ``tables -> assessments -> technique`` shape is consulted.
    """
    transitions: List[VerdictTransition] = []
    for table_key, before_table in before.tables.items():
        after_table = after.tables[table_key]
        for entry in before_table.assessments:
            after_entry = after_table.assessment(entry.technique.key)
            transitions.append(VerdictTransition(
                table_key=table_key,
                technique_key=entry.technique.key,
                title=entry.technique.title,
                before=entry.verdict,
                after=after_entry.verdict,
            ))
    return AssessmentDiff(transitions=transitions)


def gap_reduction(before: AssessmentResult,
                  after: AssessmentResult) -> Dict[str, int]:
    """Weighted-gap totals before/after (minor=1, major=2, critical=3).

    ``reduction`` is signed: negative means the gaps *grew*.
    """
    def weighted(result: AssessmentResult) -> int:
        total = 0
        for table in result.tables.values():
            for entry in table.assessments:
                if entry.gap is GapSeverity.MINOR:
                    total += 1
                elif entry.gap is GapSeverity.MAJOR:
                    total += 2
                elif entry.gap is GapSeverity.CRITICAL:
                    total += 3
        return total

    before_total = weighted(before)
    after_total = weighted(after)
    return {"before": before_total, "after": after_total,
            "reduction": before_total - after_total}


# ----------------------------------------------------------------------
# JSON rehydration: diff against a saved ``--json`` document


@dataclass(frozen=True)
class _TechniqueView:
    """Just enough of a technique for :func:`diff_assessments`."""

    key: str
    title: str


@dataclass(frozen=True)
class _EntryView:
    """One rehydrated technique assessment (verdict + gap)."""

    technique: _TechniqueView
    verdict: Verdict
    gap: GapSeverity


@dataclass
class _TableView:
    """One rehydrated table: ordered entries plus keyed lookup."""

    assessments: List[_EntryView] = field(default_factory=list)

    def assessment(self, technique_key: str) -> _EntryView:
        for entry in self.assessments:
            if entry.technique.key == technique_key:
                return entry
        raise KeyError(technique_key)


@dataclass
class AssessmentView:
    """An assessment rebuilt from its ``--json`` document.

    Carries exactly what :func:`diff_assessments` and
    :func:`gap_reduction` consume, so a finished run can be diffed
    against a historical document without re-running the baseline.
    """

    tables: Dict[str, _TableView] = field(default_factory=dict)


def assessment_view_from_dict(document: Dict) -> AssessmentView:
    """Rebuild the diffable view of a saved assessment document.

    Accepts the object ``repro-assess --json`` writes (the
    :meth:`~repro.core.assessment.AssessmentResult.to_dict` shape).

    Raises:
        BaselineError: when the document is not such an object —
            missing ``tables``, a technique without key/verdict, or a
            verdict/gap value this version does not know.
    """
    tables = document.get("tables") if isinstance(document, dict) else None
    if not isinstance(tables, dict) or not tables:
        raise BaselineError(
            "diff baseline is not an assessment document "
            "(expected the repro-assess --json shape with a "
            "'tables' object)")
    view = AssessmentView()
    for table_key, table in tables.items():
        techniques = (table.get("techniques")
                      if isinstance(table, dict) else None)
        if not isinstance(techniques, list):
            raise BaselineError(
                f"diff baseline table {table_key!r} has no "
                f"'techniques' list")
        entries: List[_EntryView] = []
        for technique in techniques:
            try:
                entries.append(_EntryView(
                    technique=_TechniqueView(
                        key=technique["key"],
                        title=technique.get("title", technique["key"])),
                    verdict=Verdict(technique["verdict"]),
                    gap=GapSeverity[technique.get("gap", "NONE")],
                ))
            except (KeyError, TypeError, ValueError) as error:
                raise BaselineError(
                    f"diff baseline table {table_key!r} holds a "
                    f"malformed technique entry: {error}")
        view.tables[table_key] = _TableView(assessments=entries)
    return view


def load_assessment_view(path: str) -> AssessmentView:
    """Load a ``--json`` document from disk as a diffable view.

    Raises:
        BaselineError: unreadable file, invalid JSON, or a document
            that is not an assessment (see
            :func:`assessment_view_from_dict`).
    """
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise BaselineError(f"cannot read diff baseline: {error}")
    except ValueError as error:
        raise BaselineError(
            f"diff baseline {path!r} is not valid JSON: {error}")
    return assessment_view_from_dict(document)
