"""Assessment diffing: quantify what a remediation campaign achieved.

Compares two :class:`~repro.core.assessment.AssessmentResult` objects
(e.g. baseline vs. remediated codebase) technique by technique, reporting
verdict transitions and residual gaps — the evidence a safety case would
attach to a remediation milestone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..iso26262.compliance import GapSeverity, Verdict
from .assessment import AssessmentResult

#: Ordering used to decide whether a transition is an improvement.
_VERDICT_RANK: Dict[Verdict, int] = {
    Verdict.NON_COMPLIANT: 0,
    Verdict.UNKNOWN: 1,
    Verdict.PARTIAL: 2,
    Verdict.NOT_APPLICABLE: 3,
    Verdict.COMPLIANT: 3,
}


@dataclass(frozen=True)
class VerdictTransition:
    """One technique's verdict movement between two assessments."""

    table_key: str
    technique_key: str
    title: str
    before: Verdict
    after: Verdict

    @property
    def improved(self) -> bool:
        return _VERDICT_RANK[self.after] > _VERDICT_RANK[self.before]

    @property
    def regressed(self) -> bool:
        return _VERDICT_RANK[self.after] < _VERDICT_RANK[self.before]

    @property
    def unchanged(self) -> bool:
        return self.before is self.after


@dataclass
class AssessmentDiff:
    """The full comparison."""

    transitions: List[VerdictTransition]

    @property
    def improved(self) -> List[VerdictTransition]:
        return [entry for entry in self.transitions if entry.improved]

    @property
    def regressed(self) -> List[VerdictTransition]:
        return [entry for entry in self.transitions if entry.regressed]

    @property
    def residual_gaps(self) -> List[VerdictTransition]:
        return [entry for entry in self.transitions
                if entry.after in (Verdict.NON_COMPLIANT, Verdict.PARTIAL)]

    def render(self) -> str:
        lines = ["Assessment diff (baseline -> remediated)",
                 "=" * 60]
        for entry in self.transitions:
            if entry.unchanged:
                continue
            marker = "+" if entry.improved else "-"
            lines.append(f" {marker} {entry.title}: "
                         f"{entry.before.value} -> {entry.after.value}")
        lines.append("")
        lines.append(f"improved: {len(self.improved)}  "
                     f"regressed: {len(self.regressed)}  "
                     f"residual gaps: {len(self.residual_gaps)}")
        if self.residual_gaps:
            lines.append("residual (need deeper/research effort):")
            for entry in self.residual_gaps:
                lines.append(f"  - {entry.title} ({entry.after.value})")
        return "\n".join(lines)


def diff_assessments(before: AssessmentResult,
                     after: AssessmentResult) -> AssessmentDiff:
    """Compare two assessments over the same requirement tables."""
    transitions: List[VerdictTransition] = []
    for table_key, before_table in before.tables.items():
        after_table = after.tables[table_key]
        for entry in before_table.assessments:
            after_entry = after_table.assessment(entry.technique.key)
            transitions.append(VerdictTransition(
                table_key=table_key,
                technique_key=entry.technique.key,
                title=entry.technique.title,
                before=entry.verdict,
                after=after_entry.verdict,
            ))
    return AssessmentDiff(transitions=transitions)


def gap_reduction(before: AssessmentResult,
                  after: AssessmentResult) -> Dict[str, int]:
    """Weighted-gap totals before/after (minor=1, major=2, critical=3)."""
    def weighted(result: AssessmentResult) -> int:
        total = 0
        for table in result.tables.values():
            for entry in table.assessments:
                if entry.gap is GapSeverity.MINOR:
                    total += 1
                elif entry.gap is GapSeverity.MAJOR:
                    total += 2
                elif entry.gap is GapSeverity.CRITICAL:
                    total += 3
        return total

    return {"before": weighted(before), "after": weighted(after)}
