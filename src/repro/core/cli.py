"""Command-line entry point: ``repro-assess``.

Examples::

    repro-assess path/to/codebase          # assess a source tree
    repro-assess --corpus 0.1              # generate + assess a corpus
    repro-assess --corpus 1.0 --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from ..corpus.apollo import apollo_spec
from ..corpus.generator import generate_corpus
from ..corpus.writer import read_tree
from ..errors import (
    BaselineError,
    ConfigError,
    CorpusError,
    ReportError,
    RuleError,
)
from ..obs import (
    LEVELS,
    EventLog,
    RunLedger,
    Tracer,
    build_run_record,
    new_run_id,
    render_hotspots,
    render_profile,
    render_self_time,
    render_span_tree,
    trace_document,
)
from ..report import (
    ReportTargets,
    build_report_model,
    collect_yolo_coverage,
    configured_reporters,
)
from ..rules import REGISTRY, Baseline, profile_from_globs, render_rules
from ..store import Store, default_shard_name, merge_into
from .cache import ResultCache
from .config import PipelineConfig
from .diff import diff_assessments, gap_reduction, load_assessment_view
from .pipeline import AssessmentPipeline


def _shard_name(shard: Optional[str]) -> Optional[str]:
    """The shard directory name for a ``--shard K/N`` run.

    The slice is folded into the name (``shard-<host>-<pid>-1of2``) so
    one process driving several slices — CI matrix legs on one runner,
    or the in-process test harness — writes each slice into its own
    shard directory.
    """
    if not shard:
        return None
    return default_shard_name(shard.replace("/", "of"))


def _package_version() -> str:
    """The installed distribution version, else the source-tree version."""
    try:
        from importlib.metadata import version
        return version("repro")
    except Exception:  # PackageNotFoundError, or no importlib.metadata
        from .. import __version__
        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-assess",
        description="Assess a C/C++/CUDA codebase against the ISO 26262-6 "
                    "software guidelines (DAC 2019 reproduction).")
    parser.add_argument("path", nargs="?",
                        help="root of the source tree to assess")
    parser.add_argument("--corpus", type=float, metavar="SCALE",
                        help="generate and assess the synthetic "
                             "Apollo-like corpus at the given scale "
                             "instead of reading a tree")
    parser.add_argument("--seed", type=int, default=26262,
                        help="corpus generation seed (default 26262)")
    parser.add_argument("--json", metavar="FILE",
                        help="also write the assessment as JSON")
    parser.add_argument("--markdown", metavar="FILE",
                        help="also write the assessment as Markdown")
    parser.add_argument("--html", metavar="DIR",
                        help="write the self-contained HTML dashboard "
                             "(overview + per-module drilldowns + "
                             "annotated coverage) into DIR")
    parser.add_argument("--sarif", metavar="FILE",
                        help="also write the findings as SARIF 2.1.0 "
                             "(deviation suppressions included)")
    parser.add_argument("--cobertura", metavar="FILE",
                        help="also write the YOLO coverage experiment "
                             "as Cobertura XML")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="workers for the parse/checker fan-out "
                             "(default 1 = serial, 0 = one per CPU); "
                             "results are identical at any setting")
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread",
                        help="pool flavor for --jobs > 1 (default "
                             "thread; process sidesteps the GIL)")
    parser.add_argument("--cache", metavar="DIR",
                        help="content-addressed result cache directory; "
                             "unchanged files short-circuit to cached "
                             "parse and checker results")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache even when "
                             "--cache is given")
    parser.add_argument("--store", metavar="DIR",
                        help="sharded content-addressed result store: "
                             "caches parse/checker results under "
                             "DIR/objects, records this run's manifest "
                             "to DIR/runs.jsonl, and accepts shard "
                             "merges (see repro-store)")
    parser.add_argument("--shard", metavar="K/N",
                        help="assess only the Kth of N round-robin "
                             "corpus slices (1-based; requires "
                             "--store); results land in a private "
                             "shard directory for a later "
                             "repro-store merge")
    parser.add_argument("--merge-from", dest="merge_from",
                        action="append", default=[], metavar="DIR",
                        help="merge DIR (another store, shard, or "
                             "object area) into --store before "
                             "assessing, so its results are reused "
                             "(repeatable; sources are only read)")
    parser.add_argument("--strict", action="store_true",
                        help="abort on the first internal fault "
                             "(checker crash, parser bug) instead of "
                             "containing it; without this flag a "
                             "faulted run completes degraded and "
                             "exits 3")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task deadline for --jobs > 1; a "
                             "task exceeding it is abandoned and its "
                             "chunk recomputed serially")
    parser.add_argument("--plan", action="store_true",
                        help="print the prioritized remediation plan")
    parser.add_argument("--experiments", action="store_true",
                        help="also run the coverage and performance "
                             "experiments (Figures 5-8) and print their "
                             "tables")
    parser.add_argument("--trace", action="store_true",
                        help="print the telemetry span tree (per-stage "
                             "wall times and counts)")
    parser.add_argument("--profile", action="store_true",
                        help="print the span tree plus the top slowest "
                             "spans by self time")
    parser.add_argument("--top", type=int, default=None, metavar="N",
                        help="number of spans in the --profile table "
                             "(default 10; requires --profile)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules (id, checker, "
                             "default severity, ISO 26262 topic) and "
                             "exit")
    parser.add_argument("--enable", action="append", metavar="GLOB",
                        default=None,
                        help="enable only rules matching GLOB "
                             "(repeatable; default: all rules)")
    parser.add_argument("--disable", action="append", metavar="GLOB",
                        default=None,
                        help="disable rules matching GLOB (repeatable; "
                             "applied after --enable)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="finding baseline to compare against; the "
                             "summary then reports only new findings")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write this run's finding baseline to FILE")
    parser.add_argument("--diff-baseline", dest="diff_baseline",
                        metavar="FILE",
                        help="diff this run's verdicts against a saved "
                             "--json document: print the improved/"
                             "regressed techniques and the weighted "
                             "gap reduction")
    parser.add_argument("--metrics-json", metavar="FILE",
                        help="write the telemetry document (spans, "
                             "counters, histograms, Chrome trace events) "
                             "as JSON")
    parser.add_argument("--ledger", nargs="?", const=".repro",
                        default=None, metavar="DIR",
                        help="append this run's manifest (config "
                             "fingerprints, stage times, fault and "
                             "cache counters, finding counts) to "
                             "DIR/runs.jsonl for repro-trends "
                             "(default DIR: .repro)")
    parser.add_argument("--log-json", metavar="FILE",
                        help="write structured JSONL events (parse "
                             "failures, checker crashes, worker "
                             "faults, cache corruption) to FILE")
    parser.add_argument("--log-level", choices=tuple(LEVELS),
                        default=None,
                        help="minimum level written to --log-json "
                             "(default info)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_package_version()}")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(render_rules())
        return 0
    if args.top is not None:
        if args.top < 1:
            print(f"--top must be a positive integer, got {args.top}",
                  file=sys.stderr)
            return 2
        if not args.profile:
            print("--top has no effect without --profile",
                  file=sys.stderr)
            return 2
    if args.log_level is not None and not args.log_json:
        print("--log-level has no effect without --log-json",
              file=sys.stderr)
        return 2
    if args.corpus is None and args.path is None:
        parser.error("give a source tree path or --corpus SCALE")
    try:
        profile = profile_from_globs(args.enable, args.disable, REGISTRY)
    except RuleError as error:
        print(str(error), file=sys.stderr)
        return 2
    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except BaselineError as error:
            print(str(error), file=sys.stderr)
            return 2
    store = None
    if args.store:
        if args.cache and not args.no_cache:
            print("--store and --cache are mutually exclusive (a store "
                  "contains its own object area)", file=sys.stderr)
            return 2
        store = Store(args.store)
    else:
        if args.shard:
            print("--shard requires --store (shard results need a "
                  "store to merge into)", file=sys.stderr)
            return 2
        if args.merge_from:
            print("--merge-from requires --store", file=sys.stderr)
            return 2
    telemetry = args.trace or args.profile or args.metrics_json
    # A ledgered (or store-backed) run is traced even without
    # --trace/--profile: the RunRecord needs per-stage wall times.
    # Stdout is unchanged.
    tracer = (Tracer() if telemetry or args.ledger is not None
              or store is not None else None)
    cache = (ResultCache(args.cache)
             if args.cache and not args.no_cache else None)
    if store is not None and not args.no_cache:
        cache = store.object_store(shard=_shard_name(args.shard))
    if args.task_timeout is not None and args.task_timeout <= 0:
        print(f"--task-timeout must be positive, got {args.task_timeout}",
              file=sys.stderr)
        return 2
    run_id = new_run_id()
    log_handle = None
    event_log = None
    if args.log_json:
        try:
            log_handle = open(args.log_json, "w", encoding="utf-8")
        except OSError as error:
            print(f"cannot open event log: {error}", file=sys.stderr)
            return 2
        event_log = EventLog(log_handle,
                             level=args.log_level or "info",
                             run_id=run_id)
    try:
        # Sources are read *after* the event log exists, so per-file
        # skips (a file vanishing or turning unreadable mid-walk) are
        # recorded as parse.skipped_unreadable warnings instead of
        # aborting the run.
        if args.corpus is not None:
            try:
                corpus = generate_corpus(apollo_spec(scale=args.corpus,
                                                     seed=args.seed))
            except CorpusError as error:
                print(f"cannot generate corpus: {error}",
                      file=sys.stderr)
                return 2
            sources = corpus.sources()
        else:
            try:
                sources = read_tree(args.path, log=event_log)
            except CorpusError as error:
                print(f"cannot read source tree: {error}",
                      file=sys.stderr)
                return 2
            if not sources:
                print(f"no C/C++/CUDA sources found under {args.path}",
                      file=sys.stderr)
                return 2
        if args.merge_from:
            try:
                stats = merge_into(store, sources=args.merge_from,
                                   remove_shards=False)
            except OSError as error:
                print(f"cannot merge into store: {error}",
                      file=sys.stderr)
                return 2
            print(f"merged {len(args.merge_from)} source(s) into "
                  f"{args.store} ({stats.objects_added} objects, "
                  f"{stats.runs_added} runs added)")
        return _assess(args, sources, profile, baseline, tracer,
                       cache, event_log, run_id, store)
    finally:
        if log_handle is not None:
            log_handle.close()


def _assess(args, sources, profile, baseline, tracer, cache,
            event_log, run_id, store=None) -> int:
    """Build and run the pipeline, print every report, and (when
    enabled) append the run's manifest to the ledger."""
    try:
        pipeline = AssessmentPipeline(PipelineConfig(
            tracer=tracer, log=event_log, jobs=args.jobs,
            executor=args.executor, cache=cache, shard=args.shard,
            rules=profile,
            baseline=baseline, strict=args.strict,
            task_timeout=args.task_timeout,
            report=ReportTargets(
                json=args.json, markdown=args.markdown,
                html=args.html, sarif=args.sarif,
                cobertura=args.cobertura)))
    except ConfigError as error:
        print(f"bad pipeline configuration: {error}", file=sys.stderr)
        return 2
    # Under --strict a contained fault is not contained: the original
    # exception (and traceback) propagates out of run(), aborting here.
    start = time.perf_counter()
    result = pipeline.run(sources)
    duration = time.perf_counter() - start
    print(result.render_summary())
    if cache is not None:
        print(f"\ncache: {cache.hits} hits, {cache.misses} misses "
              f"({cache.root})")
    if args.diff_baseline:
        try:
            before = load_assessment_view(args.diff_baseline)
        except BaselineError as error:
            print(str(error), file=sys.stderr)
            return 2
        print()
        print(diff_assessments(before, result).render())
        reduction = gap_reduction(before, result)
        print(f"weighted gap: {reduction['before']} -> "
              f"{reduction['after']} "
              f"(reduced by {reduction['reduction']})")
    if args.trace or args.profile:
        print()
        print(render_span_tree(tracer))
    if args.profile:
        limit = args.top if args.top is not None else 10
        print()
        print(render_profile(tracer, limit=limit))
        print()
        print(render_self_time(tracer, limit=limit))
        print()
        print(render_hotspots(tracer, limit=limit))
    if args.metrics_json:
        try:
            with open(args.metrics_json, "w", encoding="utf-8") as handle:
                json.dump(trace_document(tracer), handle, indent=2)
        except OSError as error:
            print(f"cannot write telemetry JSON: {error}", file=sys.stderr)
            return 2
        print(f"\ntelemetry JSON written to {args.metrics_json}")
    if args.plan:
        from .remediation import plan_remediation, render_plan
        print()
        print(render_plan(plan_remediation(result.tables)))
    if args.write_baseline:
        try:
            Baseline.from_reports(result.reports).save(args.write_baseline)
        except BaselineError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(f"\nbaseline written to {args.write_baseline}")
    # Every configured output surface renders from one shared model;
    # the reporters own their (pre-bridge, pinned) announcement lines
    # and error prefixes, so --json/--markdown stay byte-identical.
    targets = pipeline.config.report
    if targets.any():
        coverage = (collect_yolo_coverage()
                    if targets.needs_coverage() else None)
        ledger = (RunLedger(args.ledger)
                  if args.ledger is not None
                  else store.history() if store is not None else None)
        model = build_report_model(
            result, sources, module_of=pipeline.config.module_of,
            coverage=coverage, tracer=tracer, ledger=ledger)
        for reporter, destination in configured_reporters(targets):
            try:
                print(reporter.write(model, destination))
            except ReportError as error:
                print(str(error), file=sys.stderr)
                return 2
    if args.experiments:
        _print_experiments()
    # Exit 3: the assessment completed, but one or more faults were
    # contained along the way — the findings are a lower bound.  CI can
    # distinguish "clean" (0), "unusable invocation" (2), and
    # "complete but degraded" (3).
    exit_code = 3 if result.degraded else 0
    trailer = "\n"
    if args.ledger is not None or store is not None:
        record = build_run_record(
            result, run_id=run_id, duration=duration,
            exit_code=exit_code, config=pipeline.config,
            tracer=tracer, cache=cache,
            # A shard run's manifest describes its slice, not the full
            # input (the default counts what was actually assessed).
            files=len(sources) if not args.shard else None)
        if args.ledger is not None:
            try:
                ledger_path = RunLedger(args.ledger).append(record)
            except OSError as error:
                print(f"cannot write run ledger: {error}",
                      file=sys.stderr)
                return 2
            print(f"{trailer}run {run_id} recorded to {ledger_path}")
            trailer = ""
        if store is not None:
            # A shard run's manifest lives beside its objects, in its
            # own shard directory: concurrent shard processes never
            # contend on the master table, and the merge unions the
            # manifests by run id.
            history = (store.shard(_shard_name(args.shard))
                       if args.shard else store.history())
            try:
                store_path = history.append(record)
            except OSError as error:
                print(f"cannot record run to store: {error}",
                      file=sys.stderr)
                return 2
            print(f"{trailer}run {run_id} recorded to {store_path}")
            trailer = ""
    if event_log is not None:
        print(f"{trailer}event log written to {args.log_json}")
    return exit_code


def _print_experiments() -> None:
    """The dynamic experiments (coverage + performance figures)."""
    from ..dnn.minic_yolo import run_yolo_coverage
    from ..perf import (compare_conv, compare_gemm, render_case_study,
                        render_conv_table, render_gemm_table,
                        run_case_study)
    print("\nFigure 5 — YOLO real-scenario coverage:")
    print(run_yolo_coverage().render())
    print("\nFigure 7 — object detection per implementation:")
    print(render_case_study(run_case_study()))
    print("\nFigure 8(a) — GEMM, CUTLASS vs cuBLAS:")
    print(render_gemm_table(compare_gemm()))
    print("\nFigure 8(b) — convolution, ISAAC vs cuDNN:")
    print(render_conv_table(compare_conv()))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
