"""Remediation planning: the paper's effort taxonomy, made executable.

The paper classifies its findings into gaps "that can be solved with
limited software engineering effort and those that are much deeper and
require research innovations".  This module turns a completed assessment
into a prioritized remediation plan using exactly that taxonomy:

* LOW — the paper says "limited effort" / "minor modifications"
  (defensive programming, gotos, recursion-to-iteration, style);
* MODERATE — "possible with moderate effort" (MISRA adherence for CPU
  code, cast cleanup, initialization, shadowing);
* SIGNIFICANT — "significant redesign and recoding" / "non-negligible
  effort" (complexity reduction, component/interface restructuring,
  global-state elimination);
* RESEARCH — "require research innovations" (a certification-friendly
  GPU language subset, qualified GPU coverage tooling, open library
  stacks) — the Brook Auto / ISAAC directions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from ..iso26262.compliance import GapSeverity, TableAssessment, Verdict


class Effort(enum.IntEnum):
    """The paper's effort classes, ordered by cost."""

    LOW = 0
    MODERATE = 1
    SIGNIFICANT = 2
    RESEARCH = 3


#: technique key -> (effort, recommended action), straight from the
#: paper's prose per requirement.
_PLAYBOOK: Dict[str, tuple] = {
    "low_complexity": (
        Effort.SIGNIFICANT,
        "redesign and recode high-complexity functions; split functions "
        "above CC 10 (paper: 'significant redesign and recoding is "
        "needed')"),
    "language_subsets": (
        Effort.RESEARCH,
        "adopt MISRA C for CPU code (moderate effort) and a Brook "
        "Auto-style certification-friendly subset for GPU code "
        "(research direction, Observations 3-4)"),
    "strong_typing": (
        Effort.MODERATE,
        "replace C-style casts with checked conversions and eliminate "
        "narrowing initializations"),
    "defensive_implementation": (
        Effort.LOW,
        "add parameter-validity checks and handle all return values "
        "(paper: 'with limited effort, this feature can be added')"),
    "design_principles": (
        Effort.SIGNIFICANT,
        "eliminate mutable globals or produce per-global justification "
        "and value-range argumentation"),
    "style_guides": (Effort.LOW, "keep enforcing the style checker in CI"),
    "naming_conventions": (Effort.LOW,
                           "keep enforcing naming checks in CI"),
    "graphical_representation": (Effort.LOW, "not applicable to C/C++"),
    "hierarchical_structure": (
        Effort.LOW, "maintain the existing component hierarchy tooling"),
    "restricted_component_size": (
        Effort.SIGNIFICANT,
        "reorganize modules above the size limit (paper: 'it can be "
        "reorganized or redesigned to stay below the maximum size')"),
    "restricted_interface_size": (
        Effort.MODERATE, "split wide public interfaces"),
    "high_cohesion": (Effort.MODERATE,
                      "relocate misplaced responsibilities"),
    "restricted_coupling": (Effort.MODERATE,
                            "cut cross-module include dependencies"),
    "scheduling_properties": (
        Effort.SIGNIFICANT,
        "replace dynamic thread/timer creation with a static cyclic "
        "executive and document scheduling properties"),
    "restricted_interrupts": (Effort.LOW,
                              "remove or justify signal handling"),
    "single_entry_exit": (
        Effort.MODERATE,
        "restructure multi-exit functions to a single exit point"),
    "no_dynamic_objects": (
        Effort.SIGNIFICANT,
        "pre-allocate pools for runtime-sized data; CUDA buffers need "
        "the GPU-subset migration (Observation 4)"),
    "variable_initialization": (
        Effort.MODERATE, "initialize every variable at declaration"),
    "no_name_reuse": (Effort.MODERATE,
                      "rename shadowed variables; enable -Wshadow"),
    "avoid_globals": (
        Effort.SIGNIFICANT,
        "eliminate globals or provide justified-usage argumentation "
        "(the standard permits justified usage)"),
    "limited_pointers": (
        Effort.RESEARCH,
        "CPU: replace raw pointers with references/spans; GPU: pointers "
        "are intrinsic to CUDA — adopt a stream language subset "
        "(Brook Auto direction)"),
    "no_implicit_conversions": (
        Effort.MODERATE, "make all conversions explicit and checked"),
    "no_hidden_flow": (
        Effort.MODERATE,
        "replace function-like macros with inline functions; minimize "
        "conditional compilation"),
    "no_unconditional_jumps": (
        Effort.LOW,
        "remove gotos (paper: 'by applying minor modifications to the "
        "code, they can be eliminated')"),
    "no_recursion": (
        Effort.LOW,
        "transform tree-walk recursion into iterative form with an "
        "explicit stack"),
}


@dataclass(frozen=True)
class RemediationItem:
    """One prioritized remediation action."""

    technique_key: str
    title: str
    verdict: Verdict
    gap: GapSeverity
    effort: Effort
    action: str

    @property
    def priority(self) -> float:
        """Higher = act sooner: big gaps first, cheap fixes break ties."""
        return self.gap * 10 - self.effort

    def render(self) -> str:
        return (f"[{self.gap.name.lower():<8}] [{self.effort.name.lower():<11}] "
                f"{self.title}\n    -> {self.action}")


def plan_remediation(tables: Dict[str, TableAssessment]
                     ) -> List[RemediationItem]:
    """Build the prioritized plan from a completed assessment."""
    items: List[RemediationItem] = []
    for table in tables.values():
        for entry in table.assessments:
            if entry.gap is GapSeverity.NONE:
                continue
            effort, action = _PLAYBOOK.get(
                entry.technique.key,
                (Effort.MODERATE, "analyze and remediate"))
            items.append(RemediationItem(
                technique_key=entry.technique.key,
                title=entry.technique.title,
                verdict=entry.verdict,
                gap=entry.gap,
                effort=effort,
                action=action,
            ))
    items.sort(key=lambda item: (-item.priority, item.technique_key))
    return items


def render_plan(items: List[RemediationItem]) -> str:
    """The plan as text, grouped by effort class."""
    lines = ["Remediation plan (gaps only, highest priority first)",
             "=" * 60]
    for item in items:
        lines.append(item.render())
    research = [item for item in items if item.effort is Effort.RESEARCH]
    if research:
        lines.append("")
        lines.append("Research innovations required (cannot be closed by "
                     "engineering effort alone):")
        for item in research:
            lines.append(f"  - {item.title}")
    return "\n".join(lines)


def effort_histogram(items: List[RemediationItem]) -> Dict[str, int]:
    histogram = {effort.name: 0 for effort in Effort}
    for item in items:
        histogram[item.effort.name] += 1
    return histogram
