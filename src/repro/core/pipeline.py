"""The assessment pipeline: sources in, ISO 26262 verdicts out.

This orchestrates the paper's whole methodology:

1. parse every translation unit into the fuzzy C++ model;
2. compute per-module size/complexity metrics (Figure 3);
3. run all static checkers;
4. assemble the evidence set;
5. apply the compliance engine to the three ISO 26262-6 tables;
6. derive the numbered observations.

The two per-file stages (1 and 3) run through the execution engine in
:mod:`repro.core.parallel`: with :attr:`PipelineConfig.jobs` > 1 they
fan out over a thread or process pool, and with a
:attr:`PipelineConfig.cache` configured, unchanged files short-circuit
to content-addressed cached results (:mod:`repro.core.cache`).  Either
way the produced :class:`AssessmentResult` is identical to a serial,
cold-cache run: chunks are cut from the sorted path list and merged
back in that order, and only checkers whose project report is a pure
per-unit merge are distributed.
"""

from __future__ import annotations

import gc
import os
import shutil
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..checkers.architecture import ArchitectureChecker
from ..checkers.base import (
    Checker,
    CheckerCrash,
    CheckerReport,
    crash_report,
    make_crash,
    require_unique_checker,
)
from ..checkers.casts import CastChecker
from ..checkers.defensive import DefensiveChecker
from ..checkers.globals_check import GlobalVariableChecker
from ..checkers.gpu_subset import GpuSubsetChecker
from ..checkers.misra import MisraChecker
from ..checkers.naming import NamingChecker
from ..checkers.style import StyleChecker
from ..checkers.unitdesign import UnitDesignChecker
from ..errors import ConfigError, ReproError, SourceError
from ..iso26262.compliance import ComplianceEngine
from ..iso26262.evidence import EvidenceSet
from ..iso26262.observations import generate_observations
from ..engine.driver import fused_unit_bundle
from ..lang.cppmodel import TranslationUnit, parse_translation_unit
from ..metrics.report import ModuleMetrics, measure_module
from ..obs import NULL_LOG, NULL_TRACER, EventLog, Span, Tracer
from ..store.layout import OBJECTS_DIRNAME, default_shard_name
from .assessment import AssessmentResult
from .cache import CACHE_MISS, CHECK_TAG, PARSE_TAG
from .config import PipelineConfig
from .parallel import (
    EXECUTOR_KINDS,
    CheckTask,
    ParseOutcome,
    ParseTask,
    bundle_has_crash,
    chunk_evenly,
    graft_worker_trace,
    run_check_task,
    run_parse_task,
    run_tasks,
    split_checkers,
    worker_count,
)


def parse_shard_spec(spec: Optional[str]) -> Optional[Tuple[int, int]]:
    """Validate a ``"K/N"`` shard slice into ``(K, N)``.

    ``K`` is 1-based; ``1 <= K <= N``.  ``None`` (and ``"1/1"``'s
    degenerate cousins) mean "the whole corpus".  Raises
    :class:`~repro.errors.ConfigError` on anything else, so a bad
    ``--shard`` fails before any work starts.
    """
    if spec is None:
        return None
    head, separator, tail = spec.partition("/")
    if (not separator or not head.strip().isdigit()
            or not tail.strip().isdigit()):
        raise ConfigError(
            f"shard must look like K/N (e.g. 2/4), got {spec!r}")
    index, count = int(head), int(tail)
    if count < 1 or not 1 <= index <= count:
        raise ConfigError(
            f"shard K/N needs 1 <= K <= N, got {spec!r}")
    return index, count


def shard_slice(paths: List[str], shard: Optional[Tuple[int, int]]
                ) -> List[str]:
    """This shard's slice of the sorted path list.

    Round-robin (``sorted(paths)[K-1::N]``): every path lands in
    exactly one of the N shards, and the N slices concatenate —
    order aside — to the full corpus, so N shard runs plus a merge
    cover exactly what one full run covers.
    """
    if shard is None:
        return paths
    index, count = shard
    return paths[index - 1::count]


class AssessmentPipeline:
    """Runs the full assessment over a path -> source mapping.

    When :attr:`PipelineConfig.tracer` is set, every stage is traced:
    a ``pipeline`` root span with ``parse`` (one ``parse_file`` child
    per translation unit, grouped under ``parse_worker`` spans when
    ``jobs > 1``), ``metrics`` (one ``measure_module`` child per
    module), ``checkers`` (one ``checker`` child per checker, with its
    finding count, plus ``checker_worker`` chunk spans when fanned
    out), ``evidence``, ``compliance``, and ``observations`` children —
    plus counters for units parsed, parse failures, findings per
    checker, and cache hits/misses per stage.  The default is the
    no-op NULL_TRACER.
    """

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()
        self.tracer: Tracer = (self.config.tracer
                               if self.config.tracer is not None
                               else NULL_TRACER)
        self.log: EventLog = (self.config.log
                              if self.config.log is not None
                              else NULL_LOG)
        #: Resolved worker count; jobs and executor are validated
        #: eagerly so a bad configuration fails before any work starts.
        self.jobs = worker_count(self.config.jobs)
        if self.config.executor not in EXECUTOR_KINDS:
            raise ConfigError(
                f"executor must be one of {EXECUTOR_KINDS}, "
                f"got {self.config.executor!r}")
        #: Validated ``(K, N)`` corpus slice, or ``None`` for all files.
        self.shard = parse_shard_spec(self.config.shard)
        if self.config.cache is not None:
            self.config.cache.attach(self.tracer.metrics, self.log)

    # ------------------------------------------------------------------

    def run(self, sources: Mapping[str, str]) -> AssessmentResult:
        """Assess a codebase given as ``{path: source_text}``.

        Unless :attr:`PipelineConfig.strict` is set, internal faults
        (a checker or the parser raising outside the
        :class:`~repro.errors.ReproError` hierarchy) are contained: the
        run completes with the surviving checkers and the result
        carries the :class:`~repro.checkers.base.CheckerCrash` records
        with :attr:`~repro.core.assessment.AssessmentResult.degraded`
        set.
        """
        tracer = self.tracer
        log = self.log
        if self.shard is not None:
            # The shard's slice IS its corpus: every stage, report, and
            # manifest below sees only these files, and the cache
            # entries it writes are exactly the ones a later merged
            # full run replays.
            sliced = shard_slice(sorted(sources), self.shard)
            sources = {path: sources[path] for path in sliced}
        crashes: List[CheckerCrash] = []
        log.info("run.start", files=len(sources), jobs=self.jobs,
                 executor=self.config.executor,
                 **({"shard": self.config.shard}
                    if self.shard is not None else {}))
        # A cold run allocates millions of long-lived tokens and model
        # objects; the cyclic collector re-scans them on every generation
        # sweep for no benefit (the object graph is acyclic by
        # construction).  Pause automatic collection for the batch and
        # restore the caller's setting afterwards.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run(sources, crashes, tracer, log)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(self, sources: Mapping[str, str],
             crashes: List[CheckerCrash], tracer, log) -> AssessmentResult:
        with tracer.span("pipeline") as root:
            units, unparseable = self._parse_all(sources, crashes)
            modules = self._measure_modules(sources, units)
            reports = self._run_checkers(sources, units)
            for name in reports:
                crashes.extend(reports[name].crashes)
            if crashes:
                tracer.metrics.counter("pipeline.crashes").inc(
                    len(crashes))
                log.warning("run.degraded", crashes=len(crashes))
            with tracer.span("evidence"):
                evidence = self._assemble_evidence(modules, reports)
            with tracer.span("compliance"):
                engine = ComplianceEngine(
                    target_asil=self.config.target_asil,
                    thresholds=self.config.thresholds)
                tables = engine.assess_all(evidence)
            with tracer.span("observations") as span:
                observations = generate_observations(evidence)
                span.set("observations", len(observations))
            root.set("units", len(units))
            root.set("jobs", self.jobs)
        log.info("run.finish", units=len(units),
                 findings=sum(report.finding_count
                              for report in reports.values()),
                 degraded=bool(crashes))
        baseline = (self.config.baseline.compare(reports)
                    if self.config.baseline is not None else None)
        return AssessmentResult(
            modules=modules,
            reports=reports,
            evidence=evidence,
            tables=tables,
            observations=observations,
            unit_count=len(units),
            unparseable=unparseable,
            profile=self.config.rules,
            baseline=baseline,
            crashes=crashes,
        )

    # ------------------------------------------------------------------
    # stage 1: parse

    def _parse_all(self, sources: Mapping[str, str],
                   crashes: List[CheckerCrash]):
        tracer = self.tracer
        cache = self.config.cache
        metrics = tracer.metrics
        parsed = metrics.counter("pipeline.units_parsed")
        failed = metrics.counter("pipeline.parse_failures")
        units: List[TranslationUnit] = []
        unparseable: List[str] = []
        with tracer.span("parse") as parse_span:
            paths = sorted(sources)
            outcomes: Dict[str, ParseOutcome] = {}
            pending: List[str] = []
            if cache is None:
                pending = paths
            else:
                hits = metrics.counter("cache.hits", stage="parse")
                misses = metrics.counter("cache.misses", stage="parse")
                for path in paths:
                    key = cache.key_for(PARSE_TAG, path, sources[path])
                    value = cache.get(key)
                    if value is CACHE_MISS:
                        misses.inc()
                        pending.append(path)
                    else:
                        hits.inc()
                        outcomes[path] = value
            fresh, persisted = self._parse_pending(pending, sources,
                                                   parse_span)
            for outcome in fresh:
                outcomes[outcome.path] = outcome
                # Contained parser crashes are never cached: the fault
                # may be transient, and strict runs must reproduce it.
                # Outcomes a worker already persisted into its shard
                # (and the parent absorbed) are not written twice.
                if (cache is not None and outcome.crash is None
                        and outcome.path not in persisted):
                    cache.put(cache.key_for(PARSE_TAG, outcome.path,
                                            sources[outcome.path]),
                              outcome)
            for path in paths:
                outcome = outcomes[path]
                if outcome.crash is not None:
                    failed.inc()
                    unparseable.append(path)
                    crashes.append(outcome.crash)
                    self.log.error(
                        "parse.crash", path=path, span=parse_span.id,
                        error=(f"{outcome.crash.exc_type}: "
                               f"{outcome.crash.message}"))
                elif outcome.error is not None:
                    if not self.config.skip_unparseable:
                        raise outcome.error
                    failed.inc()
                    unparseable.append(path)
                    self.log.warning("parse.failure", path=path,
                                     span=parse_span.id,
                                     error=str(outcome.error))
                else:
                    parsed.inc()
                    units.append(outcome.unit)
            parse_span.set("files", len(sources))
            parse_span.set("failures", len(unparseable))
        return units, unparseable

    def _parse_pending(self, paths: List[str],
                       sources: Mapping[str, str],
                       parse_span: Span
                       ) -> Tuple[List[ParseOutcome], Set[str]]:
        """Parse the cache-missed files, fanned out when ``jobs > 1``.

        Returns ``(outcomes, persisted paths)`` — the second element
        names the files whose outcomes store-backed workers already
        wrote (and the parent absorbed), so the caller skips its own
        put for them.
        """
        if not paths:
            return [], set()
        tracer = self.tracer
        if self.jobs <= 1 or len(paths) <= 1:
            # Serial path: byte-for-byte the pre-engine behavior (and the
            # module-global ``parse_translation_unit`` stays patchable).
            timings = tracer.metrics.histogram("pipeline.parse_seconds")
            outcomes: List[ParseOutcome] = []
            for path in paths:
                with tracer.span("parse_file", path=path) as span:
                    try:
                        unit = parse_translation_unit(sources[path], path)
                    except SourceError as error:
                        span.set("failed", 1)
                        outcomes.append(ParseOutcome(path, error=error))
                    except Exception as error:
                        if self.config.strict:
                            raise
                        span.set("failed", 1)
                        outcomes.append(ParseOutcome(path, crash=make_crash(
                            "parse", "parse", error, path=path)))
                    else:
                        outcomes.append(ParseOutcome(path, unit=unit))
                if tracer.enabled:
                    timings.observe(span.duration)
            return outcomes, set()
        cache = self.config.cache
        tasks = [
            ParseTask(items=[(path, sources[path]) for path in chunk],
                      worker=index, traced=tracer.enabled,
                      strict=self.config.strict,
                      logged=self.log.enabled)
            for index, chunk in enumerate(chunk_evenly(paths, self.jobs))]
        shard_dirs = self._worker_shards(
            tasks, lambda task: [
                cache.key_for(PARSE_TAG, path, source)
                for path, source in task.items])
        outcomes = []
        # Absorb-or-remove the worker shard areas even when the pool is
        # torn down mid-flight (KeyboardInterrupt, SIGTERM): whatever
        # the workers already persisted folds back into the parent's
        # write area instead of leaking shard-<host>-<pid>-w* dirs.
        try:
            for chunk_outcomes, worker_tracer, worker_events in run_tasks(
                    run_parse_task, tasks, jobs=self.jobs,
                    executor=self.config.executor,
                    timeout=self.config.task_timeout,
                    metrics=tracer.metrics, log=self.log):
                outcomes.extend(chunk_outcomes)
                graft_worker_trace(tracer, parse_span, worker_tracer)
                self.log.graft(worker_events)
        finally:
            self._absorb_worker_shards(shard_dirs)
        if not shard_dirs:
            return outcomes, set()
        return outcomes, {outcome.path for outcome in outcomes
                          if outcome.crash is None}

    # ------------------------------------------------------------------
    # store-backed worker fan-out

    def _worker_shards(self, tasks, keys_for) -> List[str]:
        """Arm pooled tasks with private object areas, when store-backed.

        With a :attr:`~repro.store.objects.ObjectStore.
        worker_shard_base` configured (a ``--store`` run), each task
        gets its cache keys and a ``shard-<host>-<pid>-w<index>/
        objects`` area under the store root: the worker persists its
        own results, the parent absorbs the areas on join, and a killed
        run leaves behind valid shard directories ``repro-store merge``
        folds in.  Plain ``--cache`` runs (no base) are untouched.
        Returns the armed shard directories (empty when inactive).
        """
        cache = self.config.cache
        base = (getattr(cache, "worker_shard_base", None)
                if cache is not None else None)
        if base is None:
            return []
        shard_dirs: List[str] = []
        for task in tasks:
            task.cache_keys = keys_for(task)
            task.shard_dir = os.path.join(
                base, default_shard_name(f"w{task.worker}"),
                OBJECTS_DIRNAME)
            shard_dirs.append(task.shard_dir)
        return shard_dirs

    def _absorb_worker_shards(self, shard_dirs: List[str]) -> None:
        """Fold worker object areas back into the cache's write area."""
        cache = self.config.cache
        for shard_dir in shard_dirs:
            cache.absorb(shard_dir)
            shutil.rmtree(os.path.dirname(shard_dir),
                          ignore_errors=True)

    # ------------------------------------------------------------------
    # stage 2: metrics

    def _measure_modules(self, sources: Mapping[str, str],
                         units: List[TranslationUnit]
                         ) -> List[ModuleMetrics]:
        by_module: Dict[str, List[TranslationUnit]] = {}
        for unit in units:
            module = self.config.module_of(unit.filename)
            by_module.setdefault(module, []).append(unit)
        with self.tracer.span("metrics") as span:
            modules = [measure_module(name, sources, members,
                                      tracer=self.tracer)
                       for name, members in sorted(by_module.items())]
            span.set("modules", len(modules))
        self.tracer.metrics.counter("pipeline.modules_measured").inc(
            len(modules))
        return modules

    # ------------------------------------------------------------------
    # stage 3: checkers

    def _checkers(self, sources: Mapping[str, str]) -> List[Checker]:
        style = StyleChecker(self.config.style)
        for path, source in sources.items():
            style.add_source(path, source)
        checkers: List[Checker] = [
            MisraChecker(),
            CastChecker(),
            DefensiveChecker(),
            GlobalVariableChecker(),
            NamingChecker(),
            style,
            UnitDesignChecker(),
            ArchitectureChecker(self.config.architecture,
                                self.config.module_of),
            GpuSubsetChecker(),
        ]
        checkers.extend(self.config.extra_checkers)
        if self.config.rules is not None:
            for checker in checkers:
                checker.profile = self.config.rules
        return checkers

    def _run_checkers(self, sources: Mapping[str, str],
                      units: List[TranslationUnit]
                      ) -> Dict[str, CheckerReport]:
        checkers = self._checkers(sources)
        with self.tracer.span("checkers") as checkers_span:
            return self._run_checkers_engine(checkers, units, sources,
                                             checkers_span)

    def _run_checkers_engine(self, checkers: List[Checker],
                             units: List[TranslationUnit],
                             sources: Mapping[str, str],
                             checkers_span: Span
                             ) -> Dict[str, CheckerReport]:
        """The checker stage: serial, fanned out, or cache-assisted.

        Per-unit checkers are replayed from individual per-unit
        reports — gathered from the cache, computed inline by the fused
        single-sweep engine, or fanned out to workers — merged in
        sorted-unit order and handed to each checker's
        ``finish_from_units`` (for most, exactly the base
        ``check_project``: merge + finalize).  Project-level checkers
        run serially over all units, as always.
        """
        tracer = self.tracer
        cache = self.config.cache
        per_unit, _ = split_checkers(checkers)
        per_unit_names = {checker.name for checker in per_unit}
        bundle_tag = "|".join(checker.fingerprint()
                              for checker in per_unit)

        bundles: Dict[str, Dict[str, CheckerReport]] = {}
        pending: List[TranslationUnit] = []
        key_by_path: Dict[str, str] = {}
        if cache is None:
            pending = units
        else:
            hits = tracer.metrics.counter("cache.hits", stage="check")
            misses = tracer.metrics.counter("cache.misses", stage="check")
            for unit in units:
                key = cache.key_for(CHECK_TAG, unit.filename,
                                    sources.get(unit.filename, ""),
                                    bundle_tag)
                value = cache.get(key)
                if value is CACHE_MISS:
                    misses.inc()
                    pending.append(unit)
                    key_by_path[unit.filename] = key
                else:
                    hits.inc()
                    bundles[unit.filename] = value
        fresh, persisted = self._check_pending(pending, per_unit,
                                               checkers_span, key_by_path)
        if cache is not None:
            for path, bundle in fresh.items():
                # Crashed bundles are never cached (see bundle_has_crash);
                # worker-persisted ones are not written twice.
                if not bundle_has_crash(bundle) and path not in persisted:
                    cache.put(key_by_path[path], bundle)
        bundles.update(fresh)

        strict = self.config.strict
        reports: Dict[str, CheckerReport] = {}
        for checker in checkers:
            require_unique_checker(checker, reports)
            with tracer.span("checker", name=checker.name) as span:
                try:
                    if checker.name in per_unit_names:
                        stage = "finalize"
                        report = checker.finish_from_units(
                            units,
                            [bundles[unit.filename][checker.name]
                             for unit in units])
                    else:
                        stage = "check_project"
                        report = checker.check_project(units)
                except ReproError:
                    raise
                except Exception as error:
                    if strict:
                        raise
                    self.log.error(
                        "checker.crash", checker=checker.name,
                        stage=stage, span=span.id,
                        error=f"{type(error).__name__}: {error}")
                    report = crash_report(checker.name, make_crash(
                        checker.name, stage, error))
                    tracer.metrics.counter(
                        "pipeline.checker_crashes").inc()
                    span.set("crashed", 1)
                span.set("findings", report.finding_count)
            tracer.metrics.counter("checker.findings",
                                   checker=checker.name).inc(
                report.finding_count)
            reports[checker.name] = report
        return reports

    def _check_pending(self, pending: List[TranslationUnit],
                       per_unit: List[Checker], checkers_span: Span,
                       key_by_path: Dict[str, str]
                       ) -> Tuple[Dict[str, Dict[str, CheckerReport]],
                                  Set[str]]:
        """Per-unit reports for the cache-missed units, fanned out when
        ``jobs > 1``; returns ``({path: {checker name: report}},
        worker-persisted paths)`` (see :meth:`_parse_pending`)."""
        if not pending:
            return {}, set()
        strict = self.config.strict
        if self.jobs <= 1 or len(pending) <= 1:
            return {unit.filename: fused_unit_bundle(per_unit, unit,
                                                     strict=strict,
                                                     log=self.log)
                    for unit in pending}, set()
        tracer = self.tracer
        tasks = [
            CheckTask(checkers=[checker.for_units(chunk)
                                for checker in per_unit],
                      units=chunk, worker=index, traced=tracer.enabled,
                      strict=strict, logged=self.log.enabled)
            for index, chunk in enumerate(
                chunk_evenly(pending, self.jobs))]
        shard_dirs = self._worker_shards(
            tasks, lambda task: [key_by_path[unit.filename]
                                 for unit in task.units])
        bundles: Dict[str, Dict[str, CheckerReport]] = {}
        # As in _parse_pending: fold worker shard areas back in a
        # finally, so an interrupted pool never leaks them.
        try:
            for chunk_bundles, worker_tracer, worker_events in run_tasks(
                    run_check_task, tasks, jobs=self.jobs,
                    executor=self.config.executor,
                    timeout=self.config.task_timeout,
                    metrics=tracer.metrics, log=self.log):
                bundles.update(chunk_bundles)
                graft_worker_trace(tracer, checkers_span, worker_tracer)
                self.log.graft(worker_events)
        finally:
            self._absorb_worker_shards(shard_dirs)
        if not shard_dirs:
            return bundles, set()
        return bundles, {path for path, bundle in bundles.items()
                         if not bundle_has_crash(bundle)}

    # ------------------------------------------------------------------
    # stage 4: evidence

    def _assemble_evidence(self, modules: List[ModuleMetrics],
                           reports: Dict[str, CheckerReport]
                           ) -> EvidenceSet:
        evidence = EvidenceSet()
        evidence.put("complexity", {
            "moderate_or_higher": sum(
                module.complexity.moderate_or_higher
                for module in modules),
            "functions": sum(module.function_count for module in modules),
            "max_complexity": max(
                (module.complexity.max_complexity for module in modules),
                default=0),
        }, source="metrics:complexity")
        checker_backed = (
            ("language_subset", "language_subset"),
            ("strong_typing", "casts"),
            ("defensive", "defensive"),
            ("design_principles", "globals"),
            ("globals", "globals"),
            ("style", "style"),
            ("naming", "naming"),
            ("unit_design", "unit_design"),
            ("architecture", "architecture"),
        )
        for key, checker in checker_backed:
            report = reports[checker]
            evidence.put(key, report.stats,
                         source=f"checker:{checker}",
                         rule_counts=report.count_by_rule())
        return evidence


def assess_sources(sources: Mapping[str, str],
                   config: Optional[PipelineConfig] = None
                   ) -> AssessmentResult:
    """One-call API: assess a ``{path: source}`` mapping."""
    return AssessmentPipeline(config).run(sources)


def assess_corpus(corpus, config: Optional[PipelineConfig] = None
                  ) -> AssessmentResult:
    """Assess a generated :class:`~repro.corpus.generator.Corpus`."""
    return AssessmentPipeline(config).run(corpus.sources())
