"""The assessment pipeline: sources in, ISO 26262 verdicts out.

This orchestrates the paper's whole methodology:

1. parse every translation unit into the fuzzy C++ model;
2. compute per-module size/complexity metrics (Figure 3);
3. run all static checkers;
4. assemble the evidence set;
5. apply the compliance engine to the three ISO 26262-6 tables;
6. derive the numbered observations.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..checkers.architecture import ArchitectureChecker
from ..checkers.base import CheckerReport
from ..checkers.casts import CastChecker
from ..checkers.defensive import DefensiveChecker
from ..checkers.globals_check import GlobalVariableChecker
from ..checkers.gpu_subset import GpuSubsetChecker
from ..checkers.misra import MisraChecker
from ..checkers.naming import NamingChecker
from ..checkers.style import StyleChecker
from ..checkers.unitdesign import UnitDesignChecker
from ..errors import SourceError
from ..iso26262.compliance import ComplianceEngine
from ..iso26262.evidence import EvidenceSet
from ..iso26262.observations import generate_observations
from ..lang.cppmodel import TranslationUnit, parse_translation_unit
from ..metrics.report import ModuleMetrics, measure_module
from .assessment import AssessmentResult
from .config import PipelineConfig


class AssessmentPipeline:
    """Runs the full assessment over a path -> source mapping."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()

    # ------------------------------------------------------------------

    def run(self, sources: Mapping[str, str]) -> AssessmentResult:
        """Assess a codebase given as ``{path: source_text}``."""
        units, unparseable = self._parse_all(sources)
        modules = self._measure_modules(sources, units)
        reports = self._run_checkers(sources, units)
        evidence = self._assemble_evidence(modules, reports)
        engine = ComplianceEngine(target_asil=self.config.target_asil,
                                  thresholds=self.config.thresholds)
        tables = engine.assess_all(evidence)
        observations = generate_observations(evidence)
        return AssessmentResult(
            modules=modules,
            reports=reports,
            evidence=evidence,
            tables=tables,
            observations=observations,
            unit_count=len(units),
            unparseable=unparseable,
        )

    # ------------------------------------------------------------------

    def _parse_all(self, sources: Mapping[str, str]):
        units: List[TranslationUnit] = []
        unparseable: List[str] = []
        for path in sorted(sources):
            try:
                units.append(parse_translation_unit(sources[path], path))
            except SourceError:
                if not self.config.skip_unparseable:
                    raise
                unparseable.append(path)
        return units, unparseable

    def _measure_modules(self, sources: Mapping[str, str],
                         units: List[TranslationUnit]
                         ) -> List[ModuleMetrics]:
        by_module: Dict[str, List[TranslationUnit]] = {}
        for unit in units:
            module = self.config.module_of(unit.filename)
            by_module.setdefault(module, []).append(unit)
        return [measure_module(name, sources, members)
                for name, members in sorted(by_module.items())]

    def _run_checkers(self, sources: Mapping[str, str],
                      units: List[TranslationUnit]
                      ) -> Dict[str, CheckerReport]:
        style = StyleChecker(self.config.style)
        for path, source in sources.items():
            style.add_source(path, source)
        checkers = [
            MisraChecker(),
            CastChecker(),
            DefensiveChecker(),
            GlobalVariableChecker(),
            NamingChecker(),
            style,
            UnitDesignChecker(),
            ArchitectureChecker(self.config.architecture,
                                self.config.module_of),
            GpuSubsetChecker(),
        ]
        return {checker.name: checker.check_project(units)
                for checker in checkers}

    def _assemble_evidence(self, modules: List[ModuleMetrics],
                           reports: Dict[str, CheckerReport]
                           ) -> EvidenceSet:
        evidence = EvidenceSet()
        evidence.put("complexity", {
            "moderate_or_higher": sum(
                module.complexity.moderate_or_higher
                for module in modules),
            "functions": sum(module.function_count for module in modules),
            "max_complexity": max(
                (module.complexity.max_complexity for module in modules),
                default=0),
        }, source="metrics:complexity")
        evidence.put("language_subset",
                     reports["language_subset"].stats,
                     source="checker:language_subset")
        evidence.put("strong_typing", reports["casts"].stats,
                     source="checker:casts")
        evidence.put("defensive", reports["defensive"].stats,
                     source="checker:defensive")
        evidence.put("design_principles", reports["globals"].stats,
                     source="checker:globals")
        evidence.put("globals", reports["globals"].stats,
                     source="checker:globals")
        evidence.put("style", reports["style"].stats,
                     source="checker:style")
        evidence.put("naming", reports["naming"].stats,
                     source="checker:naming")
        evidence.put("unit_design", reports["unit_design"].stats,
                     source="checker:unit_design")
        evidence.put("architecture", reports["architecture"].stats,
                     source="checker:architecture")
        return evidence


def assess_sources(sources: Mapping[str, str],
                   config: Optional[PipelineConfig] = None
                   ) -> AssessmentResult:
    """One-call API: assess a ``{path: source}`` mapping."""
    return AssessmentPipeline(config).run(sources)


def assess_corpus(corpus, config: Optional[PipelineConfig] = None
                  ) -> AssessmentResult:
    """Assess a generated :class:`~repro.corpus.generator.Corpus`."""
    return AssessmentPipeline(config).run(corpus.sources())
