"""The assessment pipeline: sources in, ISO 26262 verdicts out.

This orchestrates the paper's whole methodology:

1. parse every translation unit into the fuzzy C++ model;
2. compute per-module size/complexity metrics (Figure 3);
3. run all static checkers;
4. assemble the evidence set;
5. apply the compliance engine to the three ISO 26262-6 tables;
6. derive the numbered observations.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..checkers.architecture import ArchitectureChecker
from ..checkers.base import CheckerReport, run_checkers
from ..checkers.casts import CastChecker
from ..checkers.defensive import DefensiveChecker
from ..checkers.globals_check import GlobalVariableChecker
from ..checkers.gpu_subset import GpuSubsetChecker
from ..checkers.misra import MisraChecker
from ..checkers.naming import NamingChecker
from ..checkers.style import StyleChecker
from ..checkers.unitdesign import UnitDesignChecker
from ..errors import SourceError
from ..iso26262.compliance import ComplianceEngine
from ..iso26262.evidence import EvidenceSet
from ..iso26262.observations import generate_observations
from ..lang.cppmodel import TranslationUnit, parse_translation_unit
from ..metrics.report import ModuleMetrics, measure_module
from ..obs import NULL_TRACER, Tracer
from .assessment import AssessmentResult
from .config import PipelineConfig


class AssessmentPipeline:
    """Runs the full assessment over a path -> source mapping.

    When :attr:`PipelineConfig.tracer` is set, every stage is traced:
    a ``pipeline`` root span with ``parse`` (one ``parse_file`` child
    per translation unit), ``metrics`` (one ``measure_module`` child per
    module), ``checkers`` (one ``checker`` child per checker, with its
    finding count), ``evidence``, ``compliance``, and ``observations``
    children — plus counters for units parsed, parse failures, and
    findings per checker.  The default is the no-op NULL_TRACER.
    """

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()
        self.tracer: Tracer = (self.config.tracer
                               if self.config.tracer is not None
                               else NULL_TRACER)

    # ------------------------------------------------------------------

    def run(self, sources: Mapping[str, str]) -> AssessmentResult:
        """Assess a codebase given as ``{path: source_text}``."""
        tracer = self.tracer
        with tracer.span("pipeline") as root:
            units, unparseable = self._parse_all(sources)
            modules = self._measure_modules(sources, units)
            reports = self._run_checkers(sources, units)
            with tracer.span("evidence"):
                evidence = self._assemble_evidence(modules, reports)
            with tracer.span("compliance"):
                engine = ComplianceEngine(
                    target_asil=self.config.target_asil,
                    thresholds=self.config.thresholds)
                tables = engine.assess_all(evidence)
            with tracer.span("observations") as span:
                observations = generate_observations(evidence)
                span.set("observations", len(observations))
            root.set("units", len(units))
        return AssessmentResult(
            modules=modules,
            reports=reports,
            evidence=evidence,
            tables=tables,
            observations=observations,
            unit_count=len(units),
            unparseable=unparseable,
        )

    # ------------------------------------------------------------------

    def _parse_all(self, sources: Mapping[str, str]):
        tracer = self.tracer
        metrics = tracer.metrics
        parsed = metrics.counter("pipeline.units_parsed")
        failed = metrics.counter("pipeline.parse_failures")
        timings = metrics.histogram("pipeline.parse_seconds")
        units: List[TranslationUnit] = []
        unparseable: List[str] = []
        with tracer.span("parse") as parse_span:
            for path in sorted(sources):
                with tracer.span("parse_file", path=path) as span:
                    try:
                        units.append(
                            parse_translation_unit(sources[path], path))
                    except SourceError:
                        if not self.config.skip_unparseable:
                            raise
                        failed.inc()
                        span.set("failed", 1)
                        unparseable.append(path)
                    else:
                        parsed.inc()
                if tracer.enabled:
                    timings.observe(span.duration)
            parse_span.set("files", len(sources))
            parse_span.set("failures", len(unparseable))
        return units, unparseable

    def _measure_modules(self, sources: Mapping[str, str],
                         units: List[TranslationUnit]
                         ) -> List[ModuleMetrics]:
        by_module: Dict[str, List[TranslationUnit]] = {}
        for unit in units:
            module = self.config.module_of(unit.filename)
            by_module.setdefault(module, []).append(unit)
        with self.tracer.span("metrics") as span:
            modules = [measure_module(name, sources, members,
                                      tracer=self.tracer)
                       for name, members in sorted(by_module.items())]
            span.set("modules", len(modules))
        self.tracer.metrics.counter("pipeline.modules_measured").inc(
            len(modules))
        return modules

    def _run_checkers(self, sources: Mapping[str, str],
                      units: List[TranslationUnit]
                      ) -> Dict[str, CheckerReport]:
        style = StyleChecker(self.config.style)
        for path, source in sources.items():
            style.add_source(path, source)
        checkers = [
            MisraChecker(),
            CastChecker(),
            DefensiveChecker(),
            GlobalVariableChecker(),
            NamingChecker(),
            style,
            UnitDesignChecker(),
            ArchitectureChecker(self.config.architecture,
                                self.config.module_of),
            GpuSubsetChecker(),
        ]
        with self.tracer.span("checkers"):
            return run_checkers(checkers, units, tracer=self.tracer)

    def _assemble_evidence(self, modules: List[ModuleMetrics],
                           reports: Dict[str, CheckerReport]
                           ) -> EvidenceSet:
        evidence = EvidenceSet()
        evidence.put("complexity", {
            "moderate_or_higher": sum(
                module.complexity.moderate_or_higher
                for module in modules),
            "functions": sum(module.function_count for module in modules),
            "max_complexity": max(
                (module.complexity.max_complexity for module in modules),
                default=0),
        }, source="metrics:complexity")
        evidence.put("language_subset",
                     reports["language_subset"].stats,
                     source="checker:language_subset")
        evidence.put("strong_typing", reports["casts"].stats,
                     source="checker:casts")
        evidence.put("defensive", reports["defensive"].stats,
                     source="checker:defensive")
        evidence.put("design_principles", reports["globals"].stats,
                     source="checker:globals")
        evidence.put("globals", reports["globals"].stats,
                     source="checker:globals")
        evidence.put("style", reports["style"].stats,
                     source="checker:style")
        evidence.put("naming", reports["naming"].stats,
                     source="checker:naming")
        evidence.put("unit_design", reports["unit_design"].stats,
                     source="checker:unit_design")
        evidence.put("architecture", reports["architecture"].stats,
                     source="checker:architecture")
        return evidence


def assess_sources(sources: Mapping[str, str],
                   config: Optional[PipelineConfig] = None
                   ) -> AssessmentResult:
    """One-call API: assess a ``{path: source}`` mapping."""
    return AssessmentPipeline(config).run(sources)


def assess_corpus(corpus, config: Optional[PipelineConfig] = None
                  ) -> AssessmentResult:
    """Assess a generated :class:`~repro.corpus.generator.Corpus`."""
    return AssessmentPipeline(config).run(corpus.sources())
