"""The assessment pipeline: the paper's methodology as one call."""

from .assessment import AssessmentResult
from .cache import CACHE_MISS, MemoryCache, ResultCache
from .config import PipelineConfig
from .diff import (
    AssessmentDiff,
    AssessmentView,
    VerdictTransition,
    assessment_view_from_dict,
    diff_assessments,
    gap_reduction,
    load_assessment_view,
)
from .markdown import render_markdown
from .remediation import (
    Effort,
    RemediationItem,
    effort_histogram,
    plan_remediation,
    render_plan,
)
from .parallel import chunk_evenly, worker_count
from .pipeline import AssessmentPipeline, assess_corpus, assess_sources

__all__ = [
    "CACHE_MISS",
    "MemoryCache",
    "ResultCache",
    "chunk_evenly",
    "worker_count",
    "AssessmentDiff",
    "AssessmentView",
    "VerdictTransition",
    "assessment_view_from_dict",
    "diff_assessments",
    "gap_reduction",
    "load_assessment_view",
    "Effort",
    "RemediationItem",
    "effort_histogram",
    "plan_remediation",
    "render_markdown",
    "render_plan",
    "AssessmentPipeline",
    "AssessmentResult",
    "PipelineConfig",
    "assess_corpus",
    "assess_sources",
]
