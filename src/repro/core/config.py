"""Configuration of the assessment pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..checkers.architecture import ArchitectureConfig, module_from_path
from ..checkers.style import StyleConfig
from ..iso26262.asil import Asil, TARGET_ASIL
from ..iso26262.compliance import ComplianceThresholds
from ..obs import EventLog, Tracer
from ..report.base import ReportTargets
from ..rules import Baseline, RuleProfile
from .cache import ResultCache


@dataclass
class PipelineConfig:
    """Everything tunable about one assessment run.

    Attributes:
        target_asil: the ASIL the verdicts are computed against (the paper
            argues ASIL D for the full AD pipeline).
        thresholds: verdict cut-offs.
        style: style-checker limits (Google defaults).
        architecture: architectural-design limits.
        module_of: maps a file path to its module name.
        skip_unparseable: tolerate files the fuzzy parser rejects
            (they are recorded, not fatal) — industrial trees always
            contain a few.
        tracer: telemetry sink (spans + metrics) threaded through every
            pipeline stage; ``None`` means the zero-cost
            :data:`~repro.obs.NULL_TRACER`.
        log: structured event sink (:class:`~repro.obs.EventLog`)
            receiving leveled JSONL events from every load-bearing
            failure-handling point (parse failures, checker crashes,
            worker faults, cache corruption); ``None`` means the
            zero-cost :data:`~repro.obs.NULL_LOG`.  Worker chunks
            buffer their events and the pipeline grafts them back,
            exactly as worker traces are grafted.
        jobs: worker count for the parse and per-unit checker fan-out;
            1 (the default) is the fully serial path, 0 means one
            worker per CPU.  Results are identical at any setting.
        executor: pool flavor for ``jobs > 1`` — ``"thread"`` (no
            pickling, GIL-bound) or ``"process"`` (true CPU
            parallelism; payloads cross process boundaries).
        cache: optional content-addressed :class:`~repro.core.cache.
            ResultCache`; unchanged files short-circuit to cached parse
            results and per-unit checker reports.  A store-backed cache
            (:meth:`repro.store.store.Store.object_store`) additionally
            redirects writes into a per-process shard directory for
            later ``repro-store merge``.
        shard: optional ``"K/N"`` slice — assess only every Nth file
            of the sorted corpus starting at the Kth (1-based), so N
            cooperating processes cover the corpus disjointly and a
            merge of their stores replays byte-identically.  ``None``
            (the default) assesses everything.
        rules: optional :class:`~repro.rules.RuleProfile` — enable/
            disable globs and per-rule severity overrides applied at
            finding-emission time.  ``None`` (the default) leaves every
            registered rule at its registry defaults and keeps results
            byte-identical to earlier releases; a profile also folds
            into each checker's fingerprint so cached bundles
            invalidate when the effective rule set changes.
        baseline: optional :class:`~repro.rules.Baseline` snapshot of a
            previous run's findings; when set, the assessment result
            carries a comparison reporting only findings absent from
            the snapshot.
        strict: abort on the first internal fault (a checker raising a
            non-:class:`~repro.errors.ReproError`, a parser-internal
            crash) instead of containing it.  The default ``False``
            contains faults as :class:`~repro.checkers.base.
            CheckerCrash` records: the run completes with the remaining
            checkers and the result is marked
            :attr:`~repro.core.assessment.AssessmentResult.degraded`.
        task_timeout: per-task deadline in seconds for the worker pool
            (``jobs > 1``); a task that exceeds it is abandoned and its
            chunk recomputed serially in the parent.  ``None`` (the
            default) waits forever.
        extra_checkers: additional :class:`~repro.checkers.base.
            Checker` instances appended after the built-in nine.  They
            feed findings and degradations but no ISO evidence keys;
            the fault-injection harness (:mod:`repro.testing.faults`)
            uses this seam.
        report: which output surfaces to write
            (:class:`~repro.report.base.ReportTargets`): JSON,
            Markdown, the HTML dashboard, SARIF, Cobertura.  All
            ``None`` (the default) writes nothing — the console
            summary is unaffected either way.
    """

    target_asil: Asil = TARGET_ASIL
    thresholds: ComplianceThresholds = field(
        default_factory=ComplianceThresholds)
    style: StyleConfig = field(default_factory=StyleConfig)
    architecture: ArchitectureConfig = field(
        default_factory=ArchitectureConfig)
    module_of: Callable[[str], str] = module_from_path
    skip_unparseable: bool = True
    tracer: Optional[Tracer] = None
    log: Optional[EventLog] = None
    jobs: int = 1
    executor: str = "thread"
    cache: Optional[ResultCache] = None
    shard: Optional[str] = None
    rules: Optional[RuleProfile] = None
    baseline: Optional[Baseline] = None
    strict: bool = False
    task_timeout: Optional[float] = None
    extra_checkers: tuple = ()
    report: ReportTargets = field(default_factory=ReportTargets)
