"""The assessment result object and its renderers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..checkers.base import CheckerCrash, CheckerReport
from ..rules import BaselineComparison, RuleProfile
from ..iso26262.compliance import TableAssessment, Verdict
from ..iso26262.evidence import EvidenceSet
from ..iso26262.observations import Observation
from ..iso26262.report import (
    assessment_to_dict,
    observations_to_dict,
    render_observations,
    render_rationales,
    render_table,
)
from ..metrics.report import ModuleMetrics, figure3_rows, \
    total_moderate_or_higher


@dataclass
class AssessmentResult:
    """Everything one pipeline run produced."""

    modules: List[ModuleMetrics]
    reports: Dict[str, CheckerReport]
    evidence: EvidenceSet
    tables: Dict[str, TableAssessment]
    observations: List[Observation]
    unit_count: int = 0
    unparseable: List[str] = field(default_factory=list)
    #: The rule profile the run was configured with, if any.
    profile: Optional[RuleProfile] = None
    #: Comparison against a finding baseline, when one was supplied.
    baseline: Optional[BaselineComparison] = None
    #: Contained internal faults (checker crashes, parser-internal
    #: errors) in pipeline order; non-empty marks the run degraded.
    crashes: List[CheckerCrash] = field(default_factory=list)

    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when the run completed but lost some analysis to a
        contained fault — its findings are a lower bound, not the full
        picture.  Degraded CLI runs exit with code 3."""
        return bool(self.crashes)

    @property
    def total_loc(self) -> int:
        return sum(module.loc for module in self.modules)

    @property
    def total_functions(self) -> int:
        return sum(module.function_count for module in self.modules)

    @property
    def moderate_or_higher(self) -> int:
        """Framework-wide CC>10 count (the paper's 554)."""
        return total_moderate_or_higher(self.modules)

    def figure3(self) -> List[Dict[str, object]]:
        return figure3_rows(self.modules)

    def verdict_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {verdict.value: 0 for verdict in Verdict}
        for table in self.tables.values():
            for entry in table.assessments:
                counts[entry.verdict.value] += 1
        return counts

    def suppressed_counts(self) -> Dict[str, int]:
        """Per-checker counts of deviation-suppressed findings."""
        return {name: len(report.suppressed)
                for name, report in self.reports.items()
                if report.suppressed}

    @property
    def total_suppressed(self) -> int:
        return sum(len(report.suppressed)
                   for report in self.reports.values())

    # ------------------------------------------------------------------

    def render_summary(self) -> str:
        lines = [
            "ISO 26262-6 adherence assessment",
            "=" * 60,
            f"translation units analyzed : {self.unit_count}",
            f"total lines of code        : {self.total_loc}",
            f"functions                  : {self.total_functions}",
            f"functions with CC > 10     : {self.moderate_or_higher}",
            "",
        ]
        if self.unparseable:
            lines.append(f"unparseable files          : "
                         f"{len(self.unparseable)}")
            lines.append("")
        if self.degraded:
            lines.append(f"DEGRADED RUN: {len(self.crashes)} contained "
                         f"fault(s); findings are a lower bound")
            for crash in self.crashes:
                lines.append(f"  - {crash.describe()}")
            lines.append("")
        if self.total_suppressed:
            lines.append(f"deviation-suppressed       : "
                         f"{self.total_suppressed}")
            lines.append("")
        if self.baseline is not None:
            lines.append(f"baseline: {self.baseline.known} known finding(s)"
                         f", {self.baseline.total_new} new")
            for rule, count in sorted(self.baseline.new_by_rule().items()):
                lines.append(f"  new [{rule}]: {count}")
            lines.append("")
        lines.append(f"{'module':<16}{'LOC':>8}{'functions':>11}"
                     f"{'cc>10':>7}{'cc>20':>7}{'cc>50':>7}")
        lines.append("-" * 56)
        for row in self.figure3():
            lines.append(f"{row['module']:<16}{row['loc']:>8}"
                         f"{row['functions']:>11}{row['cc>10']:>7}"
                         f"{row['cc>20']:>7}{row['cc>50']:>7}")
        lines.append("")
        for key in ("modeling_coding", "architectural_design",
                    "unit_design"):
            lines.append(render_table(self.tables[key]))
            lines.append("")
            lines.append(render_rationales(self.tables[key]))
            lines.append("")
        lines.append("Observations")
        lines.append("-" * 60)
        lines.append(render_observations(self.observations))
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        result = {
            "unit_count": self.unit_count,
            "total_loc": self.total_loc,
            "total_functions": self.total_functions,
            "moderate_or_higher": self.moderate_or_higher,
            "figure3": self.figure3(),
            "tables": {key: assessment_to_dict(table)
                       for key, table in self.tables.items()},
            "observations": observations_to_dict(self.observations),
            "verdicts": self.verdict_counts(),
            "checker_findings": {name: report.finding_count
                                 for name, report in self.reports.items()},
        }
        # Rules-layer keys appear only when the feature was active, so a
        # default run's JSON stays byte-identical to earlier releases.
        if self.total_suppressed:
            result["suppressed_findings"] = self.suppressed_counts()
        if self.baseline is not None:
            result["baseline"] = {
                "known": self.baseline.known,
                "new": self.baseline.total_new,
                "new_by_rule": self.baseline.new_by_rule(),
            }
        # Degradation keys appear only on degraded runs, so a fault-free
        # run's JSON stays byte-identical to earlier releases.
        if self.degraded:
            result["degraded"] = True
            result["degradations"] = [
                {
                    "checker": crash.checker,
                    "stage": crash.stage,
                    "path": crash.path,
                    "exception": crash.exc_type,
                    "message": crash.message,
                }
                for crash in self.crashes
            ]
        return result
