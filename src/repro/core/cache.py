"""Content-addressed result cache for incremental re-assessment.

The paper's sweep is rerun continuously in CI, where most files are
unchanged between runs.  This cache short-circuits the two expensive
per-file stages — fuzzy parsing and per-unit checking — by keying their
results on a SHA-256 over the source text, the file path, and a stage
version tag, so a changed file, a changed checker implementation, or a
changed checker configuration each invalidate exactly the entries they
affect and nothing else.

Entries are pickled under ``root/<key[:2]>/<key>.pkl`` (two-level fanout
keeps directories small on big trees).  Writes are atomic (temp file +
``os.replace``) so concurrent assessments sharing a cache directory
never observe torn entries; any unreadable or corrupt entry is treated
as a miss and rewritten.  The cache is best-effort by design: an
unwritable directory degrades to a cold run, never to a crash.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any

#: Bump to invalidate every cache entry (layout or pickle-schema change).
SCHEMA_TAG = "repro-cache:1"

#: Stage tag for parse results; bump when the fuzzy parser's output for
#: an unchanged source can change (see :mod:`repro.lang.cppmodel`).
#: parse:2 — ParseOutcome grew the ``crash`` field.
PARSE_TAG = "parse:2"

#: Stage tag for per-unit checker bundles; the bundle key additionally
#: folds in every checker's :meth:`~repro.checkers.base.Checker.
#: fingerprint`, so this only needs bumping for cross-checker changes.
#: check:2 — CheckerReport grew ``suppressed``/``rules`` fields.
#: check:3 — CheckerReport grew the ``crashes`` field.
CHECK_TAG = "check:3"

#: Sentinel distinguishing "no entry" from a cached ``None``.
CACHE_MISS = object()


def _process_alive(pid: int) -> bool:
    """Best-effort liveness probe for a temp file's writer."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM) — treat as alive
    return True


class ResultCache:
    """A content-addressed pickle store with hit/miss accounting.

    Attributes:
        root: cache directory (created lazily on first write).
        hits: entries served from disk this process.
        misses: lookups that found no (readable) entry.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self._swept = False

    # ------------------------------------------------------------------

    @staticmethod
    def key_for(stage_tag: str, path: str, source: str,
                fingerprint: str = "") -> str:
        """The cache key for one per-file result.

        Args:
            stage_tag: versioned stage name (:data:`PARSE_TAG` /
                :data:`CHECK_TAG`).
            path: the file's tree-relative path (findings embed it, so
                the same text at a different path is a different entry).
            source: the full source text.
            fingerprint: extra key material — for checker bundles, the
                joined checker fingerprints.
        """
        digest = hashlib.sha256()
        for part in (SCHEMA_TAG, stage_tag, fingerprint, path, source):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x1f")
        return digest.hexdigest()

    def entry_path(self, key: str) -> str:
        """Filesystem path of the entry for ``key`` (may not exist)."""
        return os.path.join(self.root, key[:2], key + ".pkl")

    # Backwards-compatible alias.
    _entry_path = entry_path

    # ------------------------------------------------------------------

    def sweep_stale(self) -> int:
        """Remove ``*.tmp.<pid>`` leftovers from crashed writers.

        A writer that dies between creating its temp file and the atomic
        ``os.replace`` leaves the temp behind forever; enough crashed
        runs and the cache directory fills with garbage.  A temp file is
        stale when its owning process is gone (or its name is mangled).
        Returns the number of files removed; never raises.
        """
        removed = 0
        try:
            directories = os.listdir(self.root)
        except OSError:
            return 0
        for subdirectory in directories:
            directory = os.path.join(self.root, subdirectory)
            try:
                names = os.listdir(directory)
            except (OSError, NotADirectoryError):
                continue
            for name in names:
                if ".tmp." not in name:
                    continue
                pid_text = name.rpartition(".tmp.")[2]
                if pid_text.isdigit() and _process_alive(int(pid_text)):
                    continue  # a concurrent writer; leave its temp alone
                try:
                    os.remove(os.path.join(directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`CACHE_MISS`.

        Corrupt, truncated, or unreadable entries count as misses — the
        caller recomputes and overwrites them.
        """
        try:
            with open(self.entry_path(key), "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self.misses += 1
            return CACHE_MISS
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` under ``key``; False when the write failed.

        The write is atomic and best-effort: cache trouble must never
        fail an assessment.  That contract covers more than disk
        trouble — an unpicklable ``value`` (``PicklingError`` or
        ``TypeError``) and deeply recursive payloads
        (``RecursionError``) are swallowed the same way, and the first
        write of a process sweeps stale temp files left behind by
        crashed writers.
        """
        if not self._swept:
            self._swept = True
            self.sweep_stale()
        path = self.entry_path(key)
        temporary = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(temporary, "wb") as handle:
                pickle.dump(value, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temporary, path)
        except (OSError, pickle.PicklingError, TypeError,
                AttributeError, RecursionError):
            try:
                os.remove(temporary)
            except OSError:
                pass
            return False
        return True
