"""Content-addressed result cache for incremental re-assessment.

The paper's sweep is rerun continuously in CI, where most files are
unchanged between runs.  This cache short-circuits the two expensive
per-file stages — fuzzy parsing and per-unit checking — by keying their
results on a SHA-256 over the source text, the file path, and a stage
version tag, so a changed file, a changed checker implementation, or a
changed checker configuration each invalidate exactly the entries they
affect and nothing else.

Since the store refactor, :class:`ResultCache` is a thin facade over
the sharded persistence layer: all mechanics — the atomic two-level
fanout object layout, hit/miss/corrupt accounting, stale-temp
sweeping, shard redirection, merge and GC — live in
:class:`repro.store.objects.ObjectStore`.  What this module owns is
the cache *semantics*: the stage version tags below, and the
backwards-compatible flat layout (``ResultCache(root)`` keeps its
entries directly under ``root``, exactly as before, while a
``--store`` run keeps them under ``<store>/objects`` beside the run
history and shards).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from ..store.objects import CACHE_MISS, SCHEMA_TAG, ObjectStore

__all__ = ["CACHE_MISS", "CHECK_TAG", "MemoryCache", "PARSE_TAG",
           "ResultCache", "SCHEMA_TAG"]

#: Stage tag for parse results; bump when the fuzzy parser's output for
#: an unchanged source can change (see :mod:`repro.lang.cppmodel`).
#: parse:2 — ParseOutcome grew the ``crash`` field.
#: parse:3 — lexer rewrite: hex floats lex correctly, number
#: maximal-munch edges changed, preprocessor summary built from the
#: token stream.
PARSE_TAG = "parse:3"

#: Stage tag for per-unit checker bundles; the bundle key additionally
#: folds in every checker's :meth:`~repro.checkers.base.Checker.
#: fingerprint`, so this only needs bumping for cross-checker changes.
#: check:2 — CheckerReport grew ``suppressed``/``rules`` fields.
#: check:3 — CheckerReport grew the ``crashes`` field.
#: check:4 — fused single-sweep engine fills bundles; unit_design's
#: per-unit portion joined the bundle.
CHECK_TAG = "check:4"


class ResultCache(ObjectStore):
    """The pipeline's result cache: an object store rooted in place.

    ``ResultCache(root)`` is the classic ``--cache DIR`` shape —
    entries live directly under ``root`` in the two-level fanout, with
    hit/miss/put/corruption accounting and atomic best-effort writes
    (see the base class for the full contract).  A store-backed cache
    (``--store DIR``) is built through
    :meth:`repro.store.store.Store.object_store` instead, which roots
    the same machinery in the store's shared object area and can
    redirect writes into a per-process shard.
    """


class MemoryCache(ResultCache):
    """A process-lifetime result cache: same contract, no disk.

    The warm heart of ``repro-serve``: the daemon keeps parse outcomes
    and per-unit checker bundles in a plain dict, so a repeat ``assess``
    of an unchanged tree recomputes nothing and never touches the
    filesystem or a pickle.  Values are stored *by reference* — the
    pipeline treats cached outcomes and bundles as immutable, exactly
    as it treats entries round-tripped through the on-disk store.

    Hit/miss/put accounting matches :class:`ResultCache` (including
    :meth:`attach`-routed metrics counters), so the serve layer's
    per-request cache deltas read the same whether the backend is
    memory, a flat ``--cache`` directory, or a sharded ``--store``.
    """

    def __init__(self) -> None:
        super().__init__(":memory:")
        self._entries: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def sweep_stale(self, root: Optional[str] = None) -> int:
        return 0  # nothing on disk to sweep

    def get(self, key: str) -> Any:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            self.metrics.counter("cache.misses").inc()
            return CACHE_MISS
        self.hits += 1
        self.metrics.counter("cache.hits").inc()
        self.referenced.add(key)
        return value

    def put(self, key: str, value: Any) -> bool:
        self._entries[key] = value
        self.puts += 1
        self.metrics.counter("cache.puts").inc()
        self.referenced.add(key)
        return True

    def entries(self, root: Optional[str] = None
                ) -> Iterator[Tuple[str, str]]:
        return iter(())  # no filesystem entries to merge or GC

    def absorb(self, area_root: str) -> int:
        return 0

    def clear(self) -> int:
        """Drop every entry (an explicit ``serve`` cache reset).

        Accounting is preserved — a reset is an operational event, not
        a new process.  Returns the number of entries dropped.
        """
        dropped = len(self._entries)
        self._entries.clear()
        return dropped
