"""Content-addressed result cache for incremental re-assessment.

The paper's sweep is rerun continuously in CI, where most files are
unchanged between runs.  This cache short-circuits the two expensive
per-file stages — fuzzy parsing and per-unit checking — by keying their
results on a SHA-256 over the source text, the file path, and a stage
version tag, so a changed file, a changed checker implementation, or a
changed checker configuration each invalidate exactly the entries they
affect and nothing else.

Entries are pickled under ``root/<key[:2]>/<key>.pkl`` (two-level fanout
keeps directories small on big trees).  Writes are atomic (temp file +
``os.replace``) so concurrent assessments sharing a cache directory
never observe torn entries; any unreadable or corrupt entry is treated
as a miss and rewritten.  The cache is best-effort by design: an
unwritable directory degrades to a cold run, never to a crash.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any

from ..obs.log import NULL_LOG, EventLog
from ..obs.metrics import MetricsRegistry, NullMetricsRegistry

#: Shared no-op sink for unattached caches.
_NULL_METRICS = NullMetricsRegistry()

#: Bump to invalidate every cache entry (layout or pickle-schema change).
SCHEMA_TAG = "repro-cache:1"

#: Stage tag for parse results; bump when the fuzzy parser's output for
#: an unchanged source can change (see :mod:`repro.lang.cppmodel`).
#: parse:2 — ParseOutcome grew the ``crash`` field.
#: parse:3 — lexer rewrite: hex floats lex correctly, number
#: maximal-munch edges changed, preprocessor summary built from the
#: token stream.
PARSE_TAG = "parse:3"

#: Stage tag for per-unit checker bundles; the bundle key additionally
#: folds in every checker's :meth:`~repro.checkers.base.Checker.
#: fingerprint`, so this only needs bumping for cross-checker changes.
#: check:2 — CheckerReport grew ``suppressed``/``rules`` fields.
#: check:3 — CheckerReport grew the ``crashes`` field.
#: check:4 — fused single-sweep engine fills bundles; unit_design's
#: per-unit portion joined the bundle.
CHECK_TAG = "check:4"

#: Sentinel distinguishing "no entry" from a cached ``None``.
CACHE_MISS = object()


def _process_alive(pid: int) -> bool:
    """Best-effort liveness probe for a temp file's writer."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM) — treat as alive
    return True


class ResultCache:
    """A content-addressed pickle store with hit/miss accounting.

    Attributes:
        root: cache directory (created lazily on first write).
        hits: entries served from disk this process.
        misses: lookups that found no (readable) entry.
        puts: entries successfully written this process.
        corrupt_entries: misses caused by an unreadable *existing*
            entry (torn pickle, wrong schema) rather than absence.

    The same accounting lands in an attached
    :class:`~repro.obs.MetricsRegistry` (counters ``cache.hits``,
    ``cache.misses``, ``cache.puts``, ``cache.corrupt_entries``) and
    corruption/sweep incidents in an attached event log — see
    :meth:`attach`; both default to shared no-ops.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt_entries = 0
        self.metrics: MetricsRegistry = _NULL_METRICS
        self.log: EventLog = NULL_LOG
        self._swept = False

    def attach(self, metrics: MetricsRegistry = None,
               log: EventLog = None) -> "ResultCache":
        """Route accounting into a metrics registry and an event log.

        The pipeline attaches its tracer's registry and configured log
        here, so cache behavior shows up in ``--metrics-json``,
        Prometheus output, and ``--log-json`` without the cache ever
        importing the pipeline.  Returns ``self`` for chaining.
        """
        self.metrics = metrics if metrics is not None else _NULL_METRICS
        self.log = log if log is not None else NULL_LOG
        return self

    # ------------------------------------------------------------------

    @staticmethod
    def key_for(stage_tag: str, path: str, source: str,
                fingerprint: str = "") -> str:
        """The cache key for one per-file result.

        Args:
            stage_tag: versioned stage name (:data:`PARSE_TAG` /
                :data:`CHECK_TAG`).
            path: the file's tree-relative path (findings embed it, so
                the same text at a different path is a different entry).
            source: the full source text.
            fingerprint: extra key material — for checker bundles, the
                joined checker fingerprints.
        """
        digest = hashlib.sha256()
        for part in (SCHEMA_TAG, stage_tag, fingerprint, path, source):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x1f")
        return digest.hexdigest()

    def entry_path(self, key: str) -> str:
        """Filesystem path of the entry for ``key`` (may not exist)."""
        return os.path.join(self.root, key[:2], key + ".pkl")

    # Backwards-compatible alias.
    _entry_path = entry_path

    # ------------------------------------------------------------------

    def sweep_stale(self) -> int:
        """Remove ``*.tmp.<pid>`` leftovers from crashed writers.

        A writer that dies between creating its temp file and the atomic
        ``os.replace`` leaves the temp behind forever; enough crashed
        runs and the cache directory fills with garbage.  A temp file is
        stale when its owning process is gone (or its name is mangled).
        Returns the number of files removed; never raises.
        """
        removed = 0
        try:
            directories = os.listdir(self.root)
        except OSError:
            return 0
        for subdirectory in directories:
            directory = os.path.join(self.root, subdirectory)
            try:
                names = os.listdir(directory)
            except (OSError, NotADirectoryError):
                continue
            for name in names:
                if ".tmp." not in name:
                    continue
                pid_text = name.rpartition(".tmp.")[2]
                if pid_text.isdigit() and _process_alive(int(pid_text)):
                    continue  # a concurrent writer; leave its temp alone
                try:
                    os.remove(os.path.join(directory, name))
                    removed += 1
                except OSError:
                    pass
        if removed:
            self.metrics.counter("cache.swept_tmp").inc(removed)
            self.log.info("cache.sweep", root=self.root, removed=removed)
        return removed

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`CACHE_MISS`.

        Corrupt, truncated, or unreadable entries count as misses — the
        caller recomputes and overwrites them.  An entry that *exists*
        but cannot be loaded is additionally counted as corrupt and
        logged, so silent cache rot is visible in telemetry.
        """
        path = self.entry_path(key)
        try:
            handle = open(path, "rb")
        except OSError:
            self.misses += 1
            self.metrics.counter("cache.misses").inc()
            return CACHE_MISS
        try:
            with handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError) as error:
            self.misses += 1
            self.corrupt_entries += 1
            self.metrics.counter("cache.misses").inc()
            self.metrics.counter("cache.corrupt_entries").inc()
            self.log.warning("cache.corrupt_entry", path=path,
                             error=f"{type(error).__name__}: {error}")
            return CACHE_MISS
        self.hits += 1
        self.metrics.counter("cache.hits").inc()
        return value

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` under ``key``; False when the write failed.

        The write is atomic and best-effort: cache trouble must never
        fail an assessment.  That contract covers more than disk
        trouble — an unpicklable ``value`` (``PicklingError`` or
        ``TypeError``) and deeply recursive payloads
        (``RecursionError``) are swallowed the same way, and the first
        write of a process sweeps stale temp files left behind by
        crashed writers.
        """
        if not self._swept:
            self._swept = True
            self.sweep_stale()
        path = self.entry_path(key)
        temporary = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(temporary, "wb") as handle:
                pickle.dump(value, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temporary, path)
        except (OSError, pickle.PicklingError, TypeError,
                AttributeError, RecursionError):
            try:
                os.remove(temporary)
            except OSError:
                pass
            return False
        self.puts += 1
        self.metrics.counter("cache.puts").inc()
        return True
