"""Parallel execution engine for the assessment pipeline.

The pipeline's two hot stages — per-file parsing and per-unit checking
— are embarrassingly parallel, so this module fans them out over a
``concurrent.futures`` pool.  The contract, relied on by the
determinism tests, is that a parallel run is *result-identical* to the
serial run:

* work is chunked from the already-sorted unit list and results are
  reassembled in that order, so checker reports merge in exactly the
  serial order;
* only checkers whose project report can be replayed from per-unit
  reports — the default per-unit
  :meth:`~repro.checkers.base.Checker.check_project`, or an explicit
  :meth:`~repro.checkers.base.Checker.finish_from_units` override (unit
  design) — are fanned out; genuinely project-level checkers
  (architecture) see all units at once, exactly as in a serial run.

Per-unit chunks run through the fused single-sweep engine
(:func:`repro.engine.driver.fused_unit_bundle`): one token walk per
unit dispatches to every registered checker, byte-identical to running
each checker's ``check_unit`` in sequence.

Each worker chunk runs under its own :class:`~repro.obs.Tracer` (the
shared tracer's span stack is not thread-safe); the resulting span
forest and metrics are grafted back into the parent trace by
:func:`graft_worker_trace`, so ``--trace`` shows one ``parse_worker`` /
``checker_worker`` span per chunk with real per-file child spans.
Structured log events follow the same fan-in: worker chunks record
into a picklable :class:`~repro.obs.BufferLog` shipped back with the
results, and the parent replays it via
:meth:`~repro.obs.EventLog.graft` with the worker index stamped on
every event.

Worker task functions are module-level so the ``process`` executor can
pickle them; every payload (tasks, :class:`TranslationUnit` results,
checker reports, worker tracers) is plain-dataclass picklable.

The engine is additionally *fault-isolated* (see :func:`run_tasks` and
:func:`check_unit_bundle`): a dead or hung worker costs one serial
re-run of its chunk, and a crashing checker costs one
``internal.checker_crash`` finding on the unit it crashed on — never
the run.
"""

from __future__ import annotations

import os
from concurrent import futures
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..checkers.base import (
    Checker,
    CheckerCrash,
    CheckerReport,
    crash_report,
    make_crash,
)
from ..engine.driver import fused_unit_bundle
from ..errors import ConfigError, ReproError, SourceError
from ..lang.cppmodel import TranslationUnit, parse_translation_unit
from ..obs import NULL_LOG, NULL_TRACER, BufferLog, EventLog, Span, Tracer
from ..store.objects import ObjectStore

#: Recognized ``PipelineConfig.executor`` values.  ``thread`` has no
#: per-task pickling cost; ``process`` sidesteps the GIL for CPU-bound
#: parsing at the price of shipping sources and results across
#: processes.
EXECUTOR_KINDS = ("thread", "process")


def worker_count(jobs: int) -> int:
    """Resolve a ``jobs`` setting: 0 means one worker per CPU."""
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def chunk_evenly(items: Sequence, chunks: int) -> List[List]:
    """Split ``items`` into at most ``chunks`` balanced runs, in order.

    Concatenating the result reproduces ``items`` exactly — the order
    guarantee the deterministic merge builds on.
    """
    if chunks < 1:
        raise ConfigError(f"chunk count must be >= 1, got {chunks}")
    chunks = min(chunks, len(items))
    if chunks == 0:
        return []
    size, remainder = divmod(len(items), chunks)
    result: List[List] = []
    start = 0
    for index in range(chunks):
        stop = start + size + (1 if index < remainder else 0)
        result.append(list(items[start:stop]))
        start = stop
    return result


#: Internal sentinel for "this task has no pool result yet".
_PENDING = object()


def _count(metrics, name: str, **labels) -> None:
    if metrics is not None:
        metrics.counter(name, **labels).inc()


def run_tasks(function: Callable, tasks: Sequence, *, jobs: int,
              executor: str, timeout: Optional[float] = None,
              metrics=None, log: EventLog = NULL_LOG) -> List:
    """Run ``function`` over ``tasks`` on a pool; results in task order.

    ``jobs <= 1`` (or a single task) short-circuits to a plain loop —
    the serial path allocates no pool at all.

    The pooled path is fault-isolated: a task whose worker dies
    (``BrokenProcessPool`` — today that takes down the entire run),
    whose result cannot cross the process boundary (pickling errors),
    or that exceeds the per-task ``timeout`` is re-executed *serially*
    in the calling process — a bounded retry (one in-process re-run per
    failed task) that turns every worker-level fault into at worst a
    slow chunk instead of a lost run.  An exception from the serial
    re-run is genuine and propagates.

    Args:
        timeout: per-task result deadline in seconds; ``None`` waits
            forever.  A timed-out worker task is abandoned (its pool
            cannot interrupt it) and its chunk recomputed serially.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; failure
            handling is counted under ``parallel.task_timeouts``,
            ``parallel.worker_deaths``, ``parallel.task_errors``,
            ``parallel.task_retries``, and ``parallel.serial_fallbacks``.
        log: optional :class:`~repro.obs.EventLog`; the same failure
            handling is logged as ``parallel.task_timeout``,
            ``parallel.worker_death``, ``parallel.task_error``, and
            ``parallel.serial_fallback`` events.
    """
    if executor not in EXECUTOR_KINDS:
        raise ConfigError(
            f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}")
    if jobs <= 1 or len(tasks) <= 1:
        return [function(task) for task in tasks]
    pool_class = (futures.ThreadPoolExecutor if executor == "thread"
                  else futures.ProcessPoolExecutor)
    results: List = [_PENDING] * len(tasks)
    pool = pool_class(max_workers=min(jobs, len(tasks)))
    try:
        pending = [pool.submit(function, task) for task in tasks]
        for index, future in enumerate(pending):
            try:
                results[index] = future.result(timeout=timeout)
            except futures.TimeoutError:
                _count(metrics, "parallel.task_timeouts",
                       executor=executor)
                log.warning("parallel.task_timeout", task=index,
                            executor=executor, timeout=timeout)
                future.cancel()
            except futures.BrokenExecutor:
                _count(metrics, "parallel.worker_deaths",
                       executor=executor)
                log.error("parallel.worker_death", task=index,
                          executor=executor)
            except Exception:
                # Thread pools have no IPC layer: an exception here IS
                # the task's own, and re-running would repeat it (or,
                # worse, silently succeed against already-consumed
                # state) — propagate.  Process pools surface transport
                # faults the same way (e.g. the worker's result failed
                # to pickle), so there the serial re-run below — which
                # never crosses a process boundary — is the recovery;
                # a genuine task exception just re-raises from it.
                if executor == "thread":
                    raise
                _count(metrics, "parallel.task_errors",
                       executor=executor)
                log.error("parallel.task_error", task=index,
                          executor=executor)
    finally:
        # wait=False: a hung worker must not hang the parent too.  A
        # still-running abandoned task keeps its worker busy until it
        # finishes, but the run no longer depends on it.
        pool.shutdown(wait=False)
    for index, task in enumerate(tasks):
        if results[index] is _PENDING:
            _count(metrics, "parallel.task_retries", executor=executor)
            _count(metrics, "parallel.serial_fallbacks",
                   executor=executor)
            log.warning("parallel.serial_fallback", task=index,
                        executor=executor)
            results[index] = function(task)
    return results


# ----------------------------------------------------------------------
# parse fan-out


@dataclass
class ParseOutcome:
    """What parsing one file produced: a unit, a parse error, or a
    contained parser-internal crash."""

    path: str
    unit: Optional[TranslationUnit] = None
    error: Optional[SourceError] = None
    #: A non-``SourceError`` raised inside the parser, contained (unless
    #: the run is strict); the file counts as unparseable and the run
    #: as degraded.
    crash: Optional[CheckerCrash] = None


@dataclass
class ParseTask:
    """One worker's share of the parse stage."""

    items: List[Tuple[str, str]]
    worker: int
    traced: bool = False
    #: Re-raise parser-internal errors instead of containing them.
    strict: bool = False
    #: Record structured events into a shipped-back worker buffer.
    logged: bool = False
    #: Store-backed fan-out: with both set, the worker persists each
    #: non-crashed outcome itself, into a private object area the
    #: parent absorbs on join (no second pickling in the parent, and a
    #: killed run leaves mergeable shards behind).  ``cache_keys``
    #: aligns with ``items``.
    cache_keys: Optional[List[str]] = None
    shard_dir: Optional[str] = None


def parse_one(path: str, source: str, strict: bool = False
              ) -> ParseOutcome:
    """Parse one file into an outcome, containing both failure modes.

    An expected :class:`SourceError` (malformed input) lands in
    ``error``; any other exception is a parser bug, contained as a
    ``crash`` record unless ``strict``.
    """
    try:
        unit = parse_translation_unit(source, path)
    except SourceError as error:
        return ParseOutcome(path, error=error)
    except Exception as error:
        if strict:
            raise
        return ParseOutcome(path, crash=make_crash(
            "parse", "parse", error, path=path))
    return ParseOutcome(path, unit=unit)


def run_parse_task(task: ParseTask
                   ) -> Tuple[List[ParseOutcome], Optional[Tracer],
                              Optional[List[Dict]]]:
    """Parse one chunk of ``(path, source)`` pairs, catching per-file
    :class:`SourceError` (and, unless strict, parser-internal crashes)
    so a poisoned file never kills the pool.

    Returns ``(outcomes, worker tracer or None, worker events or
    None)``; the parent grafts the latter two back into its own trace
    and event log.
    """
    tracer = Tracer() if task.traced else NULL_TRACER
    log = BufferLog(worker=task.worker) if task.logged else NULL_LOG
    timings = tracer.metrics.histogram("pipeline.parse_seconds")
    area = (ObjectStore(task.shard_dir)
            if task.shard_dir is not None and task.cache_keys is not None
            else None)
    outcomes: List[ParseOutcome] = []
    with tracer.span("parse_worker", worker=task.worker) as worker_span:
        failures = 0
        for index, (path, source) in enumerate(task.items):
            with tracer.span("parse_file", path=path) as span:
                outcome = parse_one(path, source, strict=task.strict)
                if outcome.unit is None:
                    span.set("failed", 1)
                    failures += 1
                outcomes.append(outcome)
                # Contained parser crashes are never cached: the fault
                # may be transient, and strict runs must reproduce it.
                if area is not None and outcome.crash is None:
                    area.put(task.cache_keys[index], outcome)
            if tracer.enabled:
                timings.observe(span.duration)
        worker_span.set("files", len(task.items))
        worker_span.set("failures", failures)
        log.debug("worker.parse", files=len(task.items),
                  failures=failures)
    return (outcomes, tracer if task.traced else None,
            log.events if task.logged else None)


# ----------------------------------------------------------------------
# per-unit checker fan-out


@dataclass
class CheckTask:
    """One worker's share of the per-unit checker stage.

    ``checkers`` are already pruned with
    :meth:`~repro.checkers.base.Checker.for_units`, so a process task
    ships only the per-file state its own units need.
    """

    checkers: List[Checker]
    units: List[TranslationUnit]
    worker: int
    traced: bool = False
    #: Re-raise checker crashes instead of containing them per unit.
    strict: bool = False
    #: Record structured events into a shipped-back worker buffer.
    logged: bool = False
    #: Store-backed fan-out, exactly as on :class:`ParseTask`;
    #: ``cache_keys`` aligns with ``units``.
    cache_keys: Optional[List[str]] = None
    shard_dir: Optional[str] = None


def run_check_task(task: CheckTask
                   ) -> Tuple[Dict[str, Dict[str, CheckerReport]],
                              Optional[Tracer], Optional[List[Dict]]]:
    """Run every per-unit checker over one chunk of units.

    Returns ``({path: {checker name: per-unit report}}, worker tracer
    or None, worker events or None)`` — the raw reports the parent
    merges in sorted-unit order and finalizes once, mirroring the
    default ``check_project`` exactly.  Each unit is swept once by the
    fused engine rather than once per checker.
    """
    tracer = Tracer() if task.traced else NULL_TRACER
    log = BufferLog(worker=task.worker) if task.logged else NULL_LOG
    area = (ObjectStore(task.shard_dir)
            if task.shard_dir is not None and task.cache_keys is not None
            else None)
    bundles: Dict[str, Dict[str, CheckerReport]] = {}
    with tracer.span("checker_worker", worker=task.worker) as span:
        for index, unit in enumerate(task.units):
            bundle = fused_unit_bundle(
                task.checkers, unit, strict=task.strict, log=log)
            bundles[unit.filename] = bundle
            # Crashed bundles are never cached (see bundle_has_crash).
            if area is not None and not bundle_has_crash(bundle):
                area.put(task.cache_keys[index], bundle)
        span.set("units", len(task.units))
        span.set("checkers", len(task.checkers))
        log.debug("worker.check", units=len(task.units),
                  checkers=len(task.checkers))
    return (bundles, tracer if task.traced else None,
            log.events if task.logged else None)


def check_unit_bundle(checkers: Sequence[Checker], unit: TranslationUnit,
                      strict: bool = False,
                      log: EventLog = NULL_LOG) -> Dict[str, CheckerReport]:
    """The serial (and cache-fill) equivalent of one unit's fan-out.

    Containment is per checker *and* per unit: a checker that raises a
    non-:class:`~repro.errors.ReproError` on this unit contributes a
    :func:`~repro.checkers.base.crash_report` for it, and both the other
    checkers on this unit and this checker on other units are
    unaffected.  ``strict=True`` re-raises instead; a contained crash
    is logged as a ``checker.crash`` event.
    """
    bundle: Dict[str, CheckerReport] = {}
    for checker in checkers:
        try:
            bundle[checker.name] = checker.check_unit(unit)
        except ReproError:
            raise
        except Exception as error:
            if strict:
                raise
            log.error("checker.crash", checker=checker.name,
                      stage="check_unit", path=unit.filename,
                      error=f"{type(error).__name__}: {error}")
            bundle[checker.name] = crash_report(checker.name, make_crash(
                checker.name, "check_unit", error, path=unit.filename))
    return bundle


def bundle_has_crash(bundle: Dict[str, CheckerReport]) -> bool:
    """True when any report in a per-unit bundle contains a crash.

    Crashed bundles are kept out of the result cache: the fault may be
    transient (and, under ``--strict``, must reproduce, not replay)."""
    return any(report.crashes for report in bundle.values())


def split_checkers(checkers: Sequence[Checker]
                   ) -> Tuple[List[Checker], List[Checker]]:
    """Partition into (per-unit parallelizable, project-level) checkers.

    A checker that keeps the base class's :meth:`check_project` is a
    pure per-unit merge + finalize, which the engine can replay from
    distributed (or cached) per-unit reports.  A checker that overrides
    :meth:`finish_from_units` has declared its own replay: its per-unit
    portion distributes, and the override runs the project-wide
    remainder over the merged result (unit design's recursion pass).
    Anything else overriding :meth:`check_project` needs the whole unit
    set and stays on the serial path.
    """
    def distributable(checker: Checker) -> bool:
        return (type(checker).check_project is Checker.check_project
                or type(checker).finish_from_units
                is not Checker.finish_from_units)

    per_unit = [checker for checker in checkers if distributable(checker)]
    project = [checker for checker in checkers
               if not distributable(checker)]
    return per_unit, project


# ----------------------------------------------------------------------
# telemetry fan-in


def graft_worker_trace(tracer: Tracer, parent: Span,
                       worker_tracer: Optional[Tracer]) -> None:
    """Reattach a worker's span forest and metrics to the parent trace.

    Worker spans become children of ``parent`` (timestamps come from
    the worker's own monotonic clock, which is process-consistent on
    the platforms we run on), and the worker's counters and histograms
    fold into the parent registry.
    """
    if worker_tracer is None or not tracer.enabled:
        return
    for root in worker_tracer.roots:
        root.parent = parent
        parent.children.append(root)
    tracer.metrics.merge(worker_tracer.metrics)
