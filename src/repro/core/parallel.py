"""Parallel execution engine for the assessment pipeline.

The pipeline's two hot stages — per-file parsing and per-unit checking
— are embarrassingly parallel, so this module fans them out over a
``concurrent.futures`` pool.  The contract, relied on by the
determinism tests, is that a parallel run is *result-identical* to the
serial run:

* work is chunked from the already-sorted unit list and results are
  reassembled in that order, so checker reports merge in exactly the
  serial order;
* only checkers that use the default per-unit
  :meth:`~repro.checkers.base.Checker.check_project` are fanned out;
  project-level checkers (architecture, unit design) see all units at
  once, exactly as in a serial run.

Each worker chunk runs under its own :class:`~repro.obs.Tracer` (the
shared tracer's span stack is not thread-safe); the resulting span
forest and metrics are grafted back into the parent trace by
:func:`graft_worker_trace`, so ``--trace`` shows one ``parse_worker`` /
``checker_worker`` span per chunk with real per-file child spans.

Worker task functions are module-level so the ``process`` executor can
pickle them; every payload (tasks, :class:`TranslationUnit` results,
checker reports, worker tracers) is plain-dataclass picklable.
"""

from __future__ import annotations

import os
from concurrent import futures
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..checkers.base import Checker, CheckerReport
from ..errors import ConfigError, SourceError
from ..lang.cppmodel import TranslationUnit, parse_translation_unit
from ..obs import NULL_TRACER, Span, Tracer

#: Recognized ``PipelineConfig.executor`` values.  ``thread`` has no
#: per-task pickling cost; ``process`` sidesteps the GIL for CPU-bound
#: parsing at the price of shipping sources and results across
#: processes.
EXECUTOR_KINDS = ("thread", "process")


def worker_count(jobs: int) -> int:
    """Resolve a ``jobs`` setting: 0 means one worker per CPU."""
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def chunk_evenly(items: Sequence, chunks: int) -> List[List]:
    """Split ``items`` into at most ``chunks`` balanced runs, in order.

    Concatenating the result reproduces ``items`` exactly — the order
    guarantee the deterministic merge builds on.
    """
    if chunks < 1:
        raise ConfigError(f"chunk count must be >= 1, got {chunks}")
    chunks = min(chunks, len(items))
    if chunks == 0:
        return []
    size, remainder = divmod(len(items), chunks)
    result: List[List] = []
    start = 0
    for index in range(chunks):
        stop = start + size + (1 if index < remainder else 0)
        result.append(list(items[start:stop]))
        start = stop
    return result


def run_tasks(function: Callable, tasks: Sequence, *, jobs: int,
              executor: str) -> List:
    """Run ``function`` over ``tasks`` on a pool; results in task order.

    ``jobs <= 1`` (or a single task) short-circuits to a plain loop —
    the serial path allocates no pool at all.
    """
    if executor not in EXECUTOR_KINDS:
        raise ConfigError(
            f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}")
    if jobs <= 1 or len(tasks) <= 1:
        return [function(task) for task in tasks]
    pool_class = (futures.ThreadPoolExecutor if executor == "thread"
                  else futures.ProcessPoolExecutor)
    with pool_class(max_workers=min(jobs, len(tasks))) as pool:
        return list(pool.map(function, tasks))


# ----------------------------------------------------------------------
# parse fan-out


@dataclass
class ParseOutcome:
    """What parsing one file produced: a unit, or the parse error."""

    path: str
    unit: Optional[TranslationUnit] = None
    error: Optional[SourceError] = None


@dataclass
class ParseTask:
    """One worker's share of the parse stage."""

    items: List[Tuple[str, str]]
    worker: int
    traced: bool = False


def run_parse_task(task: ParseTask
                   ) -> Tuple[List[ParseOutcome], Optional[Tracer]]:
    """Parse one chunk of ``(path, source)`` pairs, catching per-file
    :class:`SourceError` so a poisoned file never kills the pool."""
    tracer = Tracer() if task.traced else NULL_TRACER
    timings = tracer.metrics.histogram("pipeline.parse_seconds")
    outcomes: List[ParseOutcome] = []
    with tracer.span("parse_worker", worker=task.worker) as worker_span:
        failures = 0
        for path, source in task.items:
            with tracer.span("parse_file", path=path) as span:
                try:
                    unit = parse_translation_unit(source, path)
                except SourceError as error:
                    span.set("failed", 1)
                    failures += 1
                    outcomes.append(ParseOutcome(path, error=error))
                else:
                    outcomes.append(ParseOutcome(path, unit=unit))
            if tracer.enabled:
                timings.observe(span.duration)
        worker_span.set("files", len(task.items))
        worker_span.set("failures", failures)
    return outcomes, (tracer if task.traced else None)


# ----------------------------------------------------------------------
# per-unit checker fan-out


@dataclass
class CheckTask:
    """One worker's share of the per-unit checker stage.

    ``checkers`` are already pruned with
    :meth:`~repro.checkers.base.Checker.for_units`, so a process task
    ships only the per-file state its own units need.
    """

    checkers: List[Checker]
    units: List[TranslationUnit]
    worker: int
    traced: bool = False


def run_check_task(task: CheckTask
                   ) -> Tuple[Dict[str, Dict[str, CheckerReport]],
                              Optional[Tracer]]:
    """Run every per-unit checker over one chunk of units.

    Returns ``{path: {checker name: per-unit report}}`` — the raw
    reports the parent merges in sorted-unit order and finalizes once,
    mirroring the default ``check_project`` exactly.
    """
    tracer = Tracer() if task.traced else NULL_TRACER
    bundles: Dict[str, Dict[str, CheckerReport]] = {}
    with tracer.span("checker_worker", worker=task.worker) as span:
        for unit in task.units:
            bundles[unit.filename] = {
                checker.name: checker.check_unit(unit)
                for checker in task.checkers}
        span.set("units", len(task.units))
        span.set("checkers", len(task.checkers))
    return bundles, (tracer if task.traced else None)


def check_unit_bundle(checkers: Sequence[Checker], unit: TranslationUnit
                      ) -> Dict[str, CheckerReport]:
    """The serial (and cache-fill) equivalent of one unit's fan-out."""
    return {checker.name: checker.check_unit(unit) for checker in checkers}


def split_checkers(checkers: Sequence[Checker]
                   ) -> Tuple[List[Checker], List[Checker]]:
    """Partition into (per-unit parallelizable, project-level) checkers.

    A checker that keeps the base class's :meth:`check_project` is a
    pure per-unit merge + finalize, which the engine can replay from
    distributed (or cached) per-unit reports.  Anything overriding it
    needs the whole unit set and stays on the serial path.
    """
    per_unit = [checker for checker in checkers
                if type(checker).check_project is Checker.check_project]
    project = [checker for checker in checkers
               if type(checker).check_project is not Checker.check_project]
    return per_unit, project


# ----------------------------------------------------------------------
# telemetry fan-in


def graft_worker_trace(tracer: Tracer, parent: Span,
                       worker_tracer: Optional[Tracer]) -> None:
    """Reattach a worker's span forest and metrics to the parent trace.

    Worker spans become children of ``parent`` (timestamps come from
    the worker's own monotonic clock, which is process-consistent on
    the platforms we run on), and the worker's counters and histograms
    fold into the parent registry.
    """
    if worker_tracer is None or not tracer.enabled:
        return
    for root in worker_tracer.roots:
        root.parent = parent
        parent.children.append(root)
    tracer.metrics.merge(worker_tracer.metrics)
