"""Rule profiles: per-project enable/disable globs and severity overrides.

MISRA compliance documents declare, per project, which rules apply and at
what category; ISO 26262 audits work the same way.  A :class:`RuleProfile`
captures that declaration: shell-style globs (``fnmatch``, case-sensitive)
select the enabled rule ids, and ``severities`` remaps the default
severity of matching rules.

The default profile — enable everything, override nothing — is
behaviorally identical to having no profile at all, and
:meth:`RuleProfile.fingerprint_for` returns ``""`` for any checker whose
rule resolution the profile leaves untouched, so the result cache keeps
its entries for unaffected checkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

from ..errors import RuleError
from .registry import Rule, Severity

SeverityOverrides = Union[Mapping[str, Severity],
                          Iterable[Tuple[str, Severity]]]


@dataclass(frozen=True)
class RuleProfile:
    """Which rules apply, and at what severity.

    Attributes:
        enable: globs selecting the rules in force (default: all).
        disable: globs removing rules from the enabled set; disable
            wins over enable.
        severities: ``(glob, Severity)`` pairs remapping the default
            severity of matching enabled rules; the last matching pair
            wins.  A mapping is accepted and normalized.
    """

    enable: Tuple[str, ...] = ("*",)
    disable: Tuple[str, ...] = ()
    severities: Tuple[Tuple[str, Severity], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "enable",
                           tuple(self.enable) or ("*",))
        object.__setattr__(self, "disable", tuple(self.disable))
        overrides = self.severities
        if isinstance(overrides, Mapping):
            overrides = overrides.items()
        object.__setattr__(
            self, "severities",
            tuple((pattern, Severity(level))
                  for pattern, level in overrides))

    # ------------------------------------------------------------------

    def enabled(self, rule_id: str) -> bool:
        """True when ``rule_id`` is in force under this profile."""
        return (any(fnmatchcase(rule_id, glob) for glob in self.enable)
                and not any(fnmatchcase(rule_id, glob)
                            for glob in self.disable))

    def severity_for(self, rule_id: str, default: Severity) -> Severity:
        """The effective severity of ``rule_id`` (last override wins)."""
        effective = default
        for pattern, severity in self.severities:
            if fnmatchcase(rule_id, pattern):
                effective = severity
        return effective

    # ------------------------------------------------------------------

    def fingerprint_for(self, rules: Iterable[Rule]) -> str:
        """Cache-key material: how this profile alters ``rules``.

        Returns ``""`` when the profile resolves every rule to its
        registered default — the checker's output is then identical to
        an unprofiled run, so its cached per-unit reports stay valid.
        """
        parts = []
        for rule in sorted(rules, key=lambda rule: rule.id):
            if not self.enabled(rule.id):
                parts.append(f"-{rule.id}")
            else:
                severity = self.severity_for(rule.id, rule.severity)
                if severity is not rule.severity:
                    parts.append(f"{rule.id}={severity.name}")
        return ",".join(parts)


def profile_from_globs(enable: Optional[Sequence[str]],
                       disable: Optional[Sequence[str]],
                       registry: Iterable[Rule]
                       ) -> Optional[RuleProfile]:
    """Build the profile behind ``--enable``/``--disable`` flags.

    Shared by ``repro-assess`` and ``repro-serve``: every pattern must
    match at least one registered rule (a typo'd glob silently enabling
    nothing is worse than an error), and no patterns at all means no
    profile (``None``), keeping default runs byte-identical.

    Raises:
        RuleError: when a pattern matches no registered rule.
    """
    if not enable and not disable:
        return None
    rules = list(registry)
    for pattern in tuple(enable or ()) + tuple(disable or ()):
        if not any(fnmatchcase(rule.id, pattern) for rule in rules):
            raise RuleError(
                f"rule pattern {pattern!r} matches no registered rule "
                f"(see --list-rules)")
    return RuleProfile(enable=tuple(enable or ()),
                       disable=tuple(disable or ()))
