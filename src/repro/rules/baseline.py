"""Finding baselines: adopt the tooling on a legacy tree incrementally.

The paper's remediation path (Observation 14) assumes "limited
engineering effort" — which in practice means a large existing codebase
cannot fix thousands of findings at once.  The standard industrial answer
is a *baseline*: snapshot today's findings to JSON, then have later runs
report only what is **new** relative to that snapshot, so the finding
count can be ratcheted down without drowning reviews in legacy noise.

Findings are matched by a line-free key (rule, file, function, message),
so unrelated edits that shift line numbers do not resurrect baselined
findings.  Keys are counted, not set-matched: a file with three identical
violations baselines three, and a fourth occurrence is new.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, TYPE_CHECKING

from ..errors import BaselineError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..checkers.base import CheckerReport, Finding

#: Bump when the snapshot layout changes incompatibly.
BASELINE_VERSION = 1


def finding_key(finding: "Finding") -> str:
    """Line-independent identity of a finding for baseline matching."""
    return "|".join((finding.rule, finding.filename, finding.function,
                     finding.message))


@dataclass
class BaselineComparison:
    """The outcome of comparing a run's reports against a baseline.

    Attributes:
        new: findings absent from the snapshot, keyed by checker name
            (checkers with nothing new are omitted).
        known: how many findings the snapshot accounted for.
    """

    new: Dict[str, List["Finding"]] = field(default_factory=dict)
    known: int = 0

    @property
    def total_new(self) -> int:
        return sum(len(findings) for findings in self.new.values())

    def new_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for findings in self.new.values():
            for finding in findings:
                counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


class Baseline:
    """A serializable snapshot of one run's findings."""

    def __init__(self,
                 counts: Mapping[str, Mapping[str, int]] = ()) -> None:
        #: ``{checker name: {finding key: occurrence count}}``.
        self.counts: Dict[str, Dict[str, int]] = {
            checker: dict(keys)
            for checker, keys in dict(counts).items()}

    @classmethod
    def from_reports(cls, reports: Mapping[str, "CheckerReport"]
                     ) -> "Baseline":
        counts: Dict[str, Dict[str, int]] = {}
        for name, report in reports.items():
            keys: Dict[str, int] = {}
            for finding in report.findings:
                key = finding_key(finding)
                keys[key] = keys.get(key, 0) + 1
            if keys:
                counts[name] = keys
        return cls(counts)

    # ------------------------------------------------------------------

    def compare(self, reports: Mapping[str, "CheckerReport"]
                ) -> BaselineComparison:
        """Split the reports' findings into known-vs-new.

        Within one key, the first ``count`` occurrences (in report
        order) are known and any excess is new — deterministic, and
        exact when occurrences are indistinguishable anyway.
        """
        comparison = BaselineComparison()
        for name, report in reports.items():
            remaining = dict(self.counts.get(name, {}))
            fresh: List["Finding"] = []
            for finding in report.findings:
                key = finding_key(finding)
                if remaining.get(key, 0) > 0:
                    remaining[key] -= 1
                    comparison.known += 1
                else:
                    fresh.append(finding)
            if fresh:
                comparison.new[name] = fresh
        return comparison

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "version": BASELINE_VERSION,
            "findings": {checker: dict(sorted(keys.items()))
                         for checker, keys in sorted(self.counts.items())},
        }

    def save(self, path: str) -> None:
        try:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
        except OSError as error:
            raise BaselineError(
                f"cannot write baseline {path!r}: {error}") from error

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as error:
            raise BaselineError(
                f"cannot read baseline {path!r}: {error}") from error
        except ValueError as error:
            raise BaselineError(
                f"baseline {path!r} is not valid JSON: {error}") from error
        if not isinstance(document, dict) \
                or document.get("version") != BASELINE_VERSION \
                or not isinstance(document.get("findings"), dict):
            raise BaselineError(
                f"baseline {path!r} is not a version-"
                f"{BASELINE_VERSION} finding snapshot")
        try:
            counts = {
                str(checker): {str(key): int(count)
                               for key, count in keys.items()}
                for checker, keys in document["findings"].items()}
        except (AttributeError, TypeError, ValueError) as error:
            raise BaselineError(
                f"baseline {path!r} has a malformed findings map: "
                f"{error}") from error
        return cls(counts)
