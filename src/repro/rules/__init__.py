"""First-class rules: registry, profiles, deviations, and baselines.

This package is the bottom layer of the checker stack (it imports
nothing from :mod:`repro.checkers` or :mod:`repro.core`).  Checkers
register their :class:`Rule` records in :data:`REGISTRY` at import time
and route findings through it; the pipeline layers profiles
(:class:`RuleProfile`), inline deviations (:func:`scan_deviations`), and
finding baselines (:class:`Baseline`) on top.
"""

from .baseline import (
    BASELINE_VERSION,
    Baseline,
    BaselineComparison,
    finding_key,
)
from .deviations import (
    DEVIATION_PATTERN,
    Deviation,
    DeviationIndex,
    scan_deviations,
)
from .profile import RuleProfile, profile_from_globs
from .registry import (
    CHECKER_CRASH,
    DEVIATION_RULES,
    INTERNAL_RULES,
    MISSING_RATIONALE,
    REGISTRY,
    Rule,
    RuleRegistry,
    Severity,
    UNKNOWN_RULE,
    render_rules,
)

__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "BaselineComparison",
    "CHECKER_CRASH",
    "DEVIATION_PATTERN",
    "DEVIATION_RULES",
    "Deviation",
    "DeviationIndex",
    "INTERNAL_RULES",
    "MISSING_RATIONALE",
    "REGISTRY",
    "Rule",
    "RuleProfile",
    "RuleRegistry",
    "Severity",
    "UNKNOWN_RULE",
    "finding_key",
    "profile_from_globs",
    "render_rules",
    "scan_deviations",
]
