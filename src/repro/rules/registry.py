"""Rule records and the registry every checker publishes into.

The paper's methodology is rule-driven — MISRA subsets (Table 1 item 2),
style and naming conventions (items 7/8), the ten Table 8 unit-design
principles — and both MISRA and ISO 26262 operate in practice through
per-project rule *profiles* and documented *deviations*.  That requires
rules to be data, not string literals buried in checkers: one
:class:`Rule` record per stable identifier, collected in the process-wide
:data:`REGISTRY` at checker-module import time.

The profile (:mod:`repro.rules.profile`), deviation
(:mod:`repro.rules.deviations`) and baseline (:mod:`repro.rules.baseline`)
layers all resolve against these records; ``repro-assess --list-rules``
renders them via :func:`render_rules`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import RuleError


class Severity(enum.IntEnum):
    """How strongly a finding blocks ISO 26262 compliance."""

    INFO = 0
    MINOR = 1
    MAJOR = 2
    CRITICAL = 3


@dataclass(frozen=True)
class Rule:
    """One registered rule: identity, default severity, ISO mapping.

    Attributes:
        id: stable rule identifier, e.g. ``"M15.1"`` or ``"UD9.goto"``.
        title: one-line statement of the rule.
        severity: default blocking strength of its findings.
        checker: name of the checker that emits it (filled in by
            :meth:`RuleRegistry.register_many`).
        table: ISO 26262-6 table key the rule feeds
            (``"modeling_coding"``, ``"architectural_design"``,
            ``"unit_design"``), or ``""`` for process rules.
        topic: technique key inside that table, e.g.
            ``"language_subsets"``.
    """

    id: str
    title: str
    severity: Severity = Severity.MINOR
    checker: str = ""
    table: str = ""
    topic: str = ""


class RuleRegistry:
    """All known rules, keyed by id.

    Registration is idempotent for identical records (modules may be
    re-imported) but two *different* records under one id is a
    :class:`~repro.errors.RuleError` — silently shadowing a rule would
    corrupt profiles and deviations referring to it.
    """

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        existing = self._rules.get(rule.id)
        if existing is not None:
            if existing == rule:
                return existing
            raise RuleError(
                f"conflicting registration for rule {rule.id!r}: "
                f"{existing} vs {rule}")
        self._rules[rule.id] = rule
        return rule

    def register_many(self, checker: str,
                      rules: Iterable[Rule]) -> List[Rule]:
        """Register ``rules`` as belonging to ``checker``."""
        return [self.register(replace(rule, checker=checker))
                for rule in rules]

    def get(self, rule_id: str) -> Optional[Rule]:
        return self._rules.get(rule_id)

    def checker_of(self, rule_id: str) -> str:
        """Name of the checker owning ``rule_id``, or ``""`` if unknown."""
        rule = self._rules.get(rule_id)
        return rule.checker if rule is not None else ""

    def rules_for(self, checker: str) -> List[Rule]:
        """The rules ``checker`` emits, sorted by id."""
        return sorted((rule for rule in self._rules.values()
                       if rule.checker == checker),
                      key=lambda rule: rule.id)

    def ids(self) -> List[str]:
        return sorted(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        """Rules in deterministic (checker, id) order."""
        return iter(sorted(self._rules.values(),
                           key=lambda rule: (rule.checker, rule.id)))


#: The process-wide registry.  Checker modules register their rules here
#: at import time, so importing :mod:`repro.checkers` populates it.
REGISTRY = RuleRegistry()


#: Process rules for the deviation mechanism itself (MISRA compliance
#: documents require every deviation to be justified).
MISSING_RATIONALE = "DV.missing_rationale"
UNKNOWN_RULE = "DV.unknown_rule"

DEVIATION_RULES = REGISTRY.register_many("deviation", (
    Rule(MISSING_RATIONALE,
         "A DEVIATION comment shall state a rationale",
         Severity.MAJOR),
    Rule(UNKNOWN_RULE,
         "A DEVIATION comment shall name a registered rule",
         Severity.MINOR),
))


#: Process rule for the fault-isolation layer: when a checker raises a
#: non-:class:`~repro.errors.ReproError`, the crash is contained and
#: surfaced as a finding under this id, so a degraded run still carries
#: machine-readable evidence of what it could not analyze.
CHECKER_CRASH = "internal.checker_crash"

INTERNAL_RULES = REGISTRY.register_many("internal", (
    Rule(CHECKER_CRASH,
         "A checker crashed; its findings for the run are incomplete",
         Severity.CRITICAL),
))


def render_rules(registry: Optional[RuleRegistry] = None) -> str:
    """A fixed-width rule index for ``repro-assess --list-rules``."""
    registry = registry if registry is not None else REGISTRY
    rows = []
    for rule in registry:
        topic = f"{rule.table}/{rule.topic}" if rule.table else "-"
        rows.append((rule.id, rule.checker, rule.severity.name, topic,
                     rule.title))
    header = ("rule", "checker", "severity", "ISO 26262 topic", "title")
    widths = [max(len(header[column]),
                  max((len(row[column]) for row in rows), default=0)) + 2
              for column in range(4)]
    def line(row):
        return "".join(cell.ljust(width)
                       for cell, width in zip(row[:4], widths)) + row[4]
    lines = [line(header), "-" * (sum(widths) + len("title"))]
    lines.extend(line(row) for row in rows)
    lines.append(f"\n{len(registry)} rules registered")
    return "\n".join(lines)
