"""MISRA-style documented deviations, declared inline in source comments.

MISRA compliance does not mean zero violations; it means every remaining
violation is a *documented deviation* with a recorded rationale.  The
reproduction recognizes the industrial idiom::

    int g_state;  // DEVIATION(GV.mutable_global: legacy HAL interop)

A deviation suppresses findings of exactly the named rule on exactly the
line the ``DEVIATION(...)`` text sits on.  Suppressed findings are kept
(reported separately, counted under the ``deviations`` stat) — a
deviation hides nothing, it reclassifies.  A deviation *without* a
rationale suppresses nothing and is itself a finding
(:data:`~repro.rules.registry.MISSING_RATIONALE`), as is one naming an
unregistered rule (:data:`~repro.rules.registry.UNKNOWN_RULE`).

Deviation scanning happens on :attr:`TranslationUnit.tokens`, where
comments survive lexing, so it works identically on freshly parsed,
cached, and process-pool-shipped units.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..lang.tokens import Token, TokenKind

#: ``DEVIATION(rule-id)`` or ``DEVIATION(rule-id: rationale)``; several
#: may share one comment.
DEVIATION_PATTERN = re.compile(
    r"DEVIATION\(\s*([A-Za-z0-9_.\-]+)\s*(?::\s*([^)]*?)\s*)?\)")


@dataclass(frozen=True)
class Deviation:
    """One declared deviation site.

    Attributes:
        rule: the rule id being deviated from.
        rationale: the recorded justification (``""`` when missing).
        filename: file carrying the comment.
        line: 1-based line the ``DEVIATION(...)`` text sits on.
    """

    rule: str
    rationale: str
    filename: str
    line: int


class DeviationIndex:
    """Deviations of one or more units, indexed for suppression lookups.

    Picklable (plain dict/list state), so it crosses process pools and
    the result cache inside checker reports without special handling.
    """

    def __init__(self, deviations: Iterable[Deviation] = ()) -> None:
        self._deviations: List[Deviation] = []
        self._by_site: Dict[Tuple[str, int, str], Deviation] = {}
        for deviation in deviations:
            self.add(deviation)

    def add(self, deviation: Deviation) -> None:
        self._deviations.append(deviation)
        self._by_site[(deviation.filename, deviation.line,
                       deviation.rule)] = deviation

    def extend(self, other: "DeviationIndex") -> None:
        for deviation in other:
            self.add(deviation)

    def suppressing(self, rule: str, filename: str,
                    line: int) -> Optional[Deviation]:
        """The deviation justifying ``rule`` at ``filename:line``, if any.

        Only deviations carrying a rationale suppress; an unjustified
        one is itself a finding and must not hide the violation it
        points at.
        """
        deviation = self._by_site.get((filename, line, rule))
        if deviation is not None and deviation.rationale:
            return deviation
        return None

    def __iter__(self) -> Iterator[Deviation]:
        return iter(self._deviations)

    def __len__(self) -> int:
        return len(self._deviations)

    def __bool__(self) -> bool:
        return bool(self._deviations)


def scan_deviations(tokens: Iterable[Token],
                    filename: str) -> DeviationIndex:
    """All ``DEVIATION(...)`` declarations in a unit's comment tokens."""
    index = DeviationIndex()
    for token in tokens:
        if token.kind is not TokenKind.COMMENT:
            continue
        for match in DEVIATION_PATTERN.finditer(token.text):
            line = token.line + token.text[:match.start()].count("\n")
            index.add(Deviation(rule=match.group(1),
                                rationale=(match.group(2) or "").strip(),
                                filename=filename,
                                line=line))
    return index
