"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Sub-hierarchies mirror the
package layout: language-processing errors, coverage errors, GPU-emulation
errors, and configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SourceError(ReproError):
    """An error tied to a location in analyzed source code.

    Attributes:
        message: the bare description, without the location prefix.
        filename: name of the translation unit, or ``"<memory>"``.
        line: 1-based line number of the offending construct.
        column: 1-based column number.
    """

    def __init__(self, message: str, filename: str = "<memory>",
                 line: int = 0, column: int = 0) -> None:
        self.message = message
        self.filename = filename
        self.line = line
        self.column = column
        location = f"{filename}:{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")

    def __reduce__(self):
        # The formatted string lands in args[0], so the default reduce
        # would rebuild via SourceError(formatted_msg): the location
        # prefix doubles and filename/line/column reset to defaults.
        # Instances cross process-pool result queues and the result
        # cache, so round-trip with the original constructor arguments.
        return (type(self),
                (self.message, self.filename, self.line, self.column))


class LexError(SourceError):
    """Raised when the tokenizer encounters an unrecognizable character."""


class ParseError(SourceError):
    """Raised when a parser cannot derive a valid construct."""


class PreprocessorError(SourceError):
    """Raised on malformed or unsupported preprocessor directives."""


class InterpreterError(ReproError):
    """Base class for MiniC runtime errors."""


class MiniCRuntimeError(InterpreterError):
    """A MiniC program performed an invalid operation at run time."""


class MiniCNameError(MiniCRuntimeError):
    """Reference to an undeclared variable or function."""


class MiniCTypeError(MiniCRuntimeError):
    """Operation applied to operands of an unsupported type."""


class MiniCIndexError(MiniCRuntimeError):
    """Array access outside the allocated bounds."""


class MiniCStepLimitExceeded(InterpreterError):
    """The interpreter hit its configured execution-step budget."""


class CoverageError(ReproError):
    """Raised on inconsistent coverage instrumentation or reporting."""


class GpuError(ReproError):
    """Base class for CUDA-emulation errors."""


class GpuMemoryError(GpuError):
    """Invalid device pointer, double free, or out-of-bounds transfer."""


class GpuLaunchError(GpuError):
    """Kernel launch with an invalid configuration or argument list."""


class CorpusError(ReproError):
    """Raised when a synthetic-corpus specification is invalid."""


class ComplianceError(ReproError):
    """Raised when compliance evidence is missing or inconsistent."""


class ConfigError(ReproError):
    """Raised on invalid assessment-pipeline configuration."""


class RuleError(ReproError):
    """Raised on conflicting rule registrations or unknown rule ids."""


class BaselineError(ReproError):
    """Raised when a finding baseline cannot be read or written."""


class ReportError(ReproError):
    """Raised when a reporter cannot write its output surface."""


class PerfModelError(ReproError):
    """Raised when a performance model is queried with an invalid workload."""


class ServeError(ReproError):
    """Raised on an invalid ``repro-serve`` request or configuration.

    Request-scoped by design: the daemon maps it to an ``ok: false``
    reply for the offending request and keeps serving.
    """
