"""repro: ISO 26262-6 adherence assessment for C/C++/CUDA AD codebases.

A full reproduction of "Assessing the Adherence of an Industrial
Autonomous Driving Framework to ISO 26262 Software Guidelines"
(Tabani et al., DAC 2019): static analyzers for every guideline the paper
measures, a statement/branch/MC-DC coverage engine over an executable C
subset, a CUDA-on-CPU emulation layer, calibrated GPU-library performance
models, and a synthetic Apollo-like corpus generator.

Typical use::

    from repro import assess_corpus, apollo_spec, generate_corpus
    result = assess_corpus(generate_corpus(apollo_spec(scale=0.1)))
    print(result.render_summary())
"""

from .core import (
    AssessmentPipeline,
    AssessmentResult,
    PipelineConfig,
    assess_corpus,
    assess_sources,
)
from .corpus import apollo_spec, generate_corpus
from .errors import ReproError
from .obs import NULL_TRACER, MetricsRegistry, NullTracer, Tracer
from .rules import Baseline, RuleProfile, Severity

__version__ = "1.0.0"

__all__ = [
    "AssessmentPipeline",
    "AssessmentResult",
    "Baseline",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PipelineConfig",
    "ReproError",
    "RuleProfile",
    "Severity",
    "Tracer",
    "__version__",
    "apollo_spec",
    "assess_corpus",
    "assess_sources",
    "generate_corpus",
]
