"""Device-memory manager for the CUDA-on-CPU runtime.

Models the two-address-space discipline the paper's Figure 4 discussion
highlights: host data must be explicitly transferred to device buffers
(``cudaMalloc`` + ``cudaMemcpy``), kernels only ever see device pointers,
and results are copied back.  Use-after-free and out-of-bounds transfers
raise :class:`~repro.errors.GpuMemoryError` instead of corrupting state.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import GpuMemoryError
from ..lang.minic.interpreter import ArrayValue


class DevicePointer:
    """A handle to (a view of) one device allocation."""

    __slots__ = ("_memory", "allocation_id", "offset", "size")

    def __init__(self, memory: "DeviceMemory", allocation_id: int,
                 offset: int, size: int) -> None:
        self._memory = memory
        self.allocation_id = allocation_id
        self.offset = offset
        self.size = size

    def view(self) -> ArrayValue:
        """The MiniC buffer view backing this pointer (bounds-checked)."""
        buffer = self._memory._buffer_of(self.allocation_id)
        return ArrayValue(buffer, self.offset)

    def offset_by(self, elements: int) -> "DevicePointer":
        """Pointer arithmetic: a sub-view shifted by ``elements``."""
        if elements < 0 or self.offset + elements > self.size + self.offset:
            raise GpuMemoryError(
                f"pointer offset {elements} escapes allocation "
                f"{self.allocation_id}")
        return DevicePointer(self._memory, self.allocation_id,
                             self.offset + elements,
                             self.size - elements)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DevicePointer(alloc={self.allocation_id}, "
                f"offset={self.offset}, size={self.size})")


class DeviceMemory:
    """All device allocations of one emulated GPU."""

    def __init__(self, capacity_elements: int = 64 * 1024 * 1024) -> None:
        self.capacity_elements = capacity_elements
        self._allocations: dict = {}
        self._next_id = 1
        self._used = 0

    # ------------------------------------------------------------------

    def malloc(self, elements: int, fill: float = 0.0) -> DevicePointer:
        """Allocate ``elements`` device elements (cudaMalloc analogue)."""
        if elements <= 0:
            raise GpuMemoryError(f"allocation size must be positive, "
                                 f"got {elements}")
        if self._used + elements > self.capacity_elements:
            raise GpuMemoryError(
                f"device out of memory: {self._used} + {elements} > "
                f"{self.capacity_elements} elements")
        allocation_id = self._next_id
        self._next_id += 1
        self._allocations[allocation_id] = [fill] * elements
        self._used += elements
        return DevicePointer(self, allocation_id, 0, elements)

    def free(self, pointer: DevicePointer) -> None:
        """Release an allocation (cudaFree analogue).

        Freeing a non-base pointer or double-freeing raises.
        """
        if pointer.offset != 0:
            raise GpuMemoryError(
                "cudaFree requires the base pointer of an allocation")
        buffer = self._allocations.pop(pointer.allocation_id, None)
        if buffer is None:
            raise GpuMemoryError(
                f"double free or invalid pointer "
                f"(allocation {pointer.allocation_id})")
        self._used -= len(buffer)

    def _buffer_of(self, allocation_id: int) -> List:
        buffer = self._allocations.get(allocation_id)
        if buffer is None:
            raise GpuMemoryError(
                f"use of freed or invalid device pointer "
                f"(allocation {allocation_id})")
        return buffer

    # ------------------------------------------------------------------

    def memcpy_htod(self, destination: DevicePointer,
                    source: Sequence) -> None:
        """Host-to-device copy (cudaMemcpyHostToDevice analogue)."""
        values = [float(value) for value in source]
        if len(values) > destination.size:
            raise GpuMemoryError(
                f"host buffer of {len(values)} elements exceeds device "
                f"view of {destination.size}")
        buffer = self._buffer_of(destination.allocation_id)
        start = destination.offset
        buffer[start:start + len(values)] = values

    def memcpy_dtoh(self, source: DevicePointer,
                    elements: int = -1) -> List[float]:
        """Device-to-host copy; returns a new host list."""
        if elements < 0:
            elements = source.size
        if elements > source.size:
            raise GpuMemoryError(
                f"requested {elements} elements from device view of "
                f"{source.size}")
        buffer = self._buffer_of(source.allocation_id)
        start = source.offset
        return list(buffer[start:start + elements])

    def memcpy_dtod(self, destination: DevicePointer,
                    source: DevicePointer, elements: int = -1) -> None:
        """Device-to-device copy."""
        values = self.memcpy_dtoh(source, elements)
        self.memcpy_htod(destination, values)

    # ------------------------------------------------------------------

    @property
    def live_allocations(self) -> int:
        return len(self._allocations)

    @property
    def used_elements(self) -> int:
        return self._used

    def check_all_freed(self) -> None:
        """Raise when allocations leaked — useful in tests."""
        if self._allocations:
            raise GpuMemoryError(
                f"{len(self._allocations)} device allocation(s) leaked")
