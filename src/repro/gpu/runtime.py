"""CUDA-on-CPU execution runtime (the cuda4cpu substitute).

Executes ``__global__`` MiniC kernels on the host, one logical thread at a
time, exactly like cuda4cpu does for real CUDA C: the grid/block geometry
is honored, ``threadIdx``/``blockIdx``/``blockDim``/``gridDim`` resolve per
thread, and device memory is a separate address space
(:mod:`repro.gpu.memory`).

Because kernels run through the instrumented MiniC interpreter, a coverage
collector can be attached to a launch — that is the paper's Figure 6
experiment (statement/branch coverage of CUDA code "modified to run in the
CPU").

Limitations (documented, matching DESIGN.md): no ``__shared__`` memory, no
``__syncthreads`` (threads run to completion sequentially, so kernels must
be data-race-free across threads — true for all the paper's workloads), no
warp primitives.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..errors import GpuLaunchError
from ..lang.minic import ast
from ..lang.minic.interpreter import Interpreter, ThreadContext, Tracer
from ..lang.minic.parser import parse_program
from ..obs import NULL_TRACER
from .dim3 import Dim3, Dim3Like
from .memory import DeviceMemory, DevicePointer

#: Safety valve: emulated launches larger than this are a usage error
#: (tree-walking threads are ~10^5 statements/second-scale, not 10^9).
MAX_EMULATED_THREADS = 1_000_000


class KernelLaunch:
    """Record of one completed launch, for inspection in tests.

    ``duration`` is the host wall time of the emulated launch in
    seconds (0.0 when the runtime has no telemetry attached).
    """

    def __init__(self, kernel: str, grid: Dim3, block: Dim3,
                 duration: float = 0.0) -> None:
        self.kernel = kernel
        self.grid = grid
        self.block = block
        self.duration = duration

    @property
    def thread_count(self) -> int:
        return self.grid.total * self.block.total


class CudaRuntime:
    """An emulated GPU: device memory plus a kernel-executing interpreter.

    Args:
        source_or_program: MiniC source text (or parsed program) containing
            ``__global__`` kernels and any ``__device__`` helpers.
        tracer: optional coverage tracer wired into kernel execution.
        max_steps_per_thread: interpreter budget per logical thread.
        obs_tracer: optional :class:`~repro.obs.Tracer`: each launch gets
            a timed ``kernel_launch`` span, and counters track launches,
            threads executed, and host<->device transfer volumes.
    """

    def __init__(self,
                 source_or_program: Union[str, ast.Program],
                 tracer: Optional[Tracer] = None,
                 max_steps_per_thread: int = 1_000_000,
                 memory_capacity: int = 64 * 1024 * 1024,
                 obs_tracer=None) -> None:
        if isinstance(source_or_program, str):
            self.program = parse_program(source_or_program, "<gpu>")
        else:
            self.program = source_or_program
        self.memory = DeviceMemory(memory_capacity)
        self.tracer = tracer
        self.obs_tracer = obs_tracer if obs_tracer is not None \
            else NULL_TRACER
        self.max_steps_per_thread = max_steps_per_thread
        self.launches: List[KernelLaunch] = []
        self._interpreter = Interpreter(
            self.program, tracer=tracer, max_steps=max_steps_per_thread,
            obs_metrics=(self.obs_tracer.metrics
                         if self.obs_tracer.enabled else None))
        self._kernels = {function.name: function
                         for function in self.program.kernels}

    # ------------------------------------------------------------------
    # memory API (cuda* analogues)

    def cuda_malloc(self, elements: int) -> DevicePointer:
        return self.memory.malloc(elements)

    def cuda_free(self, pointer: DevicePointer) -> None:
        self.memory.free(pointer)

    def cuda_memcpy_htod(self, destination: DevicePointer,
                         source: Sequence) -> None:
        self.memory.memcpy_htod(destination, source)
        metrics = self.obs_tracer.metrics
        metrics.counter("gpu.memcpy_htod").inc()
        metrics.counter("gpu.memcpy_htod_elements").inc(len(source))

    def cuda_memcpy_dtoh(self, source: DevicePointer,
                         elements: int = -1) -> List[float]:
        host = self.memory.memcpy_dtoh(source, elements)
        metrics = self.obs_tracer.metrics
        metrics.counter("gpu.memcpy_dtoh").inc()
        metrics.counter("gpu.memcpy_dtoh_elements").inc(len(host))
        return host

    def to_device(self, host: Sequence) -> DevicePointer:
        """Allocate-and-upload convenience (cudaMalloc + memcpy)."""
        host = list(host)
        pointer = self.cuda_malloc(max(1, len(host)))
        if host:
            self.cuda_memcpy_htod(pointer, host)
        return pointer

    # ------------------------------------------------------------------
    # kernel launch

    def launch(self, kernel_name: str, grid: Dim3Like, block: Dim3Like,
               args: Sequence) -> KernelLaunch:
        """Execute ``kernel<<<grid, block>>>(*args)`` on the host.

        Pointer arguments must be :class:`DevicePointer` handles — passing
        a raw host list raises, enforcing the same host/device separation
        real CUDA enforces at segfault-time.
        """
        kernel = self._kernels.get(kernel_name)
        if kernel is None:
            known = sorted(self._kernels)
            raise GpuLaunchError(
                f"no __global__ kernel named {kernel_name!r} "
                f"(known: {known})")
        grid = Dim3.of(grid)
        block = Dim3.of(block)
        threads = grid.total * block.total
        if threads > MAX_EMULATED_THREADS:
            raise GpuLaunchError(
                f"launch of {threads} threads exceeds the emulation limit "
                f"of {MAX_EMULATED_THREADS}")
        if len(args) != len(kernel.parameters):
            raise GpuLaunchError(
                f"kernel {kernel_name!r} takes {len(kernel.parameters)} "
                f"argument(s), got {len(args)}")
        marshaled = []
        for parameter, value in zip(kernel.parameters, args):
            if parameter.is_pointer:
                if isinstance(value, DevicePointer):
                    marshaled.append(value.view())
                elif value is None or value == 0:
                    marshaled.append(None)
                else:
                    raise GpuLaunchError(
                        f"kernel parameter {parameter.name!r} requires a "
                        f"device pointer, got {type(value).__name__} "
                        f"(host memory is not device-accessible)")
            else:
                marshaled.append(value)

        with self.obs_tracer.span("kernel_launch", kernel=kernel_name,
                                  threads=threads) as span:
            for block_index in grid.indices():
                for thread_index in block.indices():
                    context = ThreadContext(
                        thread_idx=thread_index,
                        block_idx=block_index,
                        block_dim=block.as_tuple(),
                        grid_dim=grid.as_tuple(),
                    )
                    self._interpreter.run(kernel_name, marshaled,
                                          thread_context=context)
        metrics = self.obs_tracer.metrics
        metrics.counter("gpu.kernel_launches").inc()
        metrics.counter("gpu.threads_executed").inc(threads)
        metrics.histogram("gpu.kernel_seconds",
                          kernel=kernel_name).observe(span.duration)
        record = KernelLaunch(kernel_name, grid, block,
                              duration=span.duration)
        self.launches.append(record)
        return record

    # ------------------------------------------------------------------

    @property
    def kernel_names(self) -> List[str]:
        return sorted(self._kernels)


def grid_for(total_threads: int, block_size: int) -> Dim3:
    """1-D grid covering ``total_threads`` with ``block_size`` per block.

    The ``(n - 1) / BLOCK + 1`` idiom from the paper's Figure 4 excerpt.
    """
    if total_threads <= 0 or block_size <= 0:
        raise GpuLaunchError("thread and block counts must be positive")
    return Dim3((total_threads - 1) // block_size + 1)
