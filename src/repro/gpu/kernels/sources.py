"""MiniC source code of the CUDA kernels used by the experiments.

Each kernel is written in the exact style of its real-world counterpart:
``scale_bias_kernel`` is the paper's Figure 4 excerpt, the stencils follow
the cuda4cpu evaluation kernels, and the YOLO layer kernels mirror
darknet's ``blas_kernels.cu``/``maxpool_layer_kernels.cu``.  The sources
are valid C, so the *same strings* can be fed to the fuzzy C++ analyzers
(Figure 4's checker findings) and to the MiniC runtime (Figure 6's
coverage measurements).
"""

from __future__ import annotations

#: 5-point Jacobi stencil over an H x W interior with boundary branches.
STENCIL2D_SOURCE = """
__global__ void stencil2d(float *out, float *in, int height, int width,
                          float factor) {
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  if (row >= height || col >= width) {
    return;
  }
  int center = row * width + col;
  if (row == 0 || row == height - 1 || col == 0 || col == width - 1) {
    out[center] = in[center];
    return;
  }
  float north = in[center - width];
  float south = in[center + width];
  float west = in[center - 1];
  float east = in[center + 1];
  out[center] = in[center]
      + factor * (north + south + west + east - 4.0f * in[center]);
}
"""

#: 7-point stencil over a D x H x W volume.
STENCIL3D_SOURCE = """
__global__ void stencil3d(float *out, float *in, int depth, int height,
                          int width, float factor) {
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  int plane = blockIdx.z * blockDim.z + threadIdx.z;
  if (plane >= depth || row >= height || col >= width) {
    return;
  }
  int center = (plane * height + row) * width + col;
  if (plane == 0 || plane == depth - 1 || row == 0 || row == height - 1
      || col == 0 || col == width - 1) {
    out[center] = in[center];
    return;
  }
  float sum = in[center - width * height] + in[center + width * height]
      + in[center - width] + in[center + width]
      + in[center - 1] + in[center + 1];
  out[center] = in[center] + factor * (sum - 6.0f * in[center]);
}
"""

#: The paper's Figure 4 kernel: scale each filter's outputs by its bias.
SCALE_BIAS_SOURCE = """
__global__ void scale_bias_kernel(float *output, float *biases, int n,
                                  int size) {
  int offset = blockIdx.x * blockDim.x + threadIdx.x;
  int filter = blockIdx.y;
  int batch = blockIdx.z;
  if (offset < size) {
    output[(batch * n + filter) * size + offset] *= biases[filter];
  }
}
"""

#: darknet-style bias addition.
ADD_BIAS_SOURCE = """
__global__ void add_bias_kernel(float *output, float *biases, int n,
                                int size) {
  int offset = blockIdx.x * blockDim.x + threadIdx.x;
  int filter = blockIdx.y;
  int batch = blockIdx.z;
  if (offset < size) {
    output[(batch * n + filter) * size + offset] += biases[filter];
  }
}
"""

#: Leaky-ReLU activation (YOLO's activation function).
LEAKY_ACTIVATE_SOURCE = """
__global__ void leaky_activate_kernel(float *x, int n) {
  int i = (blockIdx.y * gridDim.x + blockIdx.x) * blockDim.x + threadIdx.x;
  if (i < n) {
    float value = x[i];
    x[i] = value > 0.0f ? value : 0.1f * value;
  }
}
"""

#: Batch-normalization normalize step.
NORMALIZE_SOURCE = """
__global__ void normalize_kernel(float *x, float *mean, float *variance,
                                 int filters, int spatial, int n) {
  int index = (blockIdx.y * gridDim.x + blockIdx.x) * blockDim.x
      + threadIdx.x;
  if (index >= n) {
    return;
  }
  int f = (index / spatial) % filters;
  x[index] = (x[index] - mean[f]) / (sqrtf(variance[f]) + 0.000001f);
}
"""

#: Naive GEMM: one thread per output element, C = alpha*A*B + beta*C.
GEMM_NAIVE_SOURCE = """
__global__ void gemm_kernel(float *a, float *b, float *c, int m, int n,
                            int k, float alpha, float beta) {
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  if (row >= m || col >= n) {
    return;
  }
  float acc = 0.0f;
  for (int i = 0; i < k; i++) {
    acc += a[row * k + i] * b[i * n + col];
  }
  c[row * n + col] = alpha * acc + beta * c[row * n + col];
}
"""

#: darknet-style max-pooling with stride/size/padding branches.
MAXPOOL_SOURCE = """
__global__ void maxpool_kernel(float *output, float *input, int in_h,
                               int in_w, int channels, int size, int stride,
                               int pad, int out_h, int out_w) {
  int id = (blockIdx.y * gridDim.x + blockIdx.x) * blockDim.x + threadIdx.x;
  int total = out_h * out_w * channels;
  if (id >= total) {
    return;
  }
  int ow = id % out_w;
  int oh = (id / out_w) % out_h;
  int ch = id / (out_w * out_h);
  float best = -3.4e38f;
  for (int ky = 0; ky < size; ky++) {
    for (int kx = 0; kx < size; kx++) {
      int iy = oh * stride + ky - pad;
      int ix = ow * stride + kx - pad;
      if (iy >= 0 && iy < in_h && ix >= 0 && ix < in_w) {
        float value = input[(ch * in_h + iy) * in_w + ix];
        if (value > best) {
          best = value;
        }
      }
    }
  }
  output[id] = best;
}
"""

#: darknet's im2col: unfold convolution patches into a matrix.
IM2COL_SOURCE = """
__global__ void im2col_kernel(float *col, float *image, int channels,
                              int height, int width, int ksize, int stride,
                              int pad, int out_h, int out_w) {
  int index = (blockIdx.y * gridDim.x + blockIdx.x) * blockDim.x
      + threadIdx.x;
  int total = channels * ksize * ksize * out_h * out_w;
  if (index >= total) {
    return;
  }
  int ow = index % out_w;
  int oh = (index / out_w) % out_h;
  int kx = (index / (out_w * out_h)) % ksize;
  int ky = (index / (out_w * out_h * ksize)) % ksize;
  int ch = index / (out_w * out_h * ksize * ksize);
  int iy = oh * stride + ky - pad;
  int ix = ow * stride + kx - pad;
  float value = 0.0f;
  if (iy >= 0 && iy < height && ix >= 0 && ix < width) {
    value = image[(ch * height + iy) * width + ix];
  }
  int row = (ch * ksize + ky) * ksize + kx;
  col[(row * out_h + oh) * out_w + ow] = value;
}
"""

#: All runnable kernel sources, concatenated into one MiniC module.
ALL_KERNELS_SOURCE = "\n".join([
    STENCIL2D_SOURCE,
    STENCIL3D_SOURCE,
    SCALE_BIAS_SOURCE,
    ADD_BIAS_SOURCE,
    LEAKY_ACTIVATE_SOURCE,
    NORMALIZE_SOURCE,
    GEMM_NAIVE_SOURCE,
    MAXPOOL_SOURCE,
    IM2COL_SOURCE,
])

#: The paper's Figure 4 as printed: kernel plus the host-side wrapper with
#: its explicit cudaMalloc/launch discipline.  For static analysis only —
#: the wrapper uses the CUDA host API, which MiniC does not execute.
SCALE_BIAS_CUDA_EXCERPT = """
__global__ void scale_bias_kernel(float *output, float *biases, int n,
                                  int size) {
  int offset = blockIdx.x * blockDim.x + threadIdx.x;
  int filter = blockIdx.y;
  int batch = blockIdx.z;
  if (offset < size) {
    output[(batch * n + filter) * size + offset] *= biases[filter];
  }
}

void scale_bias_gpu(float *output, float *biases, int batch, int n,
                    int size) {
  dim3 dimGrid((size - 1) / BLOCK + 1, n, batch);
  dim3 dimBlock(BLOCK, 1, 1);
  float *d_output;
  float *d_biases;
  cudaMalloc((void **)&d_output, batch * n * size * sizeof(float));
  cudaMalloc((void **)&d_biases, n * sizeof(float));
  cudaMemcpy(d_output, output, batch * n * size * sizeof(float),
             cudaMemcpyHostToDevice);
  cudaMemcpy(d_biases, biases, n * sizeof(float), cudaMemcpyHostToDevice);
  scale_bias_kernel<<<dimGrid, dimBlock>>>(d_output, d_biases, n, size);
  cudaMemcpy(output, d_output, batch * n * size * sizeof(float),
             cudaMemcpyDeviceToHost);
  cudaFree(d_output);
  cudaFree(d_biases);
}
"""
