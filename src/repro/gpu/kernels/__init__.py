"""CUDA kernel sources and launch helpers."""

from . import linalg, sources, stencil, yolo_layers
from .sources import ALL_KERNELS_SOURCE, SCALE_BIAS_CUDA_EXCERPT

__all__ = [
    "ALL_KERNELS_SOURCE",
    "SCALE_BIAS_CUDA_EXCERPT",
    "linalg",
    "sources",
    "stencil",
    "yolo_layers",
]
