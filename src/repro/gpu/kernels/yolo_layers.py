"""YOLO layer kernels: launch helpers and numpy references.

These are the darknet-style primitives (scale_bias, add_bias, leaky
activation, batch-norm normalize, maxpool, im2col) that Apollo's camera
object detection executes on the GPU.  Tensors use darknet's NCHW layout
flattened row-major.
"""

from __future__ import annotations

import numpy as np

from ..dim3 import Dim3
from ..runtime import CudaRuntime, grid_for

#: darknet's BLOCK constant.
BLOCK = 32


def _nchw_dims(tensor: np.ndarray):
    if tensor.ndim != 4:
        raise ValueError(f"expected NCHW tensor, got {tensor.ndim}-D")
    batch, filters, height, width = tensor.shape
    return batch, filters, height * width


def scale_bias_reference(output: np.ndarray,
                         biases: np.ndarray) -> np.ndarray:
    """Per-filter scaling: NCHW tensor times per-channel scale."""
    return output * biases.reshape(1, -1, 1, 1)


def add_bias_reference(output: np.ndarray, biases: np.ndarray) -> np.ndarray:
    return output + biases.reshape(1, -1, 1, 1)


def leaky_reference(x: np.ndarray, slope: float = 0.1) -> np.ndarray:
    return np.where(x > 0, x, slope * x)


def normalize_reference(x: np.ndarray, mean: np.ndarray,
                        variance: np.ndarray) -> np.ndarray:
    mean = mean.reshape(1, -1, 1, 1)
    deviation = np.sqrt(variance.reshape(1, -1, 1, 1)) + 1e-6
    return (x - mean) / deviation


def _launch_per_filter(runtime: CudaRuntime, kernel: str,
                       tensor: np.ndarray, biases: np.ndarray) -> np.ndarray:
    batch, filters, size = _nchw_dims(tensor)
    if biases.shape != (filters,):
        raise ValueError(f"expected {filters} biases, got {biases.shape}")
    d_output = runtime.to_device(tensor.ravel())
    d_biases = runtime.to_device(biases.ravel())
    grid = Dim3((size - 1) // BLOCK + 1, filters, batch)
    runtime.launch(kernel, grid, Dim3(BLOCK),
                   [d_output, d_biases, filters, size])
    result = np.array(runtime.cuda_memcpy_dtoh(d_output)) \
        .reshape(tensor.shape)
    runtime.cuda_free(d_output)
    runtime.cuda_free(d_biases)
    return result


def launch_scale_bias(runtime: CudaRuntime, tensor: np.ndarray,
                      biases: np.ndarray) -> np.ndarray:
    """Run the paper's Figure 4 kernel on the emulated GPU."""
    return _launch_per_filter(runtime, "scale_bias_kernel", tensor, biases)


def launch_add_bias(runtime: CudaRuntime, tensor: np.ndarray,
                    biases: np.ndarray) -> np.ndarray:
    return _launch_per_filter(runtime, "add_bias_kernel", tensor, biases)


def launch_leaky(runtime: CudaRuntime, x: np.ndarray) -> np.ndarray:
    d_x = runtime.to_device(x.ravel())
    runtime.launch("leaky_activate_kernel", grid_for(x.size, BLOCK),
                   Dim3(BLOCK), [d_x, x.size])
    result = np.array(runtime.cuda_memcpy_dtoh(d_x)).reshape(x.shape)
    runtime.cuda_free(d_x)
    return result


def launch_normalize(runtime: CudaRuntime, x: np.ndarray, mean: np.ndarray,
                     variance: np.ndarray) -> np.ndarray:
    batch, filters, spatial = _nchw_dims(x)
    d_x = runtime.to_device(x.ravel())
    d_mean = runtime.to_device(mean.ravel())
    d_var = runtime.to_device(variance.ravel())
    total = x.size
    runtime.launch("normalize_kernel", grid_for(total, BLOCK), Dim3(BLOCK),
                   [d_x, d_mean, d_var, filters, spatial, total])
    result = np.array(runtime.cuda_memcpy_dtoh(d_x)).reshape(x.shape)
    for pointer in (d_x, d_mean, d_var):
        runtime.cuda_free(pointer)
    return result


def maxpool_reference(image: np.ndarray, size: int, stride: int,
                      pad: int) -> np.ndarray:
    """CHW max-pooling with darknet's padding semantics."""
    channels, in_h, in_w = image.shape
    out_h = (in_h + 2 * pad - size) // stride + 1
    out_w = (in_w + 2 * pad - size) // stride + 1
    out = np.full((channels, out_h, out_w), -3.4e38)
    for ch in range(channels):
        for oh in range(out_h):
            for ow in range(out_w):
                for ky in range(size):
                    for kx in range(size):
                        iy = oh * stride + ky - pad
                        ix = ow * stride + kx - pad
                        if 0 <= iy < in_h and 0 <= ix < in_w:
                            out[ch, oh, ow] = max(out[ch, oh, ow],
                                                  image[ch, iy, ix])
    return out


def launch_maxpool(runtime: CudaRuntime, image: np.ndarray, size: int,
                   stride: int, pad: int) -> np.ndarray:
    channels, in_h, in_w = image.shape
    out_h = (in_h + 2 * pad - size) // stride + 1
    out_w = (in_w + 2 * pad - size) // stride + 1
    total = channels * out_h * out_w
    d_in = runtime.to_device(image.ravel())
    d_out = runtime.to_device(np.zeros(total))
    runtime.launch("maxpool_kernel", grid_for(total, BLOCK), Dim3(BLOCK),
                   [d_out, d_in, in_h, in_w, channels, size, stride, pad,
                    out_h, out_w])
    result = np.array(runtime.cuda_memcpy_dtoh(d_out)) \
        .reshape(channels, out_h, out_w)
    runtime.cuda_free(d_in)
    runtime.cuda_free(d_out)
    return result


def im2col_reference(image: np.ndarray, ksize: int, stride: int,
                     pad: int) -> np.ndarray:
    """darknet's im2col: CHW image -> (C*K*K, OH*OW) patch matrix."""
    channels, height, width = image.shape
    out_h = (height + 2 * pad - ksize) // stride + 1
    out_w = (width + 2 * pad - ksize) // stride + 1
    col = np.zeros((channels * ksize * ksize, out_h * out_w))
    for ch in range(channels):
        for ky in range(ksize):
            for kx in range(ksize):
                row = (ch * ksize + ky) * ksize + kx
                for oh in range(out_h):
                    for ow in range(out_w):
                        iy = oh * stride + ky - pad
                        ix = ow * stride + kx - pad
                        if 0 <= iy < height and 0 <= ix < width:
                            col[row, oh * out_w + ow] = image[ch, iy, ix]
    return col


def launch_im2col(runtime: CudaRuntime, image: np.ndarray, ksize: int,
                  stride: int, pad: int) -> np.ndarray:
    channels, height, width = image.shape
    out_h = (height + 2 * pad - ksize) // stride + 1
    out_w = (width + 2 * pad - ksize) // stride + 1
    rows = channels * ksize * ksize
    total = rows * out_h * out_w
    d_image = runtime.to_device(image.ravel())
    d_col = runtime.to_device(np.zeros(total))
    runtime.launch("im2col_kernel", grid_for(total, BLOCK), Dim3(BLOCK),
                   [d_col, d_image, channels, height, width, ksize, stride,
                    pad, out_h, out_w])
    result = np.array(runtime.cuda_memcpy_dtoh(d_col)) \
        .reshape(rows, out_h * out_w)
    runtime.cuda_free(d_image)
    runtime.cuda_free(d_col)
    return result
