"""GEMM kernel: launch helper and numpy reference."""

from __future__ import annotations

import numpy as np

from ..dim3 import Dim3
from ..runtime import CudaRuntime


def gemm_reference(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                   alpha: float = 1.0, beta: float = 0.0) -> np.ndarray:
    """``alpha * A @ B + beta * C`` with shape validation."""
    if a.ndim != 2 or b.ndim != 2 or c.ndim != 2:
        raise ValueError("gemm operands must be 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    if c.shape != (a.shape[0], b.shape[1]):
        raise ValueError(f"output shape {c.shape} does not match "
                         f"{(a.shape[0], b.shape[1])}")
    return alpha * (a.astype(float) @ b.astype(float)) + beta * c


def launch_gemm(runtime: CudaRuntime, a: np.ndarray, b: np.ndarray,
                c: np.ndarray, alpha: float = 1.0, beta: float = 0.0,
                block: Dim3 = Dim3(8, 8)) -> np.ndarray:
    """Run the naive ``gemm_kernel`` on the emulated GPU."""
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    d_a = runtime.to_device(a.ravel())
    d_b = runtime.to_device(b.ravel())
    d_c = runtime.to_device(c.ravel())
    grid = Dim3((n - 1) // block.x + 1, (m - 1) // block.y + 1)
    runtime.launch("gemm_kernel", grid, block,
                   [d_a, d_b, d_c, m, n, k, alpha, beta])
    result = np.array(runtime.cuda_memcpy_dtoh(d_c)).reshape(m, n)
    for pointer in (d_a, d_b, d_c):
        runtime.cuda_free(pointer)
    return result
