"""Stencil kernels: launch helpers and numpy reference implementations.

The 2D and 3D stencils are the Figure 6 workloads ("we used cuda4cpu and
applied it to 2D and 3D stencil computation GPU kernels").  The numpy
twins exist so tests can verify the emulated GPU result bit-for-bit
(both paths compute in double precision on the host).
"""

from __future__ import annotations

import numpy as np

from ..dim3 import Dim3
from ..runtime import CudaRuntime


def stencil2d_reference(grid: np.ndarray, factor: float) -> np.ndarray:
    """5-point Jacobi step; boundary cells copied unchanged."""
    if grid.ndim != 2:
        raise ValueError(f"stencil2d expects a 2-D array, got {grid.ndim}-D")
    out = grid.astype(float).copy()
    interior = (grid[1:-1, 1:-1]
                + factor * (grid[:-2, 1:-1] + grid[2:, 1:-1]
                            + grid[1:-1, :-2] + grid[1:-1, 2:]
                            - 4.0 * grid[1:-1, 1:-1]))
    out[1:-1, 1:-1] = interior
    return out


def stencil3d_reference(volume: np.ndarray, factor: float) -> np.ndarray:
    """7-point stencil step; boundary cells copied unchanged."""
    if volume.ndim != 3:
        raise ValueError(f"stencil3d expects a 3-D array, got "
                         f"{volume.ndim}-D")
    out = volume.astype(float).copy()
    core = volume[1:-1, 1:-1, 1:-1]
    neighbours = (volume[:-2, 1:-1, 1:-1] + volume[2:, 1:-1, 1:-1]
                  + volume[1:-1, :-2, 1:-1] + volume[1:-1, 2:, 1:-1]
                  + volume[1:-1, 1:-1, :-2] + volume[1:-1, 1:-1, 2:])
    out[1:-1, 1:-1, 1:-1] = core + factor * (neighbours - 6.0 * core)
    return out


def launch_stencil2d(runtime: CudaRuntime, grid: np.ndarray, factor: float,
                     block: Dim3 = Dim3(8, 8)) -> np.ndarray:
    """Run the ``stencil2d`` kernel on the emulated GPU."""
    height, width = grid.shape
    d_in = runtime.to_device(grid.ravel())
    d_out = runtime.to_device(np.zeros(grid.size))
    launch_grid = Dim3((width - 1) // block.x + 1,
                       (height - 1) // block.y + 1)
    runtime.launch("stencil2d", launch_grid, block,
                   [d_out, d_in, height, width, factor])
    result = np.array(runtime.cuda_memcpy_dtoh(d_out)).reshape(grid.shape)
    runtime.cuda_free(d_in)
    runtime.cuda_free(d_out)
    return result


def launch_stencil3d(runtime: CudaRuntime, volume: np.ndarray,
                     factor: float, block: Dim3 = Dim3(4, 4, 4)
                     ) -> np.ndarray:
    """Run the ``stencil3d`` kernel on the emulated GPU."""
    depth, height, width = volume.shape
    d_in = runtime.to_device(volume.ravel())
    d_out = runtime.to_device(np.zeros(volume.size))
    launch_grid = Dim3((width - 1) // block.x + 1,
                       (height - 1) // block.y + 1,
                       (depth - 1) // block.z + 1)
    runtime.launch("stencil3d", launch_grid, block,
                   [d_out, d_in, depth, height, width, factor])
    result = np.array(runtime.cuda_memcpy_dtoh(d_out)).reshape(volume.shape)
    runtime.cuda_free(d_in)
    runtime.cuda_free(d_out)
    return result
