"""CUDA ``dim3`` launch-geometry type."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

from ..errors import GpuLaunchError

Dim3Like = Union["Dim3", int, Tuple[int, ...]]


@dataclass(frozen=True)
class Dim3:
    """A CUDA launch dimension triple; unspecified axes default to 1."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        for axis in (self.x, self.y, self.z):
            if not isinstance(axis, int) or axis < 1:
                raise GpuLaunchError(
                    f"dim3 axes must be positive integers, got {self}")

    @classmethod
    def of(cls, value: Dim3Like) -> "Dim3":
        """Coerce an int, tuple, or Dim3 into a Dim3 (CUDA-style)."""
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return cls(value)
        if isinstance(value, tuple):
            if not 1 <= len(value) <= 3:
                raise GpuLaunchError(
                    f"dim3 tuples take 1-3 elements, got {value!r}")
            return cls(*value)
        raise GpuLaunchError(f"cannot interpret {value!r} as dim3")

    @property
    def total(self) -> int:
        return self.x * self.y * self.z

    def indices(self) -> Iterator[Tuple[int, int, int]]:
        """All (x, y, z) index triples, x fastest — CUDA's thread order."""
        for z in range(self.z):
            for y in range(self.y):
                for x in range(self.x):
                    yield (x, y, z)

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.x, self.y, self.z)
