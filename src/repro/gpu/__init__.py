"""CUDA-on-CPU emulation (the cuda4cpu substitute)."""

from .dim3 import Dim3
from .memory import DeviceMemory, DevicePointer
from .runtime import MAX_EMULATED_THREADS, CudaRuntime, KernelLaunch, grid_for

__all__ = [
    "CudaRuntime",
    "DeviceMemory",
    "DevicePointer",
    "Dim3",
    "KernelLaunch",
    "MAX_EMULATED_THREADS",
    "grid_for",
]
