"""Branch/decision-coverage metric.

A *branch* is one outcome of a control-flow fork:

* every decision (if/while/for/do/ternary condition) contributes two
  branches, true and false;
* every ``case``/``default`` clause of a switch contributes one branch,
  covered when the clause body is entered.

This matches the branch counting of object-coverage tools such as
RapiCover, where a switch compiles to an n-way fork.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..lang.minic import ast
from .probes import CoverageCollector


@dataclass(frozen=True)
class BranchRecord:
    """One branch: its source line, description, and covered flag."""

    line: int
    description: str
    covered: bool


@dataclass(frozen=True)
class BranchCoverage:
    """Branch-coverage result for one program."""

    records: Tuple[BranchRecord, ...]

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def covered(self) -> int:
        return sum(1 for record in self.records if record.covered)

    @property
    def percent(self) -> float:
        if self.total == 0:
            return 100.0
        return 100.0 * self.covered / self.total

    @property
    def uncovered(self) -> Tuple[BranchRecord, ...]:
        return tuple(record for record in self.records if not record.covered)


def measure_branch_coverage(collector: CoverageCollector,
                            include_decisions: Optional[Set[int]] = None,
                            include_statements: Optional[Set[int]] = None
                            ) -> BranchCoverage:
    """Compute branch coverage from collected probe data.

    ``include_decisions``/``include_statements`` restrict the measured
    population (the uncalled-function exclusion of the paper).
    """
    program = collector.program
    records: List[BranchRecord] = []
    for decision in program.decisions:
        if include_decisions is not None \
                and decision.decision_id not in include_decisions:
            continue
        outcomes = collector.decision_outcomes[decision.decision_id]
        records.append(BranchRecord(
            line=decision.line,
            description="decision true",
            covered=True in outcomes))
        records.append(BranchRecord(
            line=decision.line,
            description="decision false",
            covered=False in outcomes))
    for statement in program.statements:
        if isinstance(statement, ast.SwitchCase):
            if include_statements is not None \
                    and statement.statement_id not in include_statements:
                continue
            hits = collector.statement_hits[statement.statement_id]
            label = ("default" if statement.value is None
                     else "case")
            records.append(BranchRecord(
                line=statement.line,
                description=f"switch {label} clause",
                covered=hits > 0))
    return BranchCoverage(records=tuple(records))
