"""MC/DC test-vector suggestion — closing the Figure 5 gap.

Observation 10's remediation is "additional test cases"; for MC/DC the
hard part is *which* condition combinations are still needed.  Given a
decision's boolean structure and the observations collected so far, this
module enumerates the missing independence pairs and proposes concrete
condition assignments a test engineer must realize, exactly what
qualified coverage tools emit as "MC/DC gaps".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..lang.minic import ast
from .mcdc import _condition_demonstrated
from .probes import CoverageCollector


def evaluate_decision(decision: ast.Decision,
                      assignment: Sequence[bool]) -> Tuple[bool, Tuple]:
    """Evaluate a decision for a full truth assignment of its conditions.

    Returns:
        (outcome, observed vector) where short-circuited positions of the
        vector are ``None`` — the exact record the probe would produce.
    """
    leaf_index = {id(leaf): position
                  for position, leaf in enumerate(decision.conditions)}
    observed: List[Optional[bool]] = [None] * len(decision.conditions)

    def walk(node: ast.Expression) -> bool:
        if isinstance(node, ast.Logical):
            left = walk(node.left)
            if node.operator == "&&":
                if not left:
                    return False
                return walk(node.right)
            if left:
                return True
            return walk(node.right)
        position = leaf_index[id(node)]
        value = bool(assignment[position])
        observed[position] = value
        return value

    outcome = walk(decision.expression)
    return outcome, tuple(observed)


@dataclass(frozen=True)
class IndependencePair:
    """Two assignments demonstrating one condition's independence."""

    condition_index: int
    first: Tuple[bool, ...]
    second: Tuple[bool, ...]


def independence_pairs(decision: ast.Decision) -> List[IndependencePair]:
    """All unique-cause-with-masking independence pairs of a decision.

    Exhaustive over the 2^n assignments; decisions are small (n <= ~8 in
    real code), so this is cheap.
    """
    n = decision.condition_count
    if n == 0:
        return []
    outcomes = {}
    for assignment in itertools.product((False, True), repeat=n):
        outcomes[assignment] = evaluate_decision(decision, assignment)
    pairs: List[IndependencePair] = []
    for index in range(n):
        for assignment, (outcome, vector) in outcomes.items():
            if vector[index] is None:
                continue
            flipped = list(assignment)
            flipped[index] = not flipped[index]
            flipped = tuple(flipped)
            other_outcome, other_vector = outcomes[flipped]
            if other_outcome == outcome or other_vector[index] is None:
                continue
            if _masking_match(vector, other_vector, index):
                if assignment < flipped:
                    pairs.append(IndependencePair(index, assignment,
                                                  flipped))
    return pairs


def _masking_match(first: Tuple, second: Tuple, index: int) -> bool:
    for position, (a, b) in enumerate(zip(first, second)):
        if position == index:
            continue
        if a is not None and b is not None and a != b:
            return False
    return True


@dataclass(frozen=True)
class McdcSuggestion:
    """A concrete gap-closing proposal for one condition."""

    decision_id: int
    line: int
    condition_index: int
    condition_count: int
    needed_assignments: Tuple[Tuple[bool, ...], ...]

    def describe(self) -> str:
        rendered = ", ".join(
            "(" + ", ".join("T" if value else "F"
                            for value in assignment) + ")"
            for assignment in self.needed_assignments)
        return (f"decision at line {self.line}: condition "
                f"{self.condition_index + 1}/{self.condition_count} "
                f"needs assignment(s) {rendered}")


def suggest_mcdc_vectors(collector: CoverageCollector,
                         variant: str = "masking"
                         ) -> List[McdcSuggestion]:
    """Propose condition assignments for every undemonstrated condition.

    For each decision condition lacking an independence pair in the
    observations, find a complete pair from the decision's truth table
    and report whichever of its two assignments have not been observed.
    """
    masking = variant == "masking"
    program = collector.program
    suggestions: List[McdcSuggestion] = []
    for decision in program.decisions:
        n = decision.condition_count
        observations = collector.condition_vectors[decision.decision_id]
        observed_vectors = {vector for _, vector in observations}
        if n == 1:
            outcomes = collector.decision_outcomes[decision.decision_id]
            missing = []
            if True not in outcomes:
                missing.append((True,))
            if False not in outcomes:
                missing.append((False,))
            if missing:
                suggestions.append(McdcSuggestion(
                    decision_id=decision.decision_id,
                    line=decision.line,
                    condition_index=0,
                    condition_count=1,
                    needed_assignments=tuple(missing)))
            continue
        pairs = independence_pairs(decision)
        for index in range(n):
            if _condition_demonstrated(observations, index, masking):
                continue
            candidates = [pair for pair in pairs
                          if pair.condition_index == index]
            if not candidates:
                continue  # structurally undemonstrable (e.g. a&&!a)
            best = min(candidates,
                       key=lambda pair: _missing_count(
                           decision, pair, observed_vectors))
            needed = tuple(
                assignment for assignment in (best.first, best.second)
                if evaluate_decision(decision, assignment)[1]
                not in observed_vectors)
            suggestions.append(McdcSuggestion(
                decision_id=decision.decision_id,
                line=decision.line,
                condition_index=index,
                condition_count=n,
                needed_assignments=needed or (best.first, best.second)))
    return suggestions


def _missing_count(decision, pair: IndependencePair,
                   observed_vectors) -> int:
    count = 0
    for assignment in (pair.first, pair.second):
        if evaluate_decision(decision, assignment)[1] \
                not in observed_vectors:
            count += 1
    return count
