"""Coverage reports: per-file records and Figure 5-style tables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .branch import BranchCoverage, measure_branch_coverage
from .mcdc import McdcCoverage, measure_mcdc_coverage
from .probes import CoverageCollector
from .statement import StatementCoverage, measure_statement_coverage


@dataclass(frozen=True)
class FileCoverage:
    """The three structural-coverage metrics for one source file.

    This is one X-axis entry of the paper's Figure 5 (CPU code) or
    Figure 6 (CUDA-on-CPU code, which reports statement and branch only).
    """

    filename: str
    statement: StatementCoverage
    branch: BranchCoverage
    mcdc: Optional[McdcCoverage] = None

    @property
    def statement_percent(self) -> float:
        return self.statement.percent

    @property
    def branch_percent(self) -> float:
        return self.branch.percent

    @property
    def mcdc_percent(self) -> Optional[float]:
        return self.mcdc.percent if self.mcdc is not None else None

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "file": self.filename,
            "statement": round(self.statement_percent, 1),
            "branch": round(self.branch_percent, 1),
        }
        if self.mcdc is not None:
            row["mcdc"] = round(self.mcdc.percent, 1)
        return row


def summarize_collector(collector: CoverageCollector, filename: str,
                        with_mcdc: bool = True,
                        mcdc_variant: str = "masking",
                        exclude_uncalled: bool = False) -> FileCoverage:
    """Compute all metrics for one collector.

    Args:
        collector: the probe observations.
        filename: report label.
        with_mcdc: also compute MC/DC (Figure 5 yes, Figure 6 no).
        mcdc_variant: ``"masking"`` or ``"unique-cause"``.
        exclude_uncalled: reproduce the paper's filtering — functions never
            entered do not count toward any metric.
    """
    include_statements = include_decisions = None
    if exclude_uncalled:
        from .instrument import exclusion_sets
        include_statements, include_decisions, _ = exclusion_sets(collector)
    return FileCoverage(
        filename=filename,
        statement=measure_statement_coverage(collector,
                                             include=include_statements),
        branch=measure_branch_coverage(
            collector, include_decisions=include_decisions,
            include_statements=include_statements),
        mcdc=(measure_mcdc_coverage(collector, mcdc_variant,
                                    include_decisions=include_decisions)
              if with_mcdc else None),
    )


@dataclass
class CoverageCampaign:
    """Coverage across several files — the full Figure 5 data set."""

    files: List[FileCoverage]

    def rows(self) -> List[Dict[str, object]]:
        return [record.as_row() for record in self.files]

    def _percents(self, metric: str) -> List[float]:
        values: List[float] = []
        for record in self.files:
            value = getattr(record, f"{metric}_percent")
            if value is not None:
                values.append(value)
        return values

    def average(self, metric: str) -> float:
        """Mean percentage over files, e.g. ``average("statement")``."""
        values = self._percents(metric)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def minimum(self, metric: str) -> float:
        values = self._percents(metric)
        return min(values) if values else 0.0

    def render(self) -> str:
        """Plain-text table, one line per file plus an average row."""
        has_mcdc = any(record.mcdc is not None for record in self.files)
        header = f"{'file':<32}{'stmt%':>8}{'branch%':>9}"
        if has_mcdc:
            header += f"{'mcdc%':>8}"
        lines = [header, "-" * len(header)]
        for record in self.files:
            line = (f"{record.filename:<32}"
                    f"{record.statement_percent:>8.1f}"
                    f"{record.branch_percent:>9.1f}")
            if has_mcdc:
                mcdc = record.mcdc_percent
                line += f"{mcdc:>8.1f}" if mcdc is not None else f"{'-':>8}"
            lines.append(line)
        footer = (f"{'AVERAGE':<32}{self.average('statement'):>8.1f}"
                  f"{self.average('branch'):>9.1f}")
        if has_mcdc:
            footer += f"{self.average('mcdc'):>8.1f}"
        lines.append("-" * len(header))
        lines.append(footer)
        return "\n".join(lines)


def build_campaign(records: Iterable[FileCoverage]) -> CoverageCampaign:
    """Bundle per-file coverage records into a campaign."""
    return CoverageCampaign(files=list(records))
