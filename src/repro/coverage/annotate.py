"""Annotated-source rendering of coverage results.

Produces the classic per-line coverage listing (gcov/RapiCover style):
hit counts in the left margin, ``####`` for executed-never lines, and
branch-gap markers, so a reviewer can see exactly which code the
real-scenario tests missed.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .branch import measure_branch_coverage
from .probes import CoverageCollector


def line_coverage_index(collector: CoverageCollector
                        ) -> Tuple[Dict[int, int], Set[int], Set[int]]:
    """Per-line coverage facts shared by every annotating surface.

    Returns ``(hits_by_line, instrumented, partial_branch_lines)``:
    the max statement hit count per line, the set of lines holding any
    instrumented statement, and the lines owning a partially covered
    branch.  Both the text annotator below and the HTML dashboard's
    coverage pages render from this one index.
    """
    hits_by_line: Dict[int, int] = {}
    instrumented: Set[int] = set()
    for statement, hits in zip(collector.program.statements,
                               collector.statement_hits):
        line = statement.line
        instrumented.add(line)
        hits_by_line[line] = max(hits_by_line.get(line, 0), hits)
    partial_branch_lines: Set[int] = {
        record.line
        for record in measure_branch_coverage(collector).records
        if not record.covered}
    return hits_by_line, instrumented, partial_branch_lines


def annotate_source(source: str, collector: CoverageCollector) -> str:
    """Render ``source`` with per-line coverage annotations.

    Margins:
        ``  12|`` — the line's most-executed statement ran 12 times;
        ``####|`` — the line holds statements that never ran;
        ``    |`` — no instrumented statement on this line;
    and a trailing ``  <- branch not fully covered`` marker on lines
    owning partially covered branches.
    """
    hits_by_line, instrumented, partial_branch_lines = \
        line_coverage_index(collector)

    rendered: List[str] = []
    for number, text in enumerate(source.split("\n"), start=1):
        if number in instrumented:
            hits = hits_by_line.get(number, 0)
            margin = f"{hits:>6}|" if hits > 0 else "  ####|"
        else:
            margin = "      |"
        suffix = ("  // <- branch not fully covered"
                  if number in partial_branch_lines else "")
        rendered.append(f"{margin} {text}{suffix}")
    return "\n".join(rendered)


def uncovered_summary(collector: CoverageCollector) -> str:
    """A compact list of what remains uncovered."""
    lines: List[str] = []
    dead_lines = sorted({
        statement.line
        for statement, hits in zip(collector.program.statements,
                                   collector.statement_hits)
        if hits == 0})
    if dead_lines:
        lines.append("never-executed statement lines: "
                     + ", ".join(str(line) for line in dead_lines))
    for record in measure_branch_coverage(collector).uncovered:
        lines.append(f"line {record.line}: {record.description} "
                     f"not taken")
    if not lines:
        return "full statement and branch coverage achieved"
    return "\n".join(lines)


def function_coverage_table(collector: CoverageCollector) -> str:
    """Per-function statement coverage, called functions first."""
    from .instrument import build_function_maps
    maps = build_function_maps(collector.program)
    rows = []
    for function_map in maps:
        total = len(function_map.statement_ids)
        covered = sum(1 for statement_id in function_map.statement_ids
                      if collector.statement_hits[statement_id] > 0)
        percent = 100.0 * covered / total if total else 100.0
        rows.append((percent, function_map.name, covered, total))
    rows.sort(key=lambda row: (-row[0], row[1]))
    lines = [f"{'function':<28}{'covered':>9}{'total':>7}{'stmt%':>8}",
             "-" * 52]
    for percent, name, covered, total in rows:
        lines.append(f"{name:<28}{covered:>9}{total:>7}{percent:>8.1f}")
    return "\n".join(lines)
