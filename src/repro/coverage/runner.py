"""Test-vector runner: executes MiniC test suites under coverage.

This is the reproduction's analogue of "we run several real-scenario tests
and use RapiCover to measure the object detection code coverage"
(Section 3.2): a :class:`TestVector` names an entry function and its
arguments; the :class:`CoverageRunner` executes every vector against an
instrumented interpreter and accumulates one collector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..lang.minic.interpreter import Interpreter, ThreadContext
from ..lang.minic.parser import parse_program
from ..obs import NULL_TRACER
from .probes import CoverageCollector
from .report import FileCoverage, summarize_collector


@dataclass
class TestVector:
    """One test case: entry function, arguments, optional expectation.

    (``__test__ = False`` keeps pytest from collecting this data class.)

    Attributes:
        function: name of the MiniC function to call.
        args: positional arguments (scalars, lists, ArrayValue views).
        expected: when not None, the runner checks the return value
            against it (exact for ints, 1e-6 relative for floats).
        thread_context: CUDA builtins for direct kernel invocation.
        name: label for failure messages.
    """

    __test__ = False

    function: str
    args: Sequence = ()
    expected: Optional[object] = None
    thread_context: Optional[ThreadContext] = None
    name: str = ""

    def label(self) -> str:
        return self.name or f"{self.function}{tuple(self.args)!r}"


@dataclass
class VectorOutcome:
    """Result of executing one test vector."""

    vector: TestVector
    value: object = None
    passed: bool = True
    error: str = ""


class CoverageRunner:
    """Runs test vectors over one MiniC program, accumulating coverage.

    Args:
        obs_tracer: optional :class:`~repro.obs.Tracer` (distinct from
            the coverage-probe tracer): every vector gets a
            ``run_vector`` span and counters for vectors run, failures,
            and interpreter steps.
    """

    def __init__(self, program_or_source, filename: str = "<memory>",
                 max_steps: int = 50_000_000, obs_tracer=None) -> None:
        if isinstance(program_or_source, str):
            self.program = parse_program(program_or_source, filename)
        else:
            self.program = program_or_source
            filename = self.program.filename
        self.filename = filename
        self.obs_tracer = obs_tracer if obs_tracer is not None \
            else NULL_TRACER
        self.collector = CoverageCollector(self.program)
        self.interpreter = Interpreter(
            self.program, tracer=self.collector, max_steps=max_steps,
            obs_metrics=(self.obs_tracer.metrics
                         if self.obs_tracer.enabled else None))
        self.outcomes: List[VectorOutcome] = []

    def run_vector(self, vector: TestVector) -> VectorOutcome:
        """Execute one vector; records coverage even when it fails."""
        metrics = self.obs_tracer.metrics
        outcome = VectorOutcome(vector=vector)
        with self.obs_tracer.span("run_vector",
                                  name=vector.label()) as span:
            metrics.counter("coverage.vectors_run").inc()
            try:
                outcome.value = self.interpreter.run(
                    vector.function, list(vector.args),
                    thread_context=vector.thread_context)
            except Exception as error:  # noqa: BLE001 - report, don't crash
                outcome.passed = False
                outcome.error = f"{type(error).__name__}: {error}"
            else:
                if vector.expected is not None:
                    outcome.passed = _matches(outcome.value,
                                              vector.expected)
                    if not outcome.passed:
                        outcome.error = (f"expected {vector.expected!r}, "
                                         f"got {outcome.value!r}")
            span.set("passed", int(outcome.passed))
            if not outcome.passed:
                metrics.counter("coverage.vector_failures").inc()
        self.outcomes.append(outcome)
        return outcome

    def run_suite(self, vectors: Iterable[TestVector]) -> List[VectorOutcome]:
        return [self.run_vector(vector) for vector in vectors]

    @property
    def failures(self) -> List[VectorOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.passed]

    def coverage(self, with_mcdc: bool = True,
                 mcdc_variant: str = "masking",
                 exclude_uncalled: bool = False) -> FileCoverage:
        """The accumulated coverage of everything run so far."""
        return summarize_collector(self.collector, self.filename,
                                   with_mcdc=with_mcdc,
                                   mcdc_variant=mcdc_variant,
                                   exclude_uncalled=exclude_uncalled)


def _matches(actual, expected) -> bool:
    if isinstance(expected, float) or isinstance(actual, float):
        try:
            actual_value = float(actual)
        except (TypeError, ValueError):
            return False
        scale = max(1.0, abs(float(expected)))
        return abs(actual_value - float(expected)) <= 1e-6 * scale
    return actual == expected
