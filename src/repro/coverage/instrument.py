"""Instrumentation maps: which statements/decisions belong to which function.

The probe ids are program-global; this module rebuilds the per-function
partition so reports can reproduce the paper's filtering ("we excluded all
those functions that were not called") — a function's statements and
decisions only count once the function has been entered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from ..lang.minic import ast
from .probes import CoverageCollector


def _walk_expression(node, decisions: List[ast.Decision]) -> None:
    if node is None:
        return
    if isinstance(node, ast.Conditional):
        decisions.append(node.condition)
        _walk_expression(node.condition.expression, decisions)
        _walk_expression(node.then_value, decisions)
        _walk_expression(node.else_value, decisions)
    elif isinstance(node, (ast.Unary,)):
        _walk_expression(node.operand, decisions)
    elif isinstance(node, (ast.Binary, ast.Logical)):
        _walk_expression(node.left, decisions)
        _walk_expression(node.right, decisions)
    elif isinstance(node, ast.Assignment):
        _walk_expression(node.target, decisions)
        _walk_expression(node.value, decisions)
    elif isinstance(node, ast.IncDec):
        _walk_expression(node.target, decisions)
    elif isinstance(node, ast.Call):
        for argument in node.arguments:
            _walk_expression(argument, decisions)
    elif isinstance(node, ast.Index):
        _walk_expression(node.base, decisions)
        _walk_expression(node.offset, decisions)
    elif isinstance(node, ast.Cast):
        _walk_expression(node.operand, decisions)


def _statement_expressions(statement):
    if isinstance(statement, ast.Declaration):
        yield statement.array_size
        yield statement.initializer
        for expression in statement.initializer_list or ():
            yield expression
    elif isinstance(statement, ast.ExpressionStatement):
        yield statement.expression
    elif isinstance(statement, ast.If):
        yield statement.condition.expression
    elif isinstance(statement, (ast.While, ast.DoWhile)):
        yield statement.condition.expression
    elif isinstance(statement, ast.For):
        if statement.condition is not None:
            yield statement.condition.expression
        yield statement.increment
    elif isinstance(statement, ast.Switch):
        yield statement.subject
        for case in statement.cases:
            yield case.value
    elif isinstance(statement, ast.Return):
        yield statement.value


@dataclass(frozen=True)
class FunctionMap:
    """Statement and decision ids owned by one function."""

    name: str
    statement_ids: frozenset
    decision_ids: frozenset


def build_function_maps(program: ast.Program) -> List[FunctionMap]:
    """Partition the program's probe ids by owning function."""
    maps: List[FunctionMap] = []
    for function in program.functions:
        statements = ast.iter_statements(function.body)
        statement_ids: Set[int] = set()
        decisions: List[ast.Decision] = []
        for statement in statements:
            if statement.statement_id >= 0:
                statement_ids.add(statement.statement_id)
            if isinstance(statement, ast.If):
                decisions.append(statement.condition)
            elif isinstance(statement, (ast.While, ast.DoWhile)):
                decisions.append(statement.condition)
            elif isinstance(statement, ast.For) \
                    and statement.condition is not None:
                decisions.append(statement.condition)
            if isinstance(statement, ast.Switch):
                for case in statement.cases:
                    if case.statement_id >= 0:
                        statement_ids.add(case.statement_id)
            for expression in _statement_expressions(statement):
                _walk_expression(expression, decisions)
        maps.append(FunctionMap(
            name=function.name,
            statement_ids=frozenset(statement_ids),
            decision_ids=frozenset(decision.decision_id
                                   for decision in decisions
                                   if decision.decision_id >= 0),
        ))
    return maps


def called_functions(collector: CoverageCollector,
                     maps: List[FunctionMap]) -> List[FunctionMap]:
    """Functions whose body executed at least one statement."""
    return [function_map for function_map in maps
            if any(collector.statement_hits[statement_id] > 0
                   for statement_id in function_map.statement_ids)]


def exclusion_sets(collector: CoverageCollector
                   ) -> Tuple[Set[int], Set[int], List[str]]:
    """The paper's uncalled-function exclusion.

    Returns:
        (included statement ids, included decision ids, excluded function
        names).
    """
    maps = build_function_maps(collector.program)
    called = called_functions(collector, maps)
    called_names = {function_map.name for function_map in called}
    include_statements: Set[int] = set()
    include_decisions: Set[int] = set()
    for function_map in called:
        include_statements |= function_map.statement_ids
        include_decisions |= function_map.decision_ids
    excluded = [function_map.name for function_map in maps
                if function_map.name not in called_names]
    return include_statements, include_decisions, excluded
