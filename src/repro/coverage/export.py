"""Coverage export in LCOV tracefile format.

Makes the reproduction's coverage data consumable by standard tooling
(``genhtml``, IDE coverage gutters): statements map to LCOV ``DA`` line
records, decisions and switch clauses to ``BRDA`` branch records, and
functions to ``FN``/``FNDA`` records.
"""

from __future__ import annotations

from typing import Dict, List

from ..lang.minic import ast
from .instrument import build_function_maps
from .probes import CoverageCollector


def to_lcov(collector: CoverageCollector, source_path: str,
            test_name: str = "repro") -> str:
    """Serialize one collector as an LCOV tracefile section."""
    program = collector.program
    lines: List[str] = [f"TN:{test_name}", f"SF:{source_path}"]

    # FN/FNDA — functions with their entry line and hit count.
    maps = build_function_maps(program)
    functions_by_name = {function.name: function
                         for function in program.functions}
    hit_functions = 0
    for function_map in maps:
        function = functions_by_name[function_map.name]
        lines.append(f"FN:{function.line},{function.name}")
    for function_map in maps:
        function = functions_by_name[function_map.name]
        hits = max((collector.statement_hits[statement_id]
                    for statement_id in function_map.statement_ids),
                   default=0)
        if hits > 0:
            hit_functions += 1
        lines.append(f"FNDA:{hits},{function.name}")
    lines.append(f"FNF:{len(maps)}")
    lines.append(f"FNH:{hit_functions}")

    # BRDA — decision outcomes and switch clauses.
    branches_found = 0
    branches_hit = 0
    for decision in program.decisions:
        outcomes = collector.decision_outcomes[decision.decision_id]
        for branch_index, outcome in enumerate((True, False)):
            taken = "1" if outcome in outcomes else "-"
            lines.append(f"BRDA:{decision.line},0,"
                         f"{decision.decision_id * 2 + branch_index},"
                         f"{taken}")
            branches_found += 1
            if outcome in outcomes:
                branches_hit += 1
    for statement in program.statements:
        if isinstance(statement, ast.SwitchCase):
            hits = collector.statement_hits[statement.statement_id]
            taken = str(hits) if hits > 0 else "-"
            lines.append(f"BRDA:{statement.line},1,"
                         f"{statement.statement_id},{taken}")
            branches_found += 1
            if hits > 0:
                branches_hit += 1
    lines.append(f"BRF:{branches_found}")
    lines.append(f"BRH:{branches_hit}")

    # DA — line execution counts (max over a line's statements).
    per_line: Dict[int, int] = {}
    for statement, hits in zip(program.statements,
                               collector.statement_hits):
        per_line[statement.line] = max(per_line.get(statement.line, 0),
                                       hits)
    for line, hits in sorted(per_line.items()):
        lines.append(f"DA:{line},{hits}")
    lines.append(f"LF:{len(per_line)}")
    lines.append(f"LH:{sum(1 for hits in per_line.values() if hits > 0)}")
    lines.append("end_of_record")
    return "\n".join(lines) + "\n"


def write_lcov(collectors: Dict[str, CoverageCollector],
               output_path: str, test_name: str = "repro") -> None:
    """Write several files' coverage into one tracefile."""
    with open(output_path, "w", encoding="utf-8") as handle:
        for source_path, collector in sorted(collectors.items()):
            handle.write(to_lcov(collector, source_path, test_name))
