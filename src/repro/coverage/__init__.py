"""Structural-coverage engine: statement, branch, and MC/DC."""

from .annotate import (
    annotate_source,
    function_coverage_table,
    uncovered_summary,
)
from .branch import BranchCoverage, BranchRecord, measure_branch_coverage
from .mcdc import ConditionRecord, McdcCoverage, measure_mcdc_coverage
from .probes import CoverageCollector
from .report import (
    CoverageCampaign,
    FileCoverage,
    build_campaign,
    summarize_collector,
)
from .suggest import (
    IndependencePair,
    McdcSuggestion,
    evaluate_decision,
    independence_pairs,
    suggest_mcdc_vectors,
)
from .export import to_lcov, write_lcov
from .instrument import build_function_maps, exclusion_sets
from .runner import CoverageRunner, TestVector, VectorOutcome
from .statement import StatementCoverage, measure_statement_coverage

__all__ = [
    "IndependencePair",
    "McdcSuggestion",
    "annotate_source",
    "build_function_maps",
    "evaluate_decision",
    "exclusion_sets",
    "function_coverage_table",
    "independence_pairs",
    "suggest_mcdc_vectors",
    "to_lcov",
    "write_lcov",
    "uncovered_summary",
    "BranchCoverage",
    "BranchRecord",
    "ConditionRecord",
    "CoverageCampaign",
    "CoverageCollector",
    "CoverageRunner",
    "FileCoverage",
    "McdcCoverage",
    "StatementCoverage",
    "TestVector",
    "VectorOutcome",
    "build_campaign",
    "measure_branch_coverage",
    "measure_mcdc_coverage",
    "measure_statement_coverage",
    "summarize_collector",
]
