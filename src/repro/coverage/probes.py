"""Coverage probes: the collector that listens to interpreter events.

The :class:`CoverageCollector` implements the MiniC
:class:`~repro.lang.minic.interpreter.Tracer` interface and accumulates raw
observations:

* per-statement hit counts;
* per-decision outcome sets;
* per-decision condition-vector observations (for MC/DC).

The collector is deliberately dumb — metric computation lives in
:mod:`repro.coverage.statement`, :mod:`repro.coverage.branch` and
:mod:`repro.coverage.mcdc` so each metric is independently testable.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import CoverageError
from ..lang.minic import ast
from ..lang.minic.interpreter import Tracer


class CoverageCollector(Tracer):
    """Accumulates probe events for one instrumented program."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.statement_hits: List[int] = [0] * program.statement_count
        self.decision_outcomes: List[Set[bool]] = [
            set() for _ in range(program.decision_count)]
        self.condition_vectors: List[Set[Tuple]] = [
            set() for _ in range(program.decision_count)]
        self.evaluations = 0

    # ------------------------------------------------------------------
    # Tracer interface

    def on_statement(self, statement_id: int) -> None:
        if not 0 <= statement_id < len(self.statement_hits):
            raise CoverageError(
                f"statement id {statement_id} out of range "
                f"(program has {len(self.statement_hits)} statements)")
        self.statement_hits[statement_id] += 1

    def on_decision(self, decision_id: int, outcome: bool,
                    vector: Tuple) -> None:
        if not 0 <= decision_id < len(self.decision_outcomes):
            raise CoverageError(
                f"decision id {decision_id} out of range "
                f"(program has {len(self.decision_outcomes)} decisions)")
        expected = self.program.decisions[decision_id].condition_count
        if len(vector) != expected:
            raise CoverageError(
                f"decision {decision_id} expects {expected} conditions, "
                f"probe delivered {len(vector)}")
        self.decision_outcomes[decision_id].add(outcome)
        self.condition_vectors[decision_id].add((outcome, vector))
        self.evaluations += 1

    # ------------------------------------------------------------------
    # convenience views

    @property
    def executed_statements(self) -> int:
        return sum(1 for hits in self.statement_hits if hits > 0)

    def merge(self, other: "CoverageCollector") -> None:
        """Fold the observations of another run of the *same* program."""
        if other.program is not self.program:
            raise CoverageError(
                "cannot merge collectors for different programs")
        for index, hits in enumerate(other.statement_hits):
            self.statement_hits[index] += hits
        for index, outcomes in enumerate(other.decision_outcomes):
            self.decision_outcomes[index] |= outcomes
        for index, vectors in enumerate(other.condition_vectors):
            self.condition_vectors[index] |= vectors
        self.evaluations += other.evaluations

    def hits_by_line(self) -> Dict[int, int]:
        """Line -> hit count, for annotated-source rendering."""
        lines: Dict[int, int] = {}
        for statement, hits in zip(self.program.statements,
                                   self.statement_hits):
            line = statement.line
            lines[line] = max(lines.get(line, 0), hits)
        return lines
