"""Modified Condition/Decision Coverage (MC/DC).

For each decision, every atomic condition must be shown to independently
affect the decision outcome: there must exist two evaluations whose
outcomes differ, where the condition under test differs, and the other
conditions are held constant.

Two variants are implemented (the DESIGN.md ablation pair):

* **masking MC/DC** (default): a short-circuited condition (recorded as
  ``None``) is treated as matching anything, following the CAST-6/DO-248
  masking interpretation — the practical variant for short-circuit C;
* **unique-cause MC/DC**: the strict variant requiring the other
  conditions to be *identical* (``None`` only matches ``None``).

Decisions with a single condition degrade to requiring both outcomes,
which equals branch coverage for that decision.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from .probes import CoverageCollector


@dataclass(frozen=True)
class ConditionRecord:
    """MC/DC status of one atomic condition of one decision."""

    decision_id: int
    condition_index: int
    line: int
    demonstrated: bool


@dataclass(frozen=True)
class McdcCoverage:
    """MC/DC result for one program."""

    records: Tuple[ConditionRecord, ...]
    variant: str

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def covered(self) -> int:
        return sum(1 for record in self.records if record.demonstrated)

    @property
    def percent(self) -> float:
        if self.total == 0:
            return 100.0
        return 100.0 * self.covered / self.total

    @property
    def undemonstrated(self) -> Tuple[ConditionRecord, ...]:
        return tuple(record for record in self.records
                     if not record.demonstrated)


def _others_match(first: Sequence, second: Sequence, index: int,
                  masking: bool) -> bool:
    for position, (a, b) in enumerate(zip(first, second)):
        if position == index:
            continue
        if masking:
            if a is not None and b is not None and a != b:
                return False
        else:
            if a != b:
                return False
    return True


def _condition_demonstrated(observations: Set[Tuple], index: int,
                            masking: bool) -> bool:
    """True when an independence pair exists for condition ``index``."""
    interesting = [(outcome, vector) for outcome, vector in observations
                   if vector[index] is not None]
    for (outcome_a, vector_a), (outcome_b, vector_b) in \
            itertools.combinations(interesting, 2):
        if outcome_a == outcome_b:
            continue
        if vector_a[index] == vector_b[index]:
            continue
        if _others_match(vector_a, vector_b, index, masking):
            return True
    return False


def measure_mcdc_coverage(collector: CoverageCollector,
                          variant: str = "masking",
                          include_decisions: Optional[Set[int]] = None
                          ) -> McdcCoverage:
    """Compute MC/DC from collected probe data.

    Args:
        collector: probe observations.
        variant: ``"masking"`` (default) or ``"unique-cause"``.
        include_decisions: restrict to these decision ids (uncalled-
            function exclusion).
    """
    if variant not in ("masking", "unique-cause"):
        raise ValueError(f"unknown MC/DC variant {variant!r}")
    masking = variant == "masking"
    program = collector.program
    records: List[ConditionRecord] = []
    for decision in program.decisions:
        if include_decisions is not None \
                and decision.decision_id not in include_decisions:
            continue
        observations = collector.condition_vectors[decision.decision_id]
        if decision.condition_count == 1:
            outcomes = collector.decision_outcomes[decision.decision_id]
            records.append(ConditionRecord(
                decision_id=decision.decision_id,
                condition_index=0,
                line=decision.line,
                demonstrated=(True in outcomes and False in outcomes)))
            continue
        for index in range(decision.condition_count):
            records.append(ConditionRecord(
                decision_id=decision.decision_id,
                condition_index=index,
                line=decision.line,
                demonstrated=_condition_demonstrated(observations, index,
                                                     masking)))
    return McdcCoverage(records=tuple(records), variant=variant)
