"""Statement-coverage metric."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from .probes import CoverageCollector


@dataclass(frozen=True)
class StatementCoverage:
    """Statement-coverage result for one program.

    Attributes:
        total: number of instrumented statements.
        covered: statements executed at least once.
        uncovered_lines: source lines owning never-executed statements.
    """

    total: int
    covered: int
    uncovered_lines: tuple

    @property
    def percent(self) -> float:
        """Coverage percentage in [0, 100]; 100 for an empty program."""
        if self.total == 0:
            return 100.0
        return 100.0 * self.covered / self.total


def measure_statement_coverage(collector: CoverageCollector,
                               include: Optional[Set[int]] = None
                               ) -> StatementCoverage:
    """Compute statement coverage from collected probe data.

    Args:
        collector: the probe observations.
        include: when given, only statement ids in this set are counted —
            used to reproduce the paper's "we excluded all those functions
            that were not called" filtering.
    """
    program = collector.program
    total = 0
    covered = 0
    uncovered_lines = set()
    for statement, hits in zip(program.statements, collector.statement_hits):
        if include is not None and statement.statement_id not in include:
            continue
        total += 1
        if hits > 0:
            covered += 1
        else:
            uncovered_lines.add(statement.line)
    return StatementCoverage(total=total, covered=covered,
                             uncovered_lines=tuple(sorted(uncovered_lines)))
