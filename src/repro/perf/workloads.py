"""Named benchmark workloads for the Figure 8 sweeps.

Figure 8a compares GEMM kernels "widely used in YOLO" plus DeepBench-style
shapes from other domains; Figure 8b compares convolution kernels "for a
variety of domains".  The shapes below are the standard public benchmark
shapes for those domains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..dnn.layers import ConvShape, GemmShape


@dataclass(frozen=True)
class NamedGemm:
    """A labelled GEMM workload."""

    label: str
    domain: str
    shape: GemmShape


@dataclass(frozen=True)
class NamedConv:
    """A labelled convolution workload."""

    label: str
    domain: str
    shape: ConvShape


#: GEMM shapes: YOLO's im2col GEMMs plus DeepBench speech/NLP shapes.
GEMM_WORKLOADS: List[NamedGemm] = [
    NamedGemm("yolo-conv2", "vision",
              GemmShape(m=64, n=46208, k=288)),
    NamedGemm("yolo-conv5", "vision",
              GemmShape(m=256, n=2888, k=1152)),
    NamedGemm("yolo-conv8", "vision",
              GemmShape(m=1024, n=169, k=4608)),
    NamedGemm("deepbench-train-0", "speech",
              GemmShape(m=1760, n=128, k=1760)),
    NamedGemm("deepbench-train-1", "speech",
              GemmShape(m=2560, n=64, k=2560)),
    NamedGemm("deepbench-infer-0", "speech",
              GemmShape(m=5124, n=700, k=2048)),
    NamedGemm("deepbench-infer-1", "nlp",
              GemmShape(m=3072, n=3000, k=1024)),
    NamedGemm("square-1024", "hpc", GemmShape(m=1024, n=1024, k=1024)),
    NamedGemm("square-4096", "hpc", GemmShape(m=4096, n=4096, k=4096)),
    NamedGemm("skinny-rank64", "hpc", GemmShape(m=4096, n=4096, k=64)),
]

#: Convolution shapes: classification, detection, and segmentation layers.
CONV_WORKLOADS: List[NamedConv] = [
    NamedConv("alexnet-conv2", "classification",
              ConvShape(batch=16, in_channels=96, out_channels=256,
                        in_h=27, in_w=27, ksize=5, stride=1, pad=2)),
    NamedConv("vgg-conv3.1", "classification",
              ConvShape(batch=16, in_channels=128, out_channels=256,
                        in_h=56, in_w=56, ksize=3, stride=1, pad=1)),
    NamedConv("resnet-conv4x", "classification",
              ConvShape(batch=16, in_channels=256, out_channels=256,
                        in_h=14, in_w=14, ksize=3, stride=1, pad=1)),
    NamedConv("yolo-conv1", "detection",
              ConvShape(batch=1, in_channels=3, out_channels=16,
                        in_h=416, in_w=416, ksize=3, stride=1, pad=1)),
    NamedConv("yolo-conv4", "detection",
              ConvShape(batch=1, in_channels=64, out_channels=128,
                        in_h=52, in_w=52, ksize=3, stride=1, pad=1)),
    NamedConv("yolo-conv7", "detection",
              ConvShape(batch=1, in_channels=512, out_channels=1024,
                        in_h=13, in_w=13, ksize=3, stride=1, pad=1)),
    NamedConv("segnet-encoder3", "segmentation",
              ConvShape(batch=4, in_channels=121, out_channels=243,
                        in_h=60, in_w=80, ksize=3, stride=1, pad=1)),
    NamedConv("speech-conv1", "speech",
              ConvShape(batch=8, in_channels=1, out_channels=32,
                        in_h=161, in_w=700, ksize=5, stride=2, pad=0)),
]
