"""The roofline + efficiency-curve performance model.

A workload (GEMM or convolution) has a FLOP count and a minimum DRAM
traffic; a device has a compute roof and a bandwidth roof; a *library*
contributes a shape-dependent efficiency in (0, 1] for each roof.  The
predicted kernel time is::

    time = max(flops / (peak * compute_eff),
               bytes / (bandwidth * memory_eff)) + launch_overhead

Libraries differ only in their efficiency curves, which is exactly the
empirical structure behind Figures 7/8: CUTLASS tracks cuBLAS within
±20% depending on shape, ISAAC's input-aware auto-tuning recovers the
shapes cuDNN's fixed heuristics lose, and CPU BLAS sits on a device whose
roofs are two orders of magnitude lower.

Per-shape variability is modeled with a *deterministic* hash-based jitter,
so every run of every benchmark reproduces identical numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Union

from ..dnn.layers import ConvShape, GemmShape
from ..errors import PerfModelError
from .device import DeviceSpec

Workload = Union[GemmShape, ConvShape]


def stable_jitter(key: str, low: float, high: float) -> float:
    """A deterministic pseudo-random factor in [low, high] for ``key``.

    Derived from MD5 so it is stable across processes and Python versions
    (``hash()`` is salted; this must not be).
    """
    if low > high:
        raise PerfModelError(f"empty jitter range [{low}, {high}]")
    digest = hashlib.md5(key.encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return low + (high - low) * fraction


@dataclass(frozen=True)
class Prediction:
    """A predicted kernel execution."""

    library: str
    device: str
    seconds: float
    flops: int
    achieved_flops: float

    @property
    def efficiency_of_peak(self) -> float:
        return self.achieved_flops


def predict_time(device: DeviceSpec, flops: int, bytes_moved: int,
                 compute_efficiency: float,
                 memory_efficiency: float = 0.75,
                 calls: int = 1) -> float:
    """Roofline time for one kernel (seconds)."""
    if not 0.0 < compute_efficiency <= 1.0:
        raise PerfModelError(
            f"compute efficiency must be in (0, 1], got "
            f"{compute_efficiency}")
    if not 0.0 < memory_efficiency <= 1.0:
        raise PerfModelError(
            f"memory efficiency must be in (0, 1], got {memory_efficiency}")
    compute_time = flops / (device.peak_flops * compute_efficiency)
    memory_time = bytes_moved / (device.memory_bandwidth * memory_efficiency)
    return max(compute_time, memory_time) + calls * device.launch_overhead_s


def occupancy_factor(parallel_work: int, saturation: float = 20000.0
                     ) -> float:
    """How much of the device a workload can occupy, in (0, 1].

    Small problems cannot fill a GPU: efficiency ramps with the number of
    independent output elements and saturates once tens of thousands of
    threads exist.  CPUs saturate three orders of magnitude earlier.
    """
    if parallel_work <= 0:
        raise PerfModelError("parallel work must be positive")
    return parallel_work / (parallel_work + saturation)
