"""Figure 7: Apollo's object detection under open- vs closed-source libraries.

The case study prices YOLO-lite's convolution workloads (the module's
dominant compute) under six implementations:

* ``cuBLAS`` — the im2col+GEMM baseline path;
* ``cuDNN`` — the direct-convolution baseline path;
* ``CUTLASS`` — open-source replacement for the cuBLAS path;
* ``ISAAC`` — open-source replacement for the cuDNN path;
* ``ATLAS`` / ``OpenBLAS`` — the CPU fallback, "two orders of magnitude
  higher execution time".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..dnn.network import Network
from ..dnn.yolo import YoloConfig, build_yolo_lite
from .device import DeviceSpec
from .libraries import (
    AtlasModel,
    CuBlasModel,
    CuDnnModel,
    CutlassModel,
    IsaacModel,
    LibraryModel,
    OpenBlasModel,
)


@dataclass(frozen=True)
class DetectionResult:
    """One Figure 7 bar: an implementation's predicted detection time."""

    implementation: str
    open_source: bool
    device: str
    seconds_per_frame: float

    @property
    def fps(self) -> float:
        return 1.0 / self.seconds_per_frame


def detection_time(library: LibraryModel, network: Network) -> float:
    """Total conv time of one forward pass under ``library``."""
    total = 0.0
    for workload in network.conv_workloads():
        total += library.conv_time(workload.conv)
    return total


def run_case_study(config: Optional[YoloConfig] = None,
                   device: Optional[DeviceSpec] = None
                   ) -> List[DetectionResult]:
    """The Figure 7 experiment on the standard YOLO-lite network."""
    network = build_yolo_lite(config or YoloConfig())
    libraries: List[LibraryModel] = [
        CuBlasModel(device), CuDnnModel(device),
        CutlassModel(device), IsaacModel(device),
        AtlasModel(), OpenBlasModel(),
    ]
    results: List[DetectionResult] = []
    for library in libraries:
        results.append(DetectionResult(
            implementation=library.name,
            open_source=library.open_source,
            device=library.device.name,
            seconds_per_frame=detection_time(library, network),
        ))
    return results


def relative_to_baseline(results: List[DetectionResult]
                         ) -> Dict[str, float]:
    """Each implementation's time relative to the *fastest closed* library.

    Figure 7 normalizes against the cuBLAS/cuDNN baseline; >1.0 means
    slower than the baseline.
    """
    by_name = {result.implementation: result for result in results}
    closed = [result for result in results
              if result.implementation in ("cuBLAS", "cuDNN")]
    if not closed:
        raise ValueError("case study must include a closed-source baseline")
    baseline = min(result.seconds_per_frame for result in closed)
    return {name: result.seconds_per_frame / baseline
            for name, result in by_name.items()}


def render_case_study(results: List[DetectionResult]) -> str:
    """Plain-text Figure 7."""
    relatives = relative_to_baseline(results)
    lines = [f"{'implementation':<16}{'source':<9}{'device':<32}"
             f"{'ms/frame':>10}{'rel.':>8}",
             "-" * 75]
    for result in results:
        lines.append(
            f"{result.implementation:<16}"
            f"{'open' if result.open_source else 'closed':<9}"
            f"{result.device:<32}"
            f"{1000 * result.seconds_per_frame:>10.2f}"
            f"{relatives[result.implementation]:>8.2f}")
    return "\n".join(lines)
