"""Figure 8a: relative GEMM performance, CUTLASS vs cuBLAS."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .device import DeviceSpec
from .libraries import CuBlasModel, CutlassModel
from .workloads import GEMM_WORKLOADS, NamedGemm


@dataclass(frozen=True)
class GemmComparison:
    """One Figure 8a bar: a workload and the two libraries' numbers."""

    label: str
    domain: str
    cublas_gflops: float
    cutlass_gflops: float

    @property
    def relative(self) -> float:
        """CUTLASS performance relative to cuBLAS (1.0 = parity)."""
        return self.cutlass_gflops / self.cublas_gflops


def compare_gemm(workloads: Optional[List[NamedGemm]] = None,
                 device: Optional[DeviceSpec] = None
                 ) -> List[GemmComparison]:
    """Run the Figure 8a sweep; deterministic for a fixed device."""
    workloads = workloads if workloads is not None else GEMM_WORKLOADS
    cublas = CuBlasModel(device)
    cutlass = CutlassModel(device)
    rows: List[GemmComparison] = []
    for workload in workloads:
        rows.append(GemmComparison(
            label=workload.label,
            domain=workload.domain,
            cublas_gflops=cublas.gemm_gflops(workload.shape),
            cutlass_gflops=cutlass.gemm_gflops(workload.shape),
        ))
    return rows


def render_gemm_table(rows: List[GemmComparison]) -> str:
    """Plain-text Figure 8a."""
    lines = [f"{'workload':<20}{'domain':<16}{'cuBLAS':>10}{'CUTLASS':>10}"
             f"{'relative':>10}",
             "-" * 66]
    for row in rows:
        lines.append(f"{row.label:<20}{row.domain:<16}"
                     f"{row.cublas_gflops:>10.0f}"
                     f"{row.cutlass_gflops:>10.0f}"
                     f"{row.relative:>10.2f}")
    mean = sum(row.relative for row in rows) / len(rows) if rows else 0.0
    lines.append("-" * 66)
    lines.append(f"{'GEOMEAN-ish (arith mean of ratios)':<52}{mean:>10.2f}")
    return "\n".join(lines)
