"""Calibrated roofline performance models for the Figure 7/8 case studies."""

from .conv import ConvComparison, compare_conv, render_conv_table
from .detection import (
    DetectionResult,
    detection_time,
    relative_to_baseline,
    render_case_study,
    run_case_study,
)
from .device import DEVICES, DRIVE_PX2, TITAN_XP, XEON_CPU, DeviceSpec
from .gemm import GemmComparison, compare_gemm, render_gemm_table
from .libraries import (
    AtlasModel,
    CuBlasModel,
    CuDnnModel,
    CutlassModel,
    IsaacModel,
    LibraryModel,
    OpenBlasModel,
)
from .model import Prediction, occupancy_factor, predict_time, stable_jitter
from .workloads import CONV_WORKLOADS, GEMM_WORKLOADS, NamedConv, NamedGemm

__all__ = [
    "AtlasModel",
    "CONV_WORKLOADS",
    "ConvComparison",
    "CuBlasModel",
    "CuDnnModel",
    "CutlassModel",
    "DEVICES",
    "DRIVE_PX2",
    "DetectionResult",
    "DeviceSpec",
    "GEMM_WORKLOADS",
    "GemmComparison",
    "IsaacModel",
    "LibraryModel",
    "NamedConv",
    "NamedGemm",
    "OpenBlasModel",
    "Prediction",
    "TITAN_XP",
    "XEON_CPU",
    "compare_conv",
    "compare_gemm",
    "detection_time",
    "occupancy_factor",
    "predict_time",
    "relative_to_baseline",
    "render_case_study",
    "render_conv_table",
    "render_gemm_table",
    "run_case_study",
    "stable_jitter",
]
