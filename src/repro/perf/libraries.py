"""Performance models of the GPU/CPU math libraries compared in the paper.

Closed-source: cuBLAS (GEMM), cuDNN (convolution).  Open-source: CUTLASS
(GEMM templates), ISAAC (input-aware auto-tuned kernels).  CPU baselines:
ATLAS and OpenBLAS.  Each model turns a workload shape into a
shape-dependent efficiency and defers to the roofline
(:func:`repro.perf.model.predict_time`).

The efficiency curves encode the publicly understood behaviour each
library exhibits:

* cuBLAS/CUTLASS run close to peak on large square GEMM and lose
  occupancy on skinny shapes; CUTLASS tracks cuBLAS within roughly ±15%
  either way (NVIDIA's own CUTLASS 1.1 claim, and the paper's Figure 8a);
* cuDNN's fixed kernel-selection heuristics shine on "standard" conv
  shapes (3x3 stride 1, channel counts that are multiples of 32) and lose
  ground elsewhere; ISAAC's input-aware auto-tuning has a slightly lower
  sweet-spot peak but no heuristic-mismatch penalty (Figure 8b);
* ATLAS/OpenBLAS achieve a healthy fraction of *CPU* peak, which is still
  two orders of magnitude below the GPU (Figure 7).
"""

from __future__ import annotations

import abc
from typing import Optional

from ..dnn.layers import ConvShape, GemmShape
from ..errors import PerfModelError
from .device import DeviceSpec, TITAN_XP, XEON_CPU
from .model import occupancy_factor, predict_time, stable_jitter


def _clamp_efficiency(value: float) -> float:
    return max(0.01, min(0.98, value))


class LibraryModel(abc.ABC):
    """A math library whose kernels the roofline model can price."""

    name: str = "library"
    open_source: bool = False

    def __init__(self, device: Optional[DeviceSpec] = None) -> None:
        self.device = device or self.default_device()

    @staticmethod
    def default_device() -> DeviceSpec:
        return TITAN_XP

    @abc.abstractmethod
    def gemm_time(self, shape: GemmShape) -> float:
        """Predicted seconds for one GEMM call."""

    def conv_time(self, conv: ConvShape) -> float:
        """Predicted seconds for one convolution (default: im2col+GEMM).

        The im2col lowering adds the patch-matrix write+read traffic and
        one GEMM call per batch image — the cost structure the paper's
        cuBLAS-based YOLO path actually has.
        """
        gemm = conv.as_gemm()
        per_image = self.gemm_time(gemm)
        lowering_bytes = 2 * 4 * gemm.k * gemm.n  # write + read the columns
        lowering = lowering_bytes / (self.device.memory_bandwidth * 0.70)
        return conv.batch * (per_image + lowering
                             + self.device.launch_overhead_s)

    def gemm_gflops(self, shape: GemmShape) -> float:
        """Achieved GFLOP/s on a GEMM — the Figure 8a y-axis quantity."""
        return shape.flops / self.gemm_time(shape) / 1e9

    def conv_gflops(self, conv: ConvShape) -> float:
        return conv.flops / self.conv_time(conv) / 1e9


class _GpuGemmLibrary(LibraryModel):
    """Shared shape-efficiency logic of the GPU GEMM libraries."""

    base_efficiency = 0.80
    jitter_low = 0.95
    jitter_high = 1.05
    small_dimension = 32
    small_dimension_factor = 0.70

    def gemm_time(self, shape: GemmShape) -> float:
        if self.device.kind != "gpu":
            raise PerfModelError(f"{self.name} requires a GPU device")
        efficiency = self.base_efficiency
        efficiency *= occupancy_factor(shape.m * shape.n)
        if min(shape.m, shape.n, shape.k) < self.small_dimension:
            efficiency *= self.small_dimension_factor
        efficiency *= stable_jitter(
            f"{self.name}:gemm:{shape.m}x{shape.n}x{shape.k}",
            self.jitter_low, self.jitter_high)
        efficiency = _clamp_efficiency(efficiency)
        return predict_time(self.device, shape.flops, shape.bytes_moved,
                            efficiency)


class CuBlasModel(_GpuGemmLibrary):
    """NVIDIA cuBLAS: the closed-source GEMM baseline."""

    name = "cuBLAS"
    open_source = False
    base_efficiency = 0.84
    jitter_low = 0.96
    jitter_high = 1.04


class CutlassModel(_GpuGemmLibrary):
    """NVIDIA CUTLASS 1.1: open-source CUDA C++ GEMM templates.

    Slightly lower sweet-spot efficiency than cuBLAS's hand-tuned SASS,
    wider per-shape variance — some tile configurations beat cuBLAS,
    others trail it (Figure 8a's scatter around 1.0).
    """

    name = "CUTLASS"
    open_source = True
    base_efficiency = 0.80
    jitter_low = 0.88
    jitter_high = 1.10


class _CpuBlasLibrary(LibraryModel):
    """CPU BLAS: same roofline, CPU roofs, im2col lowering for conv."""

    base_efficiency = 0.75
    jitter_low = 0.95
    jitter_high = 1.05

    @staticmethod
    def default_device() -> DeviceSpec:
        return XEON_CPU

    def gemm_time(self, shape: GemmShape) -> float:
        efficiency = self.base_efficiency
        efficiency *= occupancy_factor(shape.m * shape.n, saturation=64.0)
        efficiency *= stable_jitter(
            f"{self.name}:gemm:{shape.m}x{shape.n}x{shape.k}",
            self.jitter_low, self.jitter_high)
        efficiency = _clamp_efficiency(efficiency)
        return predict_time(self.device, shape.flops, shape.bytes_moved,
                            efficiency, memory_efficiency=0.60)


class AtlasModel(_CpuBlasLibrary):
    """ATLAS: auto-tuned CPU BLAS (conservative kernels)."""

    name = "ATLAS"
    open_source = True
    base_efficiency = 0.62


class OpenBlasModel(_CpuBlasLibrary):
    """OpenBLAS: hand-optimized CPU BLAS (GotoBLAS lineage)."""

    name = "OpenBLAS"
    open_source = True
    base_efficiency = 0.78


class CuDnnModel(LibraryModel):
    """NVIDIA cuDNN: closed-source convolution primitives.

    Direct/Winograd convolution selected by fixed heuristics: excellent on
    standard shapes, with a real penalty when channel counts do not match
    its kernel-selection tables.
    """

    name = "cuDNN"
    open_source = False
    base_efficiency = 0.82

    def gemm_time(self, shape: GemmShape) -> float:
        raise PerfModelError(f"{self.name} models convolutions, not GEMM")

    def conv_time(self, conv: ConvShape) -> float:
        efficiency = self.base_efficiency
        output_elements = (conv.batch * conv.out_channels * conv.out_h
                           * conv.out_w)
        efficiency *= occupancy_factor(output_elements)
        arithmetic_saving = 1.0
        if conv.ksize == 3 and conv.stride == 1:
            arithmetic_saving = 1.45  # Winograd F(2x2, 3x3) saving
        if conv.in_channels % 32 != 0 or conv.out_channels % 32 != 0:
            efficiency *= 0.74  # heuristic/kernel-table mismatch
        if conv.in_channels < 16:
            efficiency *= 0.85  # first-layer shapes underfill the MACs
        efficiency *= stable_jitter(
            f"{self.name}:conv:{conv.in_channels}x{conv.out_channels}"
            f"x{conv.ksize}s{conv.stride}@{conv.in_h}", 0.95, 1.05)
        efficiency = _clamp_efficiency(efficiency)
        memory_efficiency = 0.82 * stable_jitter(
            f"{self.name}:convmem:{conv.in_channels}x{conv.out_channels}"
            f"x{conv.ksize}s{conv.stride}@{conv.in_h}", 0.97, 1.03)
        effective_flops = int(conv.flops / arithmetic_saving)
        return predict_time(self.device, effective_flops, conv.bytes_moved,
                            efficiency,
                            memory_efficiency=min(0.98, memory_efficiency)
                            ) + self.device.launch_overhead_s


class IsaacModel(LibraryModel):
    """ISAAC: input-aware auto-tuning code generator (Tillet & Cox, SC'17).

    Generates a kernel *per input shape*: a slightly lower peak than
    cuDNN's hand-written Winograd on the sweet spots, but no
    heuristic-mismatch penalty anywhere — the paper's Figure 8b shape.
    """

    name = "ISAAC"
    open_source = True
    base_efficiency = 0.78

    def gemm_time(self, shape: GemmShape) -> float:
        efficiency = self.base_efficiency
        efficiency *= occupancy_factor(shape.m * shape.n)
        # Input-aware tiling keeps skinny shapes efficient.
        if min(shape.m, shape.n, shape.k) < 32:
            efficiency *= 0.85
        efficiency *= stable_jitter(
            f"{self.name}:gemm:{shape.m}x{shape.n}x{shape.k}", 0.92, 1.08)
        efficiency = _clamp_efficiency(efficiency)
        return predict_time(self.device, shape.flops, shape.bytes_moved,
                            efficiency)

    def conv_time(self, conv: ConvShape) -> float:
        efficiency = self.base_efficiency
        output_elements = (conv.batch * conv.out_channels * conv.out_h
                           * conv.out_w)
        efficiency *= occupancy_factor(output_elements)
        arithmetic_saving = 1.0
        if conv.ksize == 3 and conv.stride == 1:
            arithmetic_saving = 1.32  # generated Winograd, slightly behind
        efficiency *= stable_jitter(
            f"{self.name}:conv:{conv.in_channels}x{conv.out_channels}"
            f"x{conv.ksize}s{conv.stride}@{conv.in_h}", 0.93, 1.10)
        efficiency = _clamp_efficiency(efficiency)
        # Input-aware tiling also tunes the memory path per shape: a lower
        # baseline than cuDNN's hand-scheduled pipelines, more variance.
        memory_efficiency = 0.78 * stable_jitter(
            f"{self.name}:convmem:{conv.in_channels}x{conv.out_channels}"
            f"x{conv.ksize}s{conv.stride}@{conv.in_h}", 0.92, 1.12)
        effective_flops = int(conv.flops / arithmetic_saving)
        return predict_time(self.device, effective_flops, conv.bytes_moved,
                            efficiency,
                            memory_efficiency=min(0.98, memory_efficiency)
                            ) + self.device.launch_overhead_s


#: The library line-up of the paper's case study.
CLOSED_SOURCE_LIBRARIES = (CuBlasModel, CuDnnModel)
OPEN_SOURCE_GPU_LIBRARIES = (CutlassModel, IsaacModel)
CPU_LIBRARIES = (AtlasModel, OpenBlasModel)
