"""Figure 8b: relative convolution performance, ISAAC vs cuDNN."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .device import DeviceSpec
from .libraries import CuDnnModel, IsaacModel
from .workloads import CONV_WORKLOADS, NamedConv


@dataclass(frozen=True)
class ConvComparison:
    """One Figure 8b bar: a conv workload under cuDNN and ISAAC."""

    label: str
    domain: str
    cudnn_gflops: float
    isaac_gflops: float

    @property
    def relative(self) -> float:
        """ISAAC performance relative to cuDNN (1.0 = parity)."""
        return self.isaac_gflops / self.cudnn_gflops


def compare_conv(workloads: Optional[List[NamedConv]] = None,
                 device: Optional[DeviceSpec] = None
                 ) -> List[ConvComparison]:
    """Run the Figure 8b sweep; deterministic for a fixed device."""
    workloads = workloads if workloads is not None else CONV_WORKLOADS
    cudnn = CuDnnModel(device)
    isaac = IsaacModel(device)
    rows: List[ConvComparison] = []
    for workload in workloads:
        rows.append(ConvComparison(
            label=workload.label,
            domain=workload.domain,
            cudnn_gflops=cudnn.conv_gflops(workload.shape),
            isaac_gflops=isaac.conv_gflops(workload.shape),
        ))
    return rows


def render_conv_table(rows: List[ConvComparison]) -> str:
    """Plain-text Figure 8b."""
    lines = [f"{'workload':<20}{'domain':<16}{'cuDNN':>10}{'ISAAC':>10}"
             f"{'relative':>10}",
             "-" * 66]
    for row in rows:
        lines.append(f"{row.label:<20}{row.domain:<16}"
                     f"{row.cudnn_gflops:>10.0f}"
                     f"{row.isaac_gflops:>10.0f}"
                     f"{row.relative:>10.2f}")
    mean = sum(row.relative for row in rows) / len(rows) if rows else 0.0
    lines.append("-" * 66)
    lines.append(f"{'mean relative':<52}{mean:>10.2f}")
    return "\n".join(lines)
