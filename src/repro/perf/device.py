"""Device specifications for the performance models.

The paper's testbed is an NVIDIA GPU (Apollo targets Drive PX2/TITAN-class
parts) against "CPU cores using highly optimized libraries (ATLAS and
OpenBLAS)" which run "two orders of magnitude" slower.  The specs below are
public datasheet numbers; only *ratios* matter for the reproduced figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PerfModelError


@dataclass(frozen=True)
class DeviceSpec:
    """A compute device for the roofline model.

    Attributes:
        name: human-readable device name.
        peak_flops: single-precision peak, FLOP/s.
        memory_bandwidth: DRAM bandwidth, bytes/s.
        kind: ``"gpu"`` or ``"cpu"``.
        launch_overhead_s: fixed per-kernel-call overhead.
    """

    name: str
    peak_flops: float
    memory_bandwidth: float
    kind: str
    launch_overhead_s: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.memory_bandwidth <= 0:
            raise PerfModelError(
                f"device {self.name!r} needs positive peak numbers")
        if self.kind not in ("gpu", "cpu"):
            raise PerfModelError(f"unknown device kind {self.kind!r}")

    @property
    def machine_balance(self) -> float:
        """FLOPs per byte at the roofline ridge point."""
        return self.peak_flops / self.memory_bandwidth


#: TITAN Xp-class GPU (Pascal, the Apollo-era NVIDIA part).
TITAN_XP = DeviceSpec(
    name="NVIDIA TITAN Xp",
    peak_flops=12.15e12,
    memory_bandwidth=547.6e9,
    kind="gpu",
    launch_overhead_s=8e-6,
)

#: Drive PX2-class embedded GPU (the in-vehicle target).
DRIVE_PX2 = DeviceSpec(
    name="NVIDIA Drive PX2 (dGPU)",
    peak_flops=4.0e12,
    memory_bandwidth=80.0e9,
    kind="gpu",
    launch_overhead_s=10e-6,
)

#: The in-vehicle CPU baseline: the Apollo reference platform pairs the
#: GPU with a modest host CPU, and the paper's BLAS runs use the cores one
#: process can actually claim next to the rest of the AD pipeline (~4
#: cores of AVX at ~2 GHz).  This lands the BLAS path two orders of
#: magnitude behind the GPU, matching Figure 7's report.
XEON_CPU = DeviceSpec(
    name="Intel Xeon E5 (4 cores, AVX)",
    peak_flops=0.12e12,
    memory_bandwidth=25.6e9,
    kind="cpu",
    launch_overhead_s=0.5e-6,
)

DEVICES = {spec.name: spec for spec in (TITAN_XP, DRIVE_PX2, XEON_CPU)}
