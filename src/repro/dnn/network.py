"""The network container: sequential forward pass plus workload census."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .layers import ConvShape, Layer


@dataclass(frozen=True)
class LayerWorkload:
    """The compute profile of one layer for the performance models."""

    index: int
    name: str
    conv: ConvShape

    @property
    def flops(self) -> int:
        return self.conv.flops


class Network:
    """A sequential stack of layers (the YOLO-lite backbone)."""

    def __init__(self, layers: List[Layer],
                 input_shape: Tuple[int, int, int, int]) -> None:
        if not layers:
            raise ValueError("network needs at least one layer")
        self.layers = layers
        self.input_shape = input_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the full stack; validates the input shape.

        Route layers receive the full output history (YOLOv3-style
        feature reuse); every other layer receives its predecessor's
        output.
        """
        from .fpn_layers import RouteLayer
        if x.shape[1:] != self.input_shape[1:]:
            raise ValueError(
                f"network expects input CHW {self.input_shape[1:]}, "
                f"got {x.shape[1:]}")
        outputs: List[np.ndarray] = []
        for layer in self.layers:
            if isinstance(layer, RouteLayer):
                x = layer.forward_from(outputs)
            else:
                x = layer.forward(x)
            outputs.append(x)
        return x

    def layer_shapes(self) -> List[Tuple[int, ...]]:
        """Input shape of every layer, derived statically."""
        from .fpn_layers import RouteLayer
        shapes = [self.input_shape]
        produced: List[Tuple[int, ...]] = []
        for layer in self.layers:
            if isinstance(layer, RouteLayer):
                produced.append(layer.shape_from(produced))
            else:
                produced.append(layer.output_shape(shapes[-1]))
            shapes.append(produced[-1])
        return shapes[:-1]

    def conv_workloads(self) -> List[LayerWorkload]:
        """The convolution workloads, in execution order.

        These are the GEMM/conv shapes the Figure 7 performance case study
        prices under each library.
        """
        workloads: List[LayerWorkload] = []
        shapes = self.layer_shapes()
        for index, (layer, shape) in enumerate(zip(self.layers, shapes)):
            conv = getattr(layer, "conv_shape", None)
            if conv is None or layer.name != "convolutional":
                continue
            workloads.append(LayerWorkload(
                index=index, name=layer.name,
                conv=layer.conv_shape(shape)))
        return workloads

    @property
    def total_conv_flops(self) -> int:
        return sum(workload.flops for workload in self.conv_workloads())
