"""Deterministic weight initialization for YOLO-lite.

There are no pretrained Apollo/YOLO weights offline; deterministic He-
initialized weights preserve everything the experiments need — layer
shapes, FLOP counts, numerically well-behaved activations, and stable
detections for a fixed seed.
"""

from __future__ import annotations

import numpy as np


class WeightStore:
    """A seeded source of layer parameters."""

    def __init__(self, seed: int = 26262) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def conv_weights(self, out_channels: int, in_channels: int,
                     ksize: int) -> np.ndarray:
        """He-normal filter bank of shape (F, C, K, K)."""
        fan_in = in_channels * ksize * ksize
        scale = np.sqrt(2.0 / fan_in)
        return self._rng.normal(
            0.0, scale, size=(out_channels, in_channels, ksize, ksize))

    def biases(self, channels: int, spread: float = 0.1) -> np.ndarray:
        return self._rng.uniform(-spread, spread, size=channels)

    def bn_parameters(self, channels: int):
        """(scale, mean, variance) resembling a trained batch norm."""
        scale = self._rng.uniform(0.8, 1.2, size=channels)
        mean = self._rng.normal(0.0, 0.2, size=channels)
        variance = self._rng.uniform(0.5, 1.5, size=channels)
        return scale, mean, variance

    def image(self, height: int, width: int, channels: int = 3,
              batch: int = 1) -> np.ndarray:
        """A synthetic camera frame in [0, 1] with spatial structure."""
        ys = np.linspace(0.0, 1.0, height)[None, None, :, None]
        xs = np.linspace(0.0, 1.0, width)[None, None, None, :]
        gradient = 0.5 * ys + 0.3 * xs
        noise = self._rng.uniform(-0.2, 0.2,
                                  size=(batch, channels, height, width))
        blob_y = self._rng.uniform(0.2, 0.8)
        blob_x = self._rng.uniform(0.2, 0.8)
        blob = np.exp(-(((ys - blob_y) ** 2) + ((xs - blob_x) ** 2)) / 0.02)
        return np.clip(gradient + noise + 0.6 * blob, 0.0, 1.0)
