"""Layers of the YOLO-lite network.

Each layer implements ``forward`` and exposes a *workload descriptor* —
the FLOP and byte counts of its dominant kernels — which is what the
performance models in :mod:`repro.perf` consume to predict per-library
execution time (Figure 7).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .tensor import check_nchw, im2col, output_size, sigmoid


@dataclass(frozen=True)
class GemmShape:
    """An (M, N, K) matrix-multiplication workload."""

    m: int
    n: int
    k: int

    @property
    def flops(self) -> int:
        """Multiply-accumulate count times two."""
        return 2 * self.m * self.n * self.k

    @property
    def bytes_moved(self) -> int:
        """Minimum DRAM traffic in bytes at 4 bytes/element."""
        return 4 * (self.m * self.k + self.k * self.n + self.m * self.n)


@dataclass(frozen=True)
class ConvShape:
    """A convolution workload in cuDNN terms."""

    batch: int
    in_channels: int
    out_channels: int
    in_h: int
    in_w: int
    ksize: int
    stride: int
    pad: int

    @property
    def out_h(self) -> int:
        return output_size(self.in_h, self.ksize, self.stride, self.pad)

    @property
    def out_w(self) -> int:
        return output_size(self.in_w, self.ksize, self.stride, self.pad)

    @property
    def flops(self) -> int:
        return (2 * self.batch * self.out_channels * self.out_h * self.out_w
                * self.in_channels * self.ksize * self.ksize)

    @property
    def bytes_moved(self) -> int:
        inputs = self.batch * self.in_channels * self.in_h * self.in_w
        outputs = self.batch * self.out_channels * self.out_h * self.out_w
        weights = (self.out_channels * self.in_channels
                   * self.ksize * self.ksize)
        return 4 * (inputs + outputs + weights)

    def as_gemm(self) -> GemmShape:
        """The im2col-lowered GEMM of this convolution (per batch image)."""
        return GemmShape(m=self.out_channels,
                         n=self.out_h * self.out_w,
                         k=self.in_channels * self.ksize * self.ksize)


class Layer(abc.ABC):
    """Base layer: forward pass plus workload description."""

    name: str = "layer"

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for an NCHW batch."""

    @abc.abstractmethod
    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Output NCHW shape for a given input shape."""

    def conv_shape(self) -> Optional[ConvShape]:
        """The convolution workload, when this layer is a convolution."""
        return None


class ConvLayer(Layer):
    """Convolution + optional batch-norm + activation, darknet-style.

    Args:
        weights: ``(out_channels, in_channels, K, K)`` filter bank.
        biases: per-filter bias.
        stride, pad: convolution geometry.
        activation: ``"leaky"`` or ``"linear"``.
        bn_scale, bn_mean, bn_variance: batch-norm parameters; all three
            must be given together or not at all.
    """

    name = "convolutional"

    def __init__(self, weights: np.ndarray, biases: np.ndarray,
                 stride: int = 1, pad: int = 1, activation: str = "leaky",
                 bn_scale: Optional[np.ndarray] = None,
                 bn_mean: Optional[np.ndarray] = None,
                 bn_variance: Optional[np.ndarray] = None) -> None:
        if weights.ndim != 4 or weights.shape[2] != weights.shape[3]:
            raise ValueError(
                f"weights must be (F, C, K, K), got {weights.shape}")
        if activation not in ("leaky", "linear"):
            raise ValueError(f"unsupported activation {activation!r}")
        bn_given = [parameter is not None
                    for parameter in (bn_scale, bn_mean, bn_variance)]
        if any(bn_given) and not all(bn_given):
            raise ValueError("batch-norm parameters must be all-or-none")
        self.weights = weights.astype(float)
        self.biases = biases.astype(float)
        self.stride = stride
        self.pad = pad
        self.activation = activation
        self.bn_scale = bn_scale
        self.bn_mean = bn_mean
        self.bn_variance = bn_variance
        self._last_input_shape: Optional[Tuple[int, ...]] = None

    @property
    def out_channels(self) -> int:
        return self.weights.shape[0]

    @property
    def ksize(self) -> int:
        return self.weights.shape[2]

    def forward(self, x: np.ndarray) -> np.ndarray:
        check_nchw(x)
        if x.shape[1] != self.weights.shape[1]:
            raise ValueError(
                f"layer expects {self.weights.shape[1]} input channels, "
                f"got {x.shape[1]}")
        self._last_input_shape = x.shape
        batch = x.shape[0]
        columns = im2col(x, self.ksize, self.stride, self.pad)
        kernel_matrix = self.weights.reshape(self.out_channels, -1)
        out_h = output_size(x.shape[2], self.ksize, self.stride, self.pad)
        out_w = output_size(x.shape[3], self.ksize, self.stride, self.pad)
        output = np.einsum("fk,bkp->bfp", kernel_matrix, columns)
        output = output.reshape(batch, self.out_channels, out_h, out_w)
        if self.bn_scale is not None:
            deviation = np.sqrt(self.bn_variance.reshape(1, -1, 1, 1)) + 1e-6
            output = (output - self.bn_mean.reshape(1, -1, 1, 1)) / deviation
            output = output * self.bn_scale.reshape(1, -1, 1, 1)
        output = output + self.biases.reshape(1, -1, 1, 1)
        if self.activation == "leaky":
            output = np.where(output > 0, output, 0.1 * output)
        return output

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        batch, _, height, width = input_shape
        return (batch, self.out_channels,
                output_size(height, self.ksize, self.stride, self.pad),
                output_size(width, self.ksize, self.stride, self.pad))

    def conv_shape(self, input_shape: Optional[Tuple[int, ...]] = None
                   ) -> ConvShape:
        shape = input_shape or self._last_input_shape
        if shape is None:
            raise ValueError("conv_shape needs an input shape (run forward "
                             "or pass input_shape)")
        batch, channels, height, width = shape
        return ConvShape(batch=batch, in_channels=channels,
                         out_channels=self.out_channels, in_h=height,
                         in_w=width, ksize=self.ksize, stride=self.stride,
                         pad=self.pad)


class MaxPoolLayer(Layer):
    """Max pooling, darknet semantics."""

    name = "maxpool"

    def __init__(self, size: int = 2, stride: int = 2, pad: int = 0) -> None:
        self.size = size
        self.stride = stride
        self.pad = pad

    def forward(self, x: np.ndarray) -> np.ndarray:
        check_nchw(x)
        batch, channels, height, width = x.shape
        out_h = output_size(height, self.size, self.stride, self.pad)
        out_w = output_size(width, self.size, self.stride, self.pad)
        padded = np.pad(x, ((0, 0), (0, 0),
                            (self.pad, self.pad), (self.pad, self.pad)),
                        mode="constant", constant_values=-np.inf)
        out = np.full((batch, channels, out_h, out_w), -np.inf)
        for ky in range(self.size):
            for kx in range(self.size):
                window = padded[:, :,
                                ky:ky + self.stride * out_h:self.stride,
                                kx:kx + self.stride * out_w:self.stride]
                out = np.maximum(out, window)
        return out

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        batch, channels, height, width = input_shape
        return (batch, channels,
                output_size(height, self.size, self.stride, self.pad),
                output_size(width, self.size, self.stride, self.pad))


class RegionLayer(Layer):
    """YOLO detection head: decode raw maps into per-cell predictions.

    The input must have ``anchors * (5 + classes)`` channels.  The layer
    applies the logistic function to the x/y offsets and objectness, and a
    softmax over class scores, exactly like darknet's region layer.
    """

    name = "region"

    def __init__(self, anchors: List[Tuple[float, float]],
                 classes: int) -> None:
        if not anchors:
            raise ValueError("region layer needs at least one anchor")
        self.anchors = anchors
        self.classes = classes

    @property
    def per_anchor(self) -> int:
        return 5 + self.classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        check_nchw(x)
        batch, channels, height, width = x.shape
        expected = len(self.anchors) * self.per_anchor
        if channels != expected:
            raise ValueError(
                f"region layer expects {expected} channels, got {channels}")
        from .tensor import softmax  # local import to avoid cycle noise
        output = x.reshape(batch, len(self.anchors), self.per_anchor,
                           height, width).copy()
        output[:, :, 0:2] = sigmoid(output[:, :, 0:2])
        output[:, :, 4] = sigmoid(output[:, :, 4])
        output[:, :, 5:] = softmax(output[:, :, 5:], axis=2)
        return output.reshape(batch, channels, height, width)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape
