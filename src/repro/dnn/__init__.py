"""YOLO-lite object detection: the paper's perception workload."""

from .fpn_layers import RouteLayer, UpsampleLayer
from .layers import ConvLayer, ConvShape, GemmShape, Layer, MaxPoolLayer, RegionLayer
from .network import LayerWorkload, Network
from .nms import Box, iou, nms
from .weights import WeightStore
from .yolo import DEFAULT_ANCHORS, YoloConfig, YoloDetector, build_yolo_lite

__all__ = [
    "Box",
    "ConvLayer",
    "ConvShape",
    "DEFAULT_ANCHORS",
    "GemmShape",
    "Layer",
    "LayerWorkload",
    "MaxPoolLayer",
    "Network",
    "RegionLayer",
    "RouteLayer",
    "UpsampleLayer",
    "WeightStore",
    "YoloConfig",
    "YoloDetector",
    "build_yolo_lite",
    "iou",
    "nms",
]
