"""YOLO-lite: a tiny-YOLO-style camera object detector.

The reproduction's stand-in for Apollo's camera object detection: a small
darknet-style backbone (conv/maxpool pyramid) with a region head, built on
the layers in :mod:`repro.dnn.layers`.  Its convolution workloads are the
quantities priced by the Figure 7 performance case study; its forward pass
is the "real-scenario test" that drives the coverage campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .layers import ConvLayer, MaxPoolLayer, RegionLayer
from .network import Network
from .nms import Box, nms
from .weights import WeightStore

#: YOLOv2-tiny anchor boxes (cell units), truncated to the model's count.
DEFAULT_ANCHORS: List[Tuple[float, float]] = [
    (1.08, 1.19), (3.42, 4.41), (6.63, 11.38),
]


@dataclass(frozen=True)
class YoloConfig:
    """Architecture of a YOLO-lite detector.

    ``width_multiple`` scales channel counts so tests can run a toy model
    while benchmarks price a realistically sized one.
    """

    input_size: int = 416
    classes: int = 8
    anchors: int = 3
    width_multiple: float = 1.0
    batch: int = 1

    def channels(self, base: int) -> int:
        return max(1, int(round(base * self.width_multiple)))


def build_yolo_lite(config: YoloConfig = YoloConfig(),
                    store: Optional[WeightStore] = None) -> Network:
    """Construct the detector with deterministic weights.

    The layer plan follows tiny-YOLO: five 3x3 conv stages doubling
    channels (16..256), each followed by 2x2 maxpool, then a 1x1 conv to
    the detection tensor and the region head.
    """
    store = store or WeightStore()
    layers = []
    in_channels = 3
    for base in (16, 32, 64, 128, 256):
        out_channels = config.channels(base)
        scale, mean, variance = store.bn_parameters(out_channels)
        layers.append(ConvLayer(
            weights=store.conv_weights(out_channels, in_channels, 3),
            biases=store.biases(out_channels),
            stride=1, pad=1, activation="leaky",
            bn_scale=scale, bn_mean=mean, bn_variance=variance))
        layers.append(MaxPoolLayer(size=2, stride=2))
        in_channels = out_channels
    anchors = DEFAULT_ANCHORS[:config.anchors]
    head_channels = len(anchors) * (5 + config.classes)
    layers.append(ConvLayer(
        weights=store.conv_weights(head_channels, in_channels, 1),
        biases=store.biases(head_channels),
        stride=1, pad=0, activation="linear"))
    layers.append(RegionLayer(anchors=anchors, classes=config.classes))
    return Network(layers,
                   input_shape=(config.batch, 3, config.input_size,
                                config.input_size))


class YoloDetector:
    """End-to-end detector: network forward pass plus box decoding."""

    def __init__(self, config: YoloConfig = YoloConfig(),
                 store: Optional[WeightStore] = None) -> None:
        self.config = config
        self.network = build_yolo_lite(config, store)
        self.anchors = DEFAULT_ANCHORS[:config.anchors]

    def detect(self, image: np.ndarray, objectness_threshold: float = 0.5,
               nms_threshold: float = 0.45) -> List[Box]:
        """Detect objects in one NCHW image batch of size 1."""
        output = self.network.forward(image)
        return self.decode(output[0], objectness_threshold, nms_threshold)

    def decode(self, feature_map: np.ndarray, objectness_threshold: float,
               nms_threshold: float) -> List[Box]:
        """Decode one region-layer output (CHW) into NMS-filtered boxes."""
        per_anchor = 5 + self.config.classes
        anchors = len(self.anchors)
        channels, grid_h, grid_w = feature_map.shape
        if channels != anchors * per_anchor:
            raise ValueError(
                f"feature map has {channels} channels, expected "
                f"{anchors * per_anchor}")
        maps = feature_map.reshape(anchors, per_anchor, grid_h, grid_w)
        boxes: List[Box] = []
        for anchor_index, (anchor_w, anchor_h) in enumerate(self.anchors):
            for cell_y in range(grid_h):
                for cell_x in range(grid_w):
                    objectness = float(maps[anchor_index, 4, cell_y, cell_x])
                    if objectness < objectness_threshold:
                        continue
                    tx = float(maps[anchor_index, 0, cell_y, cell_x])
                    ty = float(maps[anchor_index, 1, cell_y, cell_x])
                    tw = float(maps[anchor_index, 2, cell_y, cell_x])
                    th = float(maps[anchor_index, 3, cell_y, cell_x])
                    class_scores = maps[anchor_index, 5:, cell_y, cell_x]
                    class_id = int(np.argmax(class_scores))
                    score = objectness * float(class_scores[class_id])
                    boxes.append(Box(
                        x=(cell_x + tx) / grid_w,
                        y=(cell_y + ty) / grid_h,
                        w=min(4.0, np.exp(min(tw, 8.0))) * anchor_w / grid_w,
                        h=min(4.0, np.exp(min(th, 8.0))) * anchor_h / grid_h,
                        score=score,
                        class_id=class_id))
        return nms(boxes, nms_threshold)
