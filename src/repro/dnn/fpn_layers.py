"""Feature-pyramid layers: upsample and route (YOLOv3-style).

Apollo's later perception stacks (and YOLOv3) add feature reuse: an
``upsample`` layer scales a coarse map up and a ``route`` layer
concatenates it with an earlier fine-grained map.  These layers extend
the sequential :class:`~repro.dnn.network.Network`: a route receives the
list of all previous layer outputs instead of just its predecessor's.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .layers import Layer
from .tensor import check_nchw


class UpsampleLayer(Layer):
    """Nearest-neighbour spatial upsampling by an integer stride."""

    name = "upsample"

    def __init__(self, stride: int = 2) -> None:
        if stride < 1:
            raise ValueError(f"upsample stride must be >= 1, got {stride}")
        self.stride = stride

    def forward(self, x: np.ndarray) -> np.ndarray:
        check_nchw(x)
        return x.repeat(self.stride, axis=2).repeat(self.stride, axis=3)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        batch, channels, height, width = input_shape
        return (batch, channels, height * self.stride,
                width * self.stride)


class RouteLayer(Layer):
    """Concatenates earlier layers' outputs along the channel axis.

    Attributes:
        sources: absolute indices of the layers whose outputs to join
            (darknet's route layer semantics, without negative indexing).
    """

    name = "route"

    def __init__(self, sources: Sequence[int]) -> None:
        if not sources:
            raise ValueError("route layer needs at least one source")
        if any(index < 0 for index in sources):
            raise ValueError("route sources are absolute layer indices")
        self.sources = list(sources)

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise RuntimeError(
            "route layers need the output history; run them through "
            "Network.forward or call forward_from directly")

    def forward_from(self, outputs: List[np.ndarray]) -> np.ndarray:
        """Concatenate the selected entries of the output history."""
        selected = []
        for index in self.sources:
            if index >= len(outputs):
                raise ValueError(
                    f"route source {index} not yet produced "
                    f"(history has {len(outputs)} outputs)")
            selected.append(outputs[index])
        spatial = {tensor.shape[2:] for tensor in selected}
        if len(spatial) != 1:
            raise ValueError(
                f"route sources disagree on spatial size: {spatial}")
        return np.concatenate(selected, axis=1)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        raise RuntimeError("route output shape depends on the history; "
                           "use shape_from")

    def shape_from(self, shapes: List[Tuple[int, ...]]) -> Tuple[int, ...]:
        channels = sum(shapes[index][1] for index in self.sources)
        first = shapes[self.sources[0]]
        return (first[0], channels, first[2], first[3])
