"""Tensor helpers for the numpy YOLO-lite implementation."""

from __future__ import annotations

import numpy as np


def check_nchw(tensor: np.ndarray, name: str = "tensor") -> None:
    """Validate an NCHW activation tensor."""
    if tensor.ndim != 4:
        raise ValueError(f"{name} must be 4-D NCHW, got {tensor.ndim}-D")


def im2col(images: np.ndarray, ksize: int, stride: int,
           pad: int) -> np.ndarray:
    """Vectorized im2col over a batch.

    Args:
        images: NCHW input batch.
        ksize: square kernel size.
        stride: convolution stride.
        pad: zero padding on every border.

    Returns:
        Array of shape ``(N, C*K*K, OH*OW)``.
    """
    check_nchw(images, "images")
    batch, channels, height, width = images.shape
    out_h = (height + 2 * pad - ksize) // stride + 1
    out_w = (width + 2 * pad - ksize) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {ksize}/stride {stride}/pad {pad} produce empty output "
            f"for {height}x{width} input")
    padded = np.pad(images,
                    ((0, 0), (0, 0), (pad, pad), (pad, pad)),
                    mode="constant")
    columns = np.zeros((batch, channels * ksize * ksize, out_h * out_w),
                       dtype=images.dtype)
    row = 0
    for channel in range(channels):
        for ky in range(ksize):
            for kx in range(ksize):
                patch = padded[:, channel,
                               ky:ky + stride * out_h:stride,
                               kx:kx + stride * out_w:stride]
                columns[:, row, :] = patch.reshape(batch, -1)
                row += 1
    return columns


def output_size(in_size: int, ksize: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling along one axis."""
    return (in_size + 2 * pad - ksize) // stride + 1


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=float)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)
