"""Bounding boxes, IoU, and greedy non-maximum suppression."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Box:
    """An axis-aligned box in center/size form, normalized to [0, 1]."""

    x: float
    y: float
    w: float
    h: float
    score: float = 0.0
    class_id: int = -1

    @property
    def left(self) -> float:
        return self.x - self.w / 2

    @property
    def right(self) -> float:
        return self.x + self.w / 2

    @property
    def top(self) -> float:
        return self.y - self.h / 2

    @property
    def bottom(self) -> float:
        return self.y + self.h / 2

    @property
    def area(self) -> float:
        return max(0.0, self.w) * max(0.0, self.h)


def iou(first: Box, second: Box) -> float:
    """Intersection-over-union of two boxes; 0 for disjoint/degenerate."""
    overlap_w = min(first.right, second.right) - max(first.left, second.left)
    overlap_h = min(first.bottom, second.bottom) - max(first.top, second.top)
    if overlap_w <= 0 or overlap_h <= 0:
        return 0.0
    intersection = overlap_w * overlap_h
    union = first.area + second.area - intersection
    if union <= 0:
        return 0.0
    return intersection / union


def nms(boxes: List[Box], threshold: float = 0.45) -> List[Box]:
    """Greedy per-class NMS: keep the best box, drop overlapping peers."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"NMS threshold must be in [0, 1], got {threshold}")
    kept: List[Box] = []
    remaining = sorted(boxes, key=lambda box: -box.score)
    while remaining:
        best = remaining.pop(0)
        kept.append(best)
        remaining = [candidate for candidate in remaining
                     if candidate.class_id != best.class_id
                     or iou(best, candidate) < threshold]
    return kept
