"""YOLO's C modules in MiniC, plus the real-scenario test suite.

This is the Figure 5 experiment substrate: the files mirror darknet's
object-detection sources (``activations.c``, ``gemm.c``, ``blas.c``, ...)
at reduced scale, and :func:`scenario_suite` provides the "several
real-scenario tests" the paper runs — plain inference traffic, *not* a
coverage-directed test suite.  Coverage gaps therefore arise for the same
reasons the paper observes: inference only uses the leaky/linear
activations, only the NN GEMM variant, only stride-1 BLAS fast paths, and
never the grouped-convolution or training paths.

Each file is a self-contained MiniC program (darknet-style ``static``
helpers are duplicated rather than cross-included), so per-file coverage
is measured exactly as RapiCover reports it.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..coverage.report import CoverageCampaign, FileCoverage
from ..coverage.runner import CoverageRunner, TestVector

ACTIVATIONS_SOURCE = """
float activate(float x, int type) {
  switch (type) {
    case 0:
      return x;
    case 1:
      return 1.0f / (1.0f + expf(-x));
    case 2:
      return x > 0.0f ? x : 0.1f * x;
    case 3:
      return x > 0.0f ? x : 0.0f;
    case 4:
      return tanhf(x);
    case 5:
      if (x >= 0.0f) {
        return x;
      }
      return expf(x) - 1.0f;
    default:
      return x;
  }
}

float gradient(float x, int type) {
  switch (type) {
    case 0:
      return 1.0f;
    case 1: {
      float s = 1.0f / (1.0f + expf(-x));
      return s * (1.0f - s);
    }
    case 2:
      return x > 0.0f ? 1.0f : 0.1f;
    case 3:
      return x > 0.0f ? 1.0f : 0.0f;
    case 4: {
      float t = tanhf(x);
      return 1.0f - t * t;
    }
    default:
      return 1.0f;
  }
}

void activate_array(float *x, int n, int type) {
  for (int i = 0; i < n; i++) {
    x[i] = activate(x[i], type);
  }
}
"""

GEMM_SOURCE = """
void gemm_cpu(int ta, int tb, int m, int n, int k, float alpha, float *a,
              int lda, float *b, int ldb, float beta, float *c, int ldc) {
  if (beta != 1.0f) {
    for (int bi = 0; bi < m; bi++) {
      for (int bj = 0; bj < n; bj++) {
        c[bi * ldc + bj] *= beta;
      }
    }
  }
  if (ta == 0 && tb == 0) {
    for (int i = 0; i < m; i++) {
      for (int p = 0; p < k; p++) {
        float apart = alpha * a[i * lda + p];
        for (int j = 0; j < n; j++) {
          c[i * ldc + j] += apart * b[p * ldb + j];
        }
      }
    }
  } else if (ta == 1 && tb == 0) {
    for (int i = 0; i < m; i++) {
      for (int p = 0; p < k; p++) {
        float apart = alpha * a[p * lda + i];
        int j = 0;
        int limit = n - 3;
        while (j < limit) {
          c[i * ldc + j] += apart * b[p * ldb + j];
          c[i * ldc + j + 1] += apart * b[p * ldb + j + 1];
          c[i * ldc + j + 2] += apart * b[p * ldb + j + 2];
          c[i * ldc + j + 3] += apart * b[p * ldb + j + 3];
          j += 4;
        }
        while (j < n) {
          c[i * ldc + j] += apart * b[p * ldb + j];
          j++;
        }
      }
    }
  } else if (ta == 0 && tb == 1) {
    for (int i = 0; i < m; i++) {
      for (int j = 0; j < n; j++) {
        float sum = 0.0f;
        int p = 0;
        int limit = k - 3;
        while (p < limit) {
          sum += alpha * a[i * lda + p] * b[j * ldb + p];
          sum += alpha * a[i * lda + p + 1] * b[j * ldb + p + 1];
          sum += alpha * a[i * lda + p + 2] * b[j * ldb + p + 2];
          sum += alpha * a[i * lda + p + 3] * b[j * ldb + p + 3];
          p += 4;
        }
        while (p < k) {
          sum += alpha * a[i * lda + p] * b[j * ldb + p];
          p++;
        }
        c[i * ldc + j] += sum;
      }
    }
  } else {
    for (int i = 0; i < m; i++) {
      for (int j = 0; j < n; j++) {
        float sum = 0.0f;
        float partial0 = 0.0f;
        float partial1 = 0.0f;
        int p = 0;
        int pairs = k - 1;
        while (p < pairs) {
          partial0 += alpha * a[p * lda + i] * b[j * ldb + p];
          partial1 += alpha * a[(p + 1) * lda + i] * b[j * ldb + p + 1];
          p += 2;
        }
        while (p < k) {
          partial0 += alpha * a[p * lda + i] * b[j * ldb + p];
          p++;
        }
        sum = partial0 + partial1;
        c[i * ldc + j] += sum;
      }
    }
  }
}

int gemm_flops(int m, int n, int k, int bias_term) {
  int flops = 2 * m * n * k;
  if (bias_term != 0) {
    flops = flops + m * n;
  }
  if (flops < 0) {
    flops = 0;
  }
  return flops;
}
"""

BLAS_SOURCE = """
void fill_cpu(int n, float alpha, float *x, int incx) {
  for (int i = 0; i < n; i++) {
    x[i * incx] = alpha;
  }
}

void copy_cpu(int n, float *x, int incx, float *y, int incy) {
  if (incx == 1 && incy == 1) {
    for (int i = 0; i < n; i++) {
      y[i] = x[i];
    }
  } else {
    for (int i = 0; i < n; i++) {
      y[i * incy] = x[i * incx];
    }
  }
}

void axpy_cpu(int n, float a, float *x, int incx, float *y, int incy) {
  if (incx == 1 && incy == 1) {
    for (int i = 0; i < n; i++) {
      y[i] += a * x[i];
    }
  } else {
    for (int i = 0; i < n; i++) {
      y[i * incy] += a * x[i * incx];
    }
  }
}

void scal_cpu(int n, float alpha, float *x, int incx) {
  for (int i = 0; i < n; i++) {
    x[i * incx] *= alpha;
  }
}

void mean_cpu(float *x, int batch, int filters, int spatial, float *mean) {
  float scale = 1.0f / (batch * spatial);
  for (int f = 0; f < filters; f++) {
    mean[f] = 0.0f;
    for (int b = 0; b < batch; b++) {
      for (int s = 0; s < spatial; s++) {
        mean[f] += x[(b * filters + f) * spatial + s];
      }
    }
    mean[f] *= scale;
  }
}

void normalize_cpu(float *x, float *mean, float *variance, int batch,
                   int filters, int spatial) {
  for (int b = 0; b < batch; b++) {
    for (int f = 0; f < filters; f++) {
      float deviation = sqrtf(variance[f]) + 0.000001f;
      for (int s = 0; s < spatial; s++) {
        int index = (b * filters + f) * spatial + s;
        x[index] = (x[index] - mean[f]) / deviation;
      }
    }
  }
}
"""

BOX_SOURCE = """
float overlap(float x1, float w1, float x2, float w2) {
  float l1 = x1 - w1 / 2.0f;
  float l2 = x2 - w2 / 2.0f;
  float left = l1 > l2 ? l1 : l2;
  float r1 = x1 + w1 / 2.0f;
  float r2 = x2 + w2 / 2.0f;
  float right = r1 < r2 ? r1 : r2;
  return right - left;
}

float box_intersection(float *a, float *b) {
  float w = overlap(a[0], a[2], b[0], b[2]);
  float h = overlap(a[1], a[3], b[1], b[3]);
  if (w < 0.0f || h < 0.0f) {
    return 0.0f;
  }
  return w * h;
}

float box_union(float *a, float *b) {
  float i = box_intersection(a, b);
  return a[2] * a[3] + b[2] * b[3] - i;
}

float box_iou(float *a, float *b) {
  float u = box_union(a, b);
  if (u <= 0.0f) {
    return 0.0f;
  }
  return box_intersection(a, b) / u;
}

int do_nms(float *boxes, float *scores, int total, float thresh) {
  int kept = total;
  for (int i = 0; i < total; i++) {
    if (scores[i] <= 0.0f) {
      continue;
    }
    for (int j = i + 1; j < total; j++) {
      if (scores[j] <= 0.0f) {
        continue;
      }
      float a[4];
      float b[4];
      for (int p = 0; p < 4; p++) {
        a[p] = boxes[i * 4 + p];
        b[p] = boxes[j * 4 + p];
      }
      if (box_iou(a, b) > thresh) {
        if (scores[i] >= scores[j]) {
          scores[j] = 0.0f;
        } else {
          scores[i] = 0.0f;
        }
        kept--;
      }
    }
  }
  return kept;
}
"""

IM2COL_SOURCE = """
float im2col_get_pixel(float *im, int height, int width, int row, int col,
                       int channel, int pad) {
  row -= pad;
  col -= pad;
  if (row < 0 || col < 0 || row >= height || col >= width) {
    return 0.0f;
  }
  return im[col + width * (row + height * channel)];
}

void im2col_cpu(float *im, int channels, int height, int width, int ksize,
                int stride, int pad, float *col) {
  int out_h = (height + 2 * pad - ksize) / stride + 1;
  int out_w = (width + 2 * pad - ksize) / stride + 1;
  int cols = channels * ksize * ksize;
  for (int c = 0; c < cols; c++) {
    int kx = c % ksize;
    int ky = (c / ksize) % ksize;
    int ch = c / (ksize * ksize);
    for (int y = 0; y < out_h; y++) {
      for (int x = 0; x < out_w; x++) {
        int row = ky + y * stride;
        int column = kx + x * stride;
        col[(c * out_h + y) * out_w + x] =
            im2col_get_pixel(im, height, width, row, column, ch, pad);
      }
    }
  }
}
"""

MAXPOOL_SOURCE = """
void forward_maxpool(float *input, float *output, int in_h, int in_w,
                     int channels, int size, int stride, int pad) {
  int out_h = (in_h + 2 * pad - size) / stride + 1;
  int out_w = (in_w + 2 * pad - size) / stride + 1;
  for (int ch = 0; ch < channels; ch++) {
    for (int oh = 0; oh < out_h; oh++) {
      for (int ow = 0; ow < out_w; ow++) {
        float best = -3.4e38f;
        for (int ky = 0; ky < size; ky++) {
          for (int kx = 0; kx < size; kx++) {
            int iy = oh * stride + ky - pad;
            int ix = ow * stride + kx - pad;
            if (iy >= 0 && iy < in_h && ix >= 0 && ix < in_w) {
              float value = input[(ch * in_h + iy) * in_w + ix];
              if (value > best) {
                best = value;
              }
            }
          }
        }
        output[(ch * out_h + oh) * out_w + ow] = best;
      }
    }
  }
}
"""

REGION_SOURCE = """
float logistic(float x) {
  return 1.0f / (1.0f + expf(-x));
}

void softmax(float *input, int n, float *output) {
  float largest = -3.4e38f;
  for (int i = 0; i < n; i++) {
    if (input[i] > largest) {
      largest = input[i];
    }
  }
  float sum = 0.0f;
  for (int i = 0; i < n; i++) {
    output[i] = expf(input[i] - largest);
    sum += output[i];
  }
  if (sum > 0.0f) {
    for (int i = 0; i < n; i++) {
      output[i] /= sum;
    }
  } else {
    for (int i = 0; i < n; i++) {
      output[i] = 1.0f / n;
    }
  }
}

int decode_region(float *feat, int cells, int classes, float thresh,
                  float *out) {
  int stride = 5 + classes;
  int count = 0;
  float probs[16];
  for (int cell = 0; cell < cells; cell++) {
    float objectness = logistic(feat[cell * stride + 4]);
    if (objectness < thresh) {
      continue;
    }
    softmax(feat + cell * stride + 5, classes, probs);
    int best = 0;
    for (int k = 1; k < classes; k++) {
      if (probs[k] > probs[best]) {
        best = k;
      }
    }
    out[count * 6 + 0] = logistic(feat[cell * stride + 0]);
    out[count * 6 + 1] = logistic(feat[cell * stride + 1]);
    out[count * 6 + 2] = feat[cell * stride + 2];
    out[count * 6 + 3] = feat[cell * stride + 3];
    out[count * 6 + 4] = objectness * probs[best];
    out[count * 6 + 5] = best;
    count++;
  }
  return count;
}
"""

CONVOLUTIONAL_SOURCE = """
void scale_bias(float *output, float *scales, int filters, int spatial) {
  for (int f = 0; f < filters; f++) {
    for (int s = 0; s < spatial; s++) {
      output[f * spatial + s] *= scales[f];
    }
  }
}

void add_bias(float *output, float *biases, int filters, int spatial) {
  for (int f = 0; f < filters; f++) {
    for (int s = 0; s < spatial; s++) {
      output[f * spatial + s] += biases[f];
    }
  }
}

void forward_convolutional(float *output, float *biases, float *scales,
                           float *mean, float *variance, int filters,
                           int spatial, int batch_normalize, int groups,
                           int activation) {
  if (groups > 1) {
    int group_size = filters / groups;
    for (int g = 0; g < groups; g++) {
      for (int f = 0; f < group_size; f++) {
        int filter = g * group_size + f;
        for (int s = 0; s < spatial; s++) {
          output[filter * spatial + s] *= 0.5f;
        }
      }
    }
  }
  if (batch_normalize != 0) {
    for (int f = 0; f < filters; f++) {
      float deviation = sqrtf(variance[f]) + 0.000001f;
      for (int s = 0; s < spatial; s++) {
        int index = f * spatial + s;
        output[index] = (output[index] - mean[f]) / deviation;
      }
    }
    scale_bias(output, scales, filters, spatial);
  }
  add_bias(output, biases, filters, spatial);
  if (activation == 2) {
    for (int i = 0; i < filters * spatial; i++) {
      output[i] = output[i] > 0.0f ? output[i] : 0.1f * output[i];
    }
  } else if (activation == 1) {
    for (int i = 0; i < filters * spatial; i++) {
      output[i] = 1.0f / (1.0f + expf(-output[i]));
    }
  }
}
"""

UPSAMPLE_SOURCE = """
void forward_upsample(float *input, float *output, int h, int w,
                      int channels, int stride, float scale) {
  int out_h = h * stride;
  int out_w = w * stride;
  for (int ch = 0; ch < channels; ch++) {
    for (int oy = 0; oy < out_h; oy++) {
      for (int ox = 0; ox < out_w; ox++) {
        int iy = oy / stride;
        int ix = ox / stride;
        float value = input[(ch * h + iy) * w + ix];
        if (scale != 1.0f) {
          value *= scale;
        }
        output[(ch * out_h + oy) * out_w + ox] = value;
      }
    }
  }
}
"""

IMAGE_SOURCE = """
float get_pixel(float *im, int h, int w, int x, int y, int c) {
  if (x < 0 || x >= w || y < 0 || y >= h) {
    return 0.0f;
  }
  return im[(c * h + y) * w + x];
}

float bilinear_interpolate(float *im, int h, int w, float x, float y,
                           int c) {
  int ix = (int)floorf(x);
  int iy = (int)floorf(y);
  float dx = x - ix;
  float dy = y - iy;
  float value = (1.0f - dy) * (1.0f - dx) * get_pixel(im, h, w, ix, iy, c)
      + dy * (1.0f - dx) * get_pixel(im, h, w, ix, iy + 1, c)
      + (1.0f - dy) * dx * get_pixel(im, h, w, ix + 1, iy, c)
      + dy * dx * get_pixel(im, h, w, ix + 1, iy + 1, c);
  return value;
}

void resize_image(float *im, int h, int w, int channels, float *out,
                  int out_h, int out_w) {
  float w_scale = (float)(w - 1) / (out_w - 1);
  float h_scale = (float)(h - 1) / (out_h - 1);
  for (int c = 0; c < channels; c++) {
    for (int y = 0; y < out_h; y++) {
      for (int x = 0; x < out_w; x++) {
        float sx = x * w_scale;
        float sy = y * h_scale;
        out[(c * out_h + y) * out_w + x] =
            bilinear_interpolate(im, h, w, sx, sy, c);
      }
    }
  }
}

void constrain_image(float *im, int n) {
  for (int i = 0; i < n; i++) {
    if (im[i] < 0.0f) {
      im[i] = 0.0f;
    }
    if (im[i] > 1.0f) {
      im[i] = 1.0f;
    }
  }
}
"""

#: All YOLO module files, in the order Figure 5 lists them.
YOLO_FILES: Dict[str, str] = {
    "activations.c": ACTIVATIONS_SOURCE,
    "blas.c": BLAS_SOURCE,
    "box.c": BOX_SOURCE,
    "convolutional_layer.c": CONVOLUTIONAL_SOURCE,
    "gemm.c": GEMM_SOURCE,
    "im2col.c": IM2COL_SOURCE,
    "image.c": IMAGE_SOURCE,
    "maxpool_layer.c": MAXPOOL_SOURCE,
    "region_layer.c": REGION_SOURCE,
    "upsample.c": UPSAMPLE_SOURCE,
}


def _activation_values(rng: np.random.Generator, count: int) -> List[float]:
    """Post-convolution activations: mostly small, both signs."""
    return list(rng.normal(0.0, 1.0, size=count))


def scenario_suite(filename: str, seed: int = 7) -> List[TestVector]:
    """The real-scenario test vectors for one YOLO file.

    These emulate what running recorded driving scenes through the
    detector exercises: leaky/linear activations, NN GEMM with beta=1,
    contiguous BLAS, pad-0 pooling, pad-1 im2col, and region decoding at
    the production objectness threshold.
    """
    rng = np.random.default_rng(seed)
    if filename == "activations.c":
        values = _activation_values(rng, 24)
        return [
            TestVector("activate_array", (list(values), 24, 2),
                       name="conv leaky activation"),
            TestVector("activate_array", (list(values), 24, 0),
                       name="head linear activation"),
            TestVector("activate_array", (list(values), 24, 1),
                       name="lane-probability logistic activation"),
            TestVector("activate", (1.5, 2), expected=1.5),
            TestVector("activate", (-2.0, 2), expected=-0.2),
            TestVector("gradient", (0.7, 2), expected=1.0),
            TestVector("gradient", (-0.7, 2), expected=0.1),
        ]
    if filename == "gemm.c":
        m, n, k = 4, 6, 5
        a = list(rng.normal(size=m * k))
        b = list(rng.normal(size=k * n))
        return [
            TestVector("gemm_cpu",
                       (0, 0, m, n, k, 1.0, a, k, b, n, 1.0,
                        [0.0] * (m * n), n),
                       name="conv lowered GEMM (NN, beta=1)"),
            TestVector("gemm_cpu",
                       (0, 0, m, n, k, 1.0, a, k, b, n, 0.0,
                        list(rng.normal(size=m * n)), n),
                       name="head GEMM (NN, beta=0 fresh output)"),
            TestVector("gemm_flops", (m, n, k, 1), expected=2 * m * n * k
                       + m * n),
        ]
    if filename == "blas.c":
        n = 16
        x = list(rng.normal(size=n))
        y = list(rng.normal(size=n))
        mean = [0.0] * 4
        return [
            TestVector("fill_cpu", (n, 0.0, [1.0] * n, 1)),
            TestVector("copy_cpu", (n, x, 1, [0.0] * n, 1)),
            TestVector("axpy_cpu", (n, 0.5, x, 1, y, 1)),
            TestVector("axpy_cpu", (n // 2, 0.5, x, 2, y, 2),
                       name="strided shortcut-layer axpy"),
            TestVector("scal_cpu", (n, 1.1, list(x), 1)),
            TestVector("mean_cpu", (list(rng.normal(size=16)), 1, 4, 4,
                                    mean)),
            TestVector("normalize_cpu",
                       (list(rng.normal(size=16)), [0.1] * 4, [1.0] * 4,
                        1, 4, 4)),
        ]
    if filename == "box.c":
        overlapping = [0.5, 0.5, 0.4, 0.4, 0.55, 0.55, 0.4, 0.4,
                       0.9, 0.9, 0.1, 0.1]
        scores = [0.9, 0.8, 0.7]
        return [
            TestVector("box_iou", ([0.5, 0.5, 0.4, 0.4],
                                   [0.55, 0.55, 0.4, 0.4])),
            TestVector("box_iou", ([0.2, 0.2, 0.1, 0.1],
                                   [0.8, 0.8, 0.1, 0.1]), expected=0.0),
            TestVector("do_nms", (overlapping, scores, 3, 0.45),
                       expected=2),
        ]
    if filename == "im2col.c":
        image = list(rng.normal(size=2 * 6 * 6))
        col = [0.0] * (2 * 3 * 3 * 36)
        return [
            TestVector("im2col_cpu", (image, 2, 6, 6, 3, 1, 1, col),
                       name="3x3 stride-1 pad-1 conv lowering"),
        ]
    if filename == "maxpool_layer.c":
        image = list(rng.normal(size=2 * 8 * 8))
        out = [0.0] * (2 * 4 * 4)
        return [
            TestVector("forward_maxpool", (image, out, 8, 8, 2, 2, 2, 0),
                       name="2x2 stride-2 maxpool"),
        ]
    if filename == "region_layer.c":
        classes = 4
        cells = 6
        feat: List[float] = []
        for cell in range(cells):
            # Two confident cells, the rest below threshold.
            objectness = 2.0 if cell in (1, 4) else -3.0
            feat.extend(rng.normal(0.0, 0.5, size=4))
            feat.append(objectness)
            feat.extend(rng.normal(0.0, 1.0, size=classes))
        out = [0.0] * (cells * 6)
        return [
            TestVector("decode_region", (feat, cells, classes, 0.5, out),
                       expected=2, name="region decode at 0.5 threshold"),
            TestVector("logistic", (0.0,), expected=0.5),
        ]
    if filename == "convolutional_layer.c":
        filters, spatial = 4, 9
        output = list(rng.normal(size=filters * spatial))
        biases = list(rng.normal(0.0, 0.1, size=filters))
        scales = list(rng.uniform(0.8, 1.2, size=filters))
        mean = list(rng.normal(0.0, 0.2, size=filters))
        variance = list(rng.uniform(0.5, 1.5, size=filters))
        return [
            TestVector("forward_convolutional",
                       (list(output), biases, scales, mean, variance,
                        filters, spatial, 1, 1, 2),
                       name="bn conv + leaky"),
            TestVector("forward_convolutional",
                       (list(output), biases, scales, mean, variance,
                        filters, spatial, 0, 1, 0),
                       name="head conv, no bn, linear"),
            TestVector("forward_convolutional",
                       (list(output), biases, scales, mean, variance,
                        filters, spatial, 0, 1, 1),
                       name="lane-probability conv, logistic"),
        ]
    if filename == "upsample.c":
        image = list(rng.normal(size=2 * 4 * 4))
        out = [0.0] * (2 * 8 * 8)
        return [
            TestVector("forward_upsample", (image, out, 4, 4, 2, 2, 1.0),
                       name="2x nearest upsample"),
        ]
    if filename == "image.c":
        image = list(rng.uniform(0.0, 1.3, size=3 * 8 * 8))
        out = [0.0] * (3 * 6 * 6)
        return [
            TestVector("resize_image", (image, 8, 8, 3, out, 6, 6),
                       name="camera frame letterbox resize"),
            TestVector("constrain_image", (list(image), 3 * 8 * 8)),
            TestVector("get_pixel", (image, 8, 8, 2, 3, 0)),
        ]
    raise KeyError(f"no scenario suite for {filename!r}")


def yolo_runners(filenames=None, seed: int = 7
                 ) -> Dict[str, CoverageRunner]:
    """Run the real-scenario suite over each YOLO file.

    Returns the executed :class:`CoverageRunner` per filename, raw
    collectors intact, so callers can derive campaign percentages,
    per-line annotation, or Cobertura hit counts from one execution.
    """
    filenames = list(filenames or YOLO_FILES)
    runners: Dict[str, CoverageRunner] = {}
    for filename in filenames:
        runner = CoverageRunner(YOLO_FILES[filename], filename)
        outcomes = runner.run_suite(scenario_suite(filename, seed))
        failures = [outcome for outcome in outcomes if not outcome.passed]
        if failures:
            details = "; ".join(
                f"{outcome.vector.label()}: {outcome.error}"
                for outcome in failures)
            raise RuntimeError(f"scenario failures in {filename}: {details}")
        runners[filename] = runner
    return runners


def run_yolo_coverage(filenames=None, with_mcdc: bool = True,
                      seed: int = 7) -> CoverageCampaign:
    """Run the real-scenario suite over each YOLO file; Figure 5's data."""
    records: List[FileCoverage] = [
        runner.coverage(with_mcdc=with_mcdc, exclude_uncalled=True)
        for runner in yolo_runners(filenames, seed).values()]
    return CoverageCampaign(files=records)
