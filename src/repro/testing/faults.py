"""Deterministic fault injection for the assessment pipeline.

The fault-isolation layer (crash containment in the checker stages,
worker retry and serial fallback in :mod:`repro.core.parallel`, corrupt
cache recovery in :mod:`repro.core.cache`) must be *exercised*, not
believed.  This module provides the controlled failures the
``tests/robustness`` suites inject:

* :class:`FaultPlan` — a declarative plan of faults, each fired at a
  specific call site either on the N-th call or on a specific file
  path.  Path triggers are the deterministic choice when worker chunks
  run in separate processes (each process holds its own pickled copy of
  the plan, so call counters do not aggregate across workers).
* :class:`FaultyChecker` — a benign per-unit checker that detonates the
  plan from inside the checker stage, via
  :attr:`~repro.core.config.PipelineConfig.extra_checkers`.
* :func:`corrupt_cache_entries` / :func:`plant_stale_tmp` — disk-level
  damage for :class:`~repro.core.cache.ResultCache` recovery tests.

Run ``python -m repro.testing.faults`` for a self-contained smoke test
(used by CI): it injects a crashing checker into a small synthetic
corpus and asserts both the degraded completion and the ``strict``
abort.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..checkers.base import Checker, CheckerReport
from ..core.cache import ResultCache
from ..lang.cppmodel import TranslationUnit

#: Recognized fault kinds.
FAULT_KINDS = ("raise", "hang", "unpicklable", "exit")


class FaultInjected(RuntimeError):
    """The injected crash.

    Deliberately *not* a :class:`~repro.errors.ReproError`: expected
    analysis errors pass through containment untouched, so the harness
    must raise from outside that hierarchy to hit the containment path.
    """


class WorkerExit(RuntimeError):
    """Raised in place of ``os._exit`` when an ``exit`` fault fires in
    the originating process (where killing would take the test down)."""


@dataclass
class Fault:
    """One planned failure.

    Attributes:
        kind: one of :data:`FAULT_KINDS` — ``raise`` (crash with
            :class:`FaultInjected`), ``hang`` (sleep ``seconds``),
            ``unpicklable`` (poison the result so it cannot cross a
            process boundary or enter the cache), ``exit`` (kill the
            worker process outright, for ``BrokenProcessPool`` drills).
        site: logical call site the fault arms, e.g. ``"check_unit"``.
        on_call: 1-based call index (per site) that triggers, when no
            ``path`` is given.
        path: trigger on this file instead of a call count —
            deterministic across process-pool workers.
        seconds: sleep duration for ``hang``.
        message: exception text for ``raise``.
        exit_code: status for ``exit``.
    """

    kind: str
    site: str = "check_unit"
    on_call: int = 1
    path: str = ""
    seconds: float = 0.25
    message: str = "injected fault"
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, "
                             f"got {self.kind!r}")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults; each fires exactly once.

    Picklable (it rides inside :class:`FaultyChecker` across process
    pools).  ``origin_pid`` is recorded at construction so an ``exit``
    fault only kills *worker* processes: fired in the originating
    process — e.g. during the engine's serial fallback — it raises
    :class:`WorkerExit` instead, keeping the test process alive while
    still being observable.
    """

    faults: List[Fault] = field(default_factory=list)
    calls: Dict[str, int] = field(default_factory=dict)
    fired: List[str] = field(default_factory=list)
    spent: Set[int] = field(default_factory=set)
    origin_pid: int = field(default_factory=os.getpid)

    def fire(self, site: str, path: str = "") -> Optional[str]:
        """Advance the ``site`` call counter and detonate any matching
        armed fault.  Returns the kind it applied (``raise`` raises
        instead), or ``None``."""
        call = self.calls.get(site, 0) + 1
        self.calls[site] = call
        for index, fault in enumerate(self.faults):
            if index in self.spent or fault.site != site:
                continue
            if fault.path:
                if fault.path != path:
                    continue
            elif call != fault.on_call:
                continue
            self.spent.add(index)
            self.fired.append(f"{fault.kind}@{site}:{path or call}")
            if fault.kind == "raise":
                raise FaultInjected(fault.message)
            if fault.kind == "hang":
                time.sleep(fault.seconds)
                return "hang"
            if fault.kind == "exit":
                if os.getpid() != self.origin_pid:
                    os._exit(fault.exit_code)
                raise WorkerExit(
                    f"exit fault fired in the originating process "
                    f"(pid {self.origin_pid})")
            return fault.kind
        return None


def unpicklable_value() -> object:
    """A value :mod:`pickle` rejects (``TypeError``) on any protocol."""
    return threading.Lock()


class FaultyChecker(Checker):
    """A per-unit checker whose only job is detonating a fault plan.

    Benign by default: with an empty (or exhausted) plan every unit
    yields an empty report, so a fault-free run with the injector
    installed is a valid comparison baseline for a faulted one.
    """

    name = "fault_injector"
    version = "fault-injector:1"

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()

    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        kind = self.plan.fire("check_unit", unit.filename)
        report = CheckerReport(checker=self.name)
        if kind == "unpicklable":
            # Ride outside ``stats`` (whose values get summed on merge);
            # the attribute still poisons any pickle of the report.
            report.payload = unpicklable_value()
        return report

    def fingerprint(self) -> str:
        # Key cached bundles on the *planned* faults (not the mutable
        # spent/counter state): two benign runs share entries, while a
        # faulted run never replays a differently-faulted run's cache.
        return f"{super().fingerprint()}@faults:{self.plan.faults!r}"


# ----------------------------------------------------------------------
# disk-level damage


def corrupt_cache_entries(cache: ResultCache, count: int = 1,
                          junk: bytes = b"\x80\x05corrupt") -> int:
    """Overwrite up to ``count`` cache entries with garbage, in sorted
    path order (deterministic).  Returns how many were damaged."""
    damaged = 0
    try:
        subdirectories = sorted(os.listdir(cache.root))
    except OSError:
        return 0
    for subdirectory in subdirectories:
        directory = os.path.join(cache.root, subdirectory)
        if not os.path.isdir(directory):
            continue
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".pkl"):
                continue
            with open(os.path.join(directory, name), "wb") as handle:
                handle.write(junk)
            damaged += 1
            if damaged >= count:
                return damaged
    return damaged


def plant_stale_tmp(cache: ResultCache, count: int = 1) -> List[str]:
    """Create ``count`` stale ``*.tmp.<pid>`` leftovers (dead pid 0),
    as a crashed writer would; returns their paths."""
    directory = os.path.join(cache.root, "00")
    os.makedirs(directory, exist_ok=True)
    paths = []
    for index in range(count):
        path = os.path.join(directory, f"stale{index}.pkl.tmp.0")
        with open(path, "wb") as handle:
            handle.write(b"partial write")
        paths.append(path)
    return paths


# ----------------------------------------------------------------------
# CI smoke


def _smoke() -> int:
    """End-to-end self-check of the containment stack (used by CI)."""
    from ..core.config import PipelineConfig
    from ..core.pipeline import assess_sources
    from ..corpus.apollo import apollo_spec
    from ..corpus.generator import generate_corpus

    sources = generate_corpus(
        apollo_spec(scale=0.05, seed=26262)).sources()
    target = sorted(sources)[0]

    plan = FaultPlan([Fault("raise", site="check_unit", path=target)])
    result = assess_sources(sources, PipelineConfig(
        jobs=2, executor="thread",
        extra_checkers=(FaultyChecker(plan),)))
    assert result.degraded, "injected crash was not contained"
    assert any(crash.checker == "fault_injector"
               for crash in result.crashes), result.crashes
    document = result.to_dict()
    assert document["degraded"] is True
    assert document["degradations"][0]["checker"] == "fault_injector"

    clean = assess_sources(sources, PipelineConfig(
        jobs=2, executor="thread",
        extra_checkers=(FaultyChecker(FaultPlan()),)))
    assert not clean.degraded
    for name, report in clean.reports.items():
        if name == "fault_injector":
            continue
        faulted = result.reports[name]
        assert [f.located() for f in report.findings] == \
            [f.located() for f in faulted.findings], \
            f"checker {name} findings changed under an unrelated fault"

    strict_plan = FaultPlan([Fault("raise", site="check_unit",
                                   path=target)])
    try:
        assess_sources(sources, PipelineConfig(
            strict=True,
            extra_checkers=(FaultyChecker(strict_plan),)))
    except FaultInjected:
        pass
    else:
        raise AssertionError("strict mode did not abort on the fault")

    print("fault-injection smoke: OK "
          f"({len(result.crashes)} contained crash, strict aborts)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_smoke())
