"""Test-support utilities shipped with the library.

Production code never imports from here; the robustness suites (and
anyone reproducing a degradation report) drive the deterministic
fault-injection harness in :mod:`repro.testing.faults`.
"""

from .faults import (
    Fault,
    FaultInjected,
    FaultPlan,
    FaultyChecker,
    WorkerExit,
    corrupt_cache_entries,
    plant_stale_tmp,
    unpicklable_value,
)

__all__ = [
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "FaultyChecker",
    "WorkerExit",
    "corrupt_cache_entries",
    "plant_stale_tmp",
    "unpicklable_value",
]
