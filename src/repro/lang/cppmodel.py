"""Fuzzy structural model of a C/C++/CUDA translation unit.

This module plays the role Lizard plays in the paper: it extracts functions,
classes, namespaces and file-scope variables from arbitrary industrial
C++/CUDA source *without* building a full C++ AST.  It works on the token
stream with brace/paren matching, which makes it robust to templates,
macros, and the CUDA dialect, at the cost of being heuristic for the
genuinely ambiguous corners of C++ (which it resolves the way a metric tool
would: conservatively).

The produced :class:`TranslationUnit` is the substrate for every metric and
checker in :mod:`repro.metrics` and :mod:`repro.checkers`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from . import preprocessor as _preprocessor
from .lexer import tokenize
from .tokens import CUDA_KEYWORDS, Token, TokenKind

#: Keywords that open a decision point for cyclomatic complexity, matching
#: Lizard's default counting rules.
_DECISION_KEYWORDS = frozenset({"if", "for", "while", "case", "catch"})

#: Punctuators that add a decision point (short-circuit operators and the
#: ternary operator).
_DECISION_PUNCTS = frozenset({"&&", "||", "?"})

#: Built-in type keywords used by the C-style-cast and declaration heuristics.
TYPE_KEYWORDS = frozenset({
    "void", "bool", "char", "short", "int", "long", "float", "double",
    "signed", "unsigned", "auto",
})

#: Identifiers that allocate dynamic memory (Table 8 item 2 evidence).
ALLOCATION_CALLS = frozenset({
    "malloc", "calloc", "realloc", "cudaMalloc", "cudaMallocManaged",
    "cudaMallocHost", "cudaHostAlloc", "make_shared", "make_unique",
})

#: Identifiers that release dynamic memory.
DEALLOCATION_CALLS = frozenset({"free", "cudaFree", "cudaFreeHost"})

_FUNCTION_TRAILER_KEYWORDS = frozenset({
    "const", "noexcept", "override", "final", "volatile", "throw", "try",
    "mutable", "constexpr",
})

_DECLARATION_SPECIFIERS = frozenset({
    "static", "extern", "inline", "const", "constexpr", "volatile",
    "register", "mutable", "typename", "virtual", "explicit", "friend",
}) | TYPE_KEYWORDS | CUDA_KEYWORDS


@dataclass
class Parameter:
    """One formal parameter of a function signature."""

    text: str
    name: str
    is_pointer: bool
    is_reference: bool
    is_const: bool


@dataclass
class FunctionInfo:
    """Everything the analyzers need to know about one function definition.

    ``body_start``/``body_end`` are indices into the translation unit's
    *code* token list, pointing at the opening and closing braces.
    """

    name: str
    qualified_name: str
    start_line: int
    end_line: int
    parameters: List[Parameter] = field(default_factory=list)
    body_start: int = -1
    body_end: int = -1
    cyclomatic_complexity: int = 1
    token_count: int = 0
    nloc: int = 0
    return_count: int = 0
    goto_count: int = 0
    break_count: int = 0
    continue_count: int = 0
    throw_count: int = 0
    max_nesting: int = 0
    calls: List[str] = field(default_factory=list)
    pointer_operations: int = 0
    allocation_calls: int = 0
    deallocation_calls: int = 0
    new_expressions: int = 0
    delete_expressions: int = 0
    kernel_launches: int = 0
    is_cuda_kernel: bool = False
    is_device_function: bool = False
    is_static: bool = False
    namespace: str = ""
    class_name: str = ""

    @property
    def parameter_count(self) -> int:
        return len(self.parameters)

    @property
    def length_in_lines(self) -> int:
        """Source lines spanned by the definition, inclusive."""
        return self.end_line - self.start_line + 1

    @property
    def exit_points(self) -> int:
        """Explicit exit points: returns plus throws (gotos counted apart).

        A function whose body contains no ``return`` still exits by falling
        off the end, so the count is at least one.
        """
        return max(1, self.return_count + self.throw_count)

    @property
    def has_multiple_exits(self) -> bool:
        """Table 8 item 1: more than one exit point, or any goto."""
        return self.exit_points > 1 or self.goto_count > 0

    @property
    def uses_dynamic_memory(self) -> bool:
        """Table 8 item 2: any allocation in the body."""
        return (self.allocation_calls > 0 or self.new_expressions > 0)

    @property
    def is_gpu_code(self) -> bool:
        return self.is_cuda_kernel or self.is_device_function


@dataclass
class ClassInfo:
    """A class/struct/union definition at namespace scope (or nested)."""

    name: str
    kind: str
    start_line: int
    end_line: int
    namespace: str = ""
    bases: List[str] = field(default_factory=list)
    method_names: List[str] = field(default_factory=list)
    public_method_names: List[str] = field(default_factory=list)
    field_count: int = 0

    @property
    def qualified_name(self) -> str:
        if self.namespace:
            return f"{self.namespace}::{self.name}"
        return self.name

    @property
    def interface_size(self) -> int:
        """Number of public methods — the Table 3 item 3 evidence."""
        return len(self.public_method_names)


@dataclass
class GlobalVariable:
    """A mutable variable declared at file or namespace scope."""

    name: str
    type_text: str
    line: int
    namespace: str = ""
    is_const: bool = False
    is_static: bool = False
    is_extern: bool = False
    is_constexpr: bool = False

    @property
    def is_mutable_global(self) -> bool:
        """True for the globals ISO 26262 Table 8 item 5 cares about."""
        return not (self.is_const or self.is_constexpr)


@dataclass
class TranslationUnit:
    """The fuzzy model of one source file."""

    filename: str
    tokens: List[Token]
    code: List[Token]
    functions: List[FunctionInfo]
    classes: List[ClassInfo]
    namespaces: List[str]
    globals: List[GlobalVariable]
    preprocessor: _preprocessor.PreprocessorSummary
    line_count: int

    def function(self, name: str) -> FunctionInfo:
        """Look up a function by bare or qualified name."""
        for candidate in self.functions:
            if candidate.name == name or candidate.qualified_name == name:
                return candidate
        raise KeyError(f"{self.filename} defines no function {name!r}")

    def body_tokens(self, function: FunctionInfo) -> List[Token]:
        """The code tokens of a function body, braces included."""
        if function.body_start < 0:
            return []
        return self.code[function.body_start:function.body_end + 1]

    @property
    def cuda_functions(self) -> List[FunctionInfo]:
        return [function for function in self.functions if function.is_gpu_code]

    @property
    def mutable_globals(self) -> List[GlobalVariable]:
        return [variable for variable in self.globals
                if variable.is_mutable_global]


class _Scope:
    """One entry of the builder's nesting stack."""

    __slots__ = ("kind", "name", "access")

    def __init__(self, kind: str, name: str, access: str = "private") -> None:
        self.kind = kind  # "namespace" | "class" | "block"
        self.name = name
        self.access = access


class CppModelBuilder:
    """Builds a :class:`TranslationUnit` from source text."""

    def __init__(self, source: str, filename: str = "<memory>") -> None:
        self.source = source
        self.filename = filename
        self.tokens = tokenize(source, filename, strict=False)
        self.code = [token for token in self.tokens
                     if token.kind not in (TokenKind.COMMENT,
                                           TokenKind.PREPROCESSOR)]
        self.functions: List[FunctionInfo] = []
        self.classes: List[ClassInfo] = []
        self.namespaces: List[str] = []
        self.globals: List[GlobalVariable] = []
        self._scopes: List[_Scope] = []

    # ------------------------------------------------------------------
    # public entry point

    def build(self) -> TranslationUnit:
        self._scan(0, len(self.code))
        line_count = self.source.count("\n") + (1 if self.source else 0)
        return TranslationUnit(
            filename=self.filename,
            tokens=self.tokens,
            code=self.code,
            functions=self.functions,
            classes=self.classes,
            namespaces=self.namespaces,
            globals=self.globals,
            preprocessor=_preprocessor.summarize_tokens(self.tokens),
            line_count=line_count,
        )

    # ------------------------------------------------------------------
    # scope-level scanning

    def _scan(self, start: int, end: int) -> None:
        """Scan tokens in [start, end) at namespace/class scope."""
        index = start
        code = self.code
        keyword = TokenKind.KEYWORD
        punct = TokenKind.PUNCT
        while index < end:
            token = code[index]
            kind = token.kind
            if kind is keyword:
                text = token.text
                if text == "namespace":
                    index = self._handle_namespace(index, end)
                elif text in ("class", "struct", "union"):
                    index = self._handle_class(index, end)
                elif text == "enum":
                    index = self._skip_enum(index, end)
                elif text == "template":
                    index = self._skip_template_header(index, end)
                elif text in ("typedef", "using"):
                    index = self._skip_to_semicolon(index, end)
                elif text == "extern" and index + 1 < end \
                        and code[index + 1].kind is TokenKind.STRING:
                    index = self._handle_extern_c(index, end)
                elif (text in ("public", "private", "protected")
                      and index + 1 < end
                      and code[index + 1].is_punct(":")):
                    if self._scopes and self._scopes[-1].kind == "class":
                        self._scopes[-1].access = text
                    index += 2
                else:
                    index = self._handle_declaration(index, end)
            elif kind is punct:
                text = token.text
                if text == "{":
                    index = self._match_brace(index, end) + 1
                elif text == "}":
                    if self._scopes:
                        self._scopes.pop()
                    index += 1
                elif text == ";":
                    index += 1
                else:
                    index = self._handle_declaration(index, end)
            else:
                index = self._handle_declaration(index, end)

    def _handle_namespace(self, index: int, end: int) -> int:
        cursor = index + 1
        name_parts: List[str] = []
        while cursor < end and self.code[cursor].kind is TokenKind.IDENTIFIER:
            name_parts.append(self.code[cursor].text)
            cursor += 1
            if cursor < end and self.code[cursor].is_punct("::"):
                cursor += 1
            else:
                break
        if cursor < end and self.code[cursor].is_punct("="):
            # Namespace alias: skip to the semicolon.
            return self._skip_to_semicolon(cursor, end)
        if cursor < end and self.code[cursor].is_punct("{"):
            name = "::".join(name_parts)
            qualified = self._qualify_namespace(name)
            if qualified and qualified not in self.namespaces:
                self.namespaces.append(qualified)
            self._scopes.append(_Scope("namespace", name))
            return cursor + 1
        return cursor + 1

    def _handle_extern_c(self, index: int, end: int) -> int:
        cursor = index + 2
        if cursor < end and self.code[cursor].is_punct("{"):
            self._scopes.append(_Scope("namespace", ""))
            return cursor + 1
        # `extern "C" void f();` — treat like a plain declaration.
        return self._handle_declaration(cursor, end)

    def _handle_class(self, index: int, end: int) -> int:
        kind = self.code[index].text
        cursor = index + 1
        # Skip attributes and alignment specifiers before the name.
        while cursor < end and self.code[cursor].is_punct("["):
            cursor = self._match_bracket(cursor, end) + 1
        name = ""
        if cursor < end and self.code[cursor].kind is TokenKind.IDENTIFIER:
            name = self.code[cursor].text
            cursor += 1
        if cursor < end and self.code[cursor].is_punct("<"):
            cursor = self._match_angle(cursor, end) + 1
        if cursor < end and self.code[cursor].is_punct(";"):
            return cursor + 1  # forward declaration
        bases: List[str] = []
        if cursor < end and self.code[cursor].is_punct(":"):
            cursor += 1
            while cursor < end and not self.code[cursor].is_punct("{"):
                if self.code[cursor].kind is TokenKind.IDENTIFIER:
                    bases.append(self.code[cursor].text)
                cursor += 1
        if cursor < end and self.code[cursor].is_punct("{"):
            info = ClassInfo(
                name=name or "<anonymous>",
                kind=kind,
                start_line=self.code[index].line,
                end_line=self.code[index].line,
                namespace=self._current_namespace(),
                bases=bases,
            )
            self.classes.append(info)
            default_access = "public" if kind in ("struct", "union") else "private"
            self._scopes.append(_Scope("class", info.name, default_access))
            return cursor + 1
        # Elaborated type specifier (e.g. `struct Foo bar;`): treat the
        # remainder as an ordinary declaration.
        return self._handle_declaration(cursor, end)

    def _skip_enum(self, index: int, end: int) -> int:
        cursor = index + 1
        while cursor < end and not (self.code[cursor].is_punct("{")
                                    or self.code[cursor].is_punct(";")):
            cursor += 1
        if cursor < end and self.code[cursor].is_punct("{"):
            cursor = self._match_brace(cursor, end) + 1
            return self._skip_to_semicolon(cursor - 1, end)
        return cursor + 1

    def _skip_template_header(self, index: int, end: int) -> int:
        cursor = index + 1
        if cursor < end and self.code[cursor].is_punct("<"):
            return self._match_angle(cursor, end) + 1
        return cursor

    # ------------------------------------------------------------------
    # declaration / function-definition scanning

    def _handle_declaration(self, index: int, end: int) -> int:
        """Scan a declaration starting at ``index`` at namespace/class scope.

        Decides between a function definition, a function declaration, and a
        variable declaration, and records the appropriate model entries.
        """
        head_start = index
        cursor = index
        operator_name: Optional[str] = None
        code = self.code
        punct = TokenKind.PUNCT
        while cursor < end:
            token = code[cursor]
            kind = token.kind
            if kind is punct:
                text = token.text
                if text == "[":
                    cursor = self._match_bracket(cursor, end) + 1
                    continue
                if text == "<":
                    matched = self._try_match_angle(cursor, end)
                    if matched >= 0:
                        cursor = matched + 1
                        continue
                    return cursor + 1
                if text == "(":
                    return self._after_head_paren(head_start, cursor, end,
                                                  operator_name)
                if text == "=" or text == ";":
                    return self._record_variable(head_start, cursor, end)
                if text == "{" or text == "}":
                    return cursor  # let _scan handle scope changes
                if text == ":" and not self._is_class_scope():
                    # Stray label-like construct at namespace scope; skip it.
                    return cursor + 1
            elif kind is TokenKind.KEYWORD and token.text == "operator":
                operator_name, cursor = self._scan_operator_name(cursor, end)
                continue
            cursor += 1
        return end

    def _scan_operator_name(self, index: int, end: int) -> Tuple[str, int]:
        cursor = index + 1
        symbol = ""
        while cursor < end and self.code[cursor].kind is TokenKind.PUNCT \
                and not self.code[cursor].is_punct("("):
            symbol += self.code[cursor].text
            cursor += 1
        if cursor + 1 < end and self.code[cursor].is_punct("(") \
                and self.code[cursor + 1].is_punct(")") and not symbol:
            symbol = "()"
            cursor += 2
        if not symbol and cursor < end \
                and self.code[cursor].kind in (TokenKind.IDENTIFIER,
                                               TokenKind.KEYWORD):
            # Conversion operator, e.g. `operator bool`.
            symbol = " " + self.code[cursor].text
            cursor += 1
        return f"operator{symbol}", cursor

    def _after_head_paren(self, head_start: int, paren: int, end: int,
                          operator_name: Optional[str]) -> int:
        name, name_index = self._signature_name(head_start, paren,
                                                operator_name)
        close = self._match_paren(paren, end)
        if close < 0:
            return end
        if name is None:
            # Not a plausible function signature (e.g. a function-pointer
            # type or an initializer); skip the parenthesized group.
            return self._skip_to_semicolon(close, end)
        cursor = close + 1
        # Trailer: cv-qualifiers, noexcept(...), override, trailing return.
        while cursor < end:
            token = self.code[cursor]
            if token.kind is TokenKind.KEYWORD \
                    and token.text in _FUNCTION_TRAILER_KEYWORDS:
                cursor += 1
                if cursor < end and self.code[cursor].is_punct("("):
                    cursor = self._match_paren(cursor, end) + 1
                continue
            if token.kind is TokenKind.IDENTIFIER \
                    and token.text in ("override", "final"):
                cursor += 1
                continue
            if token.is_punct("->"):
                cursor += 1
                while cursor < end and not (self.code[cursor].is_punct("{")
                                            or self.code[cursor].is_punct(";")
                                            or self.code[cursor].is_punct("=")):
                    if self.code[cursor].is_punct("<"):
                        cursor = self._match_angle(cursor, end)
                    cursor += 1
                continue
            break
        if cursor >= end:
            return end
        token = self.code[cursor]
        if token.is_punct(":"):
            # Constructor initializer list: advance to the body brace.
            cursor += 1
            depth = 0
            while cursor < end:
                entry = self.code[cursor]
                if entry.kind is TokenKind.PUNCT:
                    if entry.text in ("(", "["):
                        depth += 1
                    elif entry.text in (")", "]"):
                        depth -= 1
                    elif entry.text == "{" and depth == 0:
                        break
                    elif entry.text == ";" and depth == 0:
                        return cursor + 1
                    elif entry.text == "<":
                        matched = self._try_match_angle(cursor, end)
                        if matched >= 0:
                            cursor = matched
                cursor += 1
            token = self.code[cursor] if cursor < end else None
        if token is not None and token.is_punct("{"):
            return self._record_function(head_start, paren, close, cursor,
                                         end, name)
        if token is not None and token.is_punct(";"):
            self._record_method_declaration(head_start, name)
            return cursor + 1
        if token is not None and token.is_punct("="):
            # `= default;`, `= delete;`, or pure virtual `= 0;`.
            self._record_method_declaration(head_start, name)
            return self._skip_to_semicolon(cursor, end)
        if token is not None and token.is_punct(","):
            # Variable declared with a parenthesized initializer, followed
            # by more declarators.
            return self._skip_to_semicolon(cursor, end)
        return cursor + 1 if cursor < end else end

    def _signature_name(self, head_start: int, paren: int,
                        operator_name: Optional[str]) -> Tuple[Optional[str], int]:
        """The function name for a head ending at ``paren``, or None."""
        if operator_name is not None:
            return operator_name, paren - 1
        index = paren - 1
        if index < head_start:
            return None, -1
        token = self.code[index]
        if token.kind is not TokenKind.IDENTIFIER:
            return None, -1
        name = token.text
        if index - 1 >= head_start and self.code[index - 1].is_punct("~"):
            return "~" + name, index
        return name, index

    def _record_method_declaration(self, head_start: int, name: str) -> None:
        if not self._is_class_scope():
            return
        info = self._enclosing_class()
        if info is None:
            return
        info.method_names.append(name)
        if self._scopes[-1].access == "public":
            info.public_method_names.append(name)

    def _record_function(self, head_start: int, paren: int, close: int,
                         body_open: int, end: int, name: str) -> int:
        head = self.code[head_start:paren]
        body_close = self._match_brace(body_open, end)
        if body_close < 0:
            body_close = end - 1
        head_texts = {token.text for token in head}
        namespace = self._current_namespace()
        class_name = self._current_class_name()
        # Qualified definitions out of line: `void Foo::bar() { }`.
        qual_parts: List[str] = []
        index = paren - 2
        while index - 1 >= head_start and self.code[index].is_punct("::") \
                and self.code[index - 1].kind is TokenKind.IDENTIFIER:
            qual_parts.insert(0, self.code[index - 1].text)
            index -= 2
        if qual_parts and not class_name:
            class_name = "::".join(qual_parts)

        function = FunctionInfo(
            name=name,
            qualified_name=self._qualified_name(namespace, class_name, name),
            start_line=self.code[head_start].line,
            end_line=self.code[body_close].line,
            parameters=self._parse_parameters(paren, close),
            body_start=body_open,
            body_end=body_close,
            is_cuda_kernel="__global__" in head_texts,
            is_device_function="__device__" in head_texts,
            is_static="static" in head_texts,
            namespace=namespace,
            class_name=class_name,
        )
        self._analyze_body(function)
        self.functions.append(function)
        if self._is_class_scope():
            info = self._enclosing_class()
            if info is not None:
                info.method_names.append(name)
                if self._scopes[-1].access == "public":
                    info.public_method_names.append(name)
                info.end_line = max(info.end_line, function.end_line)
        return body_close + 1

    def _parse_parameters(self, paren: int, close: int) -> List[Parameter]:
        parameters: List[Parameter] = []
        segment: List[Token] = []
        depth = 0
        for index in range(paren + 1, close):
            token = self.code[index]
            if token.kind is TokenKind.PUNCT:
                if token.text in ("(", "[", "{", "<"):
                    depth += 1
                elif token.text in (")", "]", "}", ">"):
                    depth -= 1
                elif token.text == "," and depth == 0:
                    parameters.append(self._make_parameter(segment))
                    segment = []
                    continue
            segment.append(token)
        if segment:
            parameters.append(self._make_parameter(segment))
        return [parameter for parameter in parameters
                if parameter.text not in ("", "void")]

    @staticmethod
    def _make_parameter(tokens: Sequence[Token]) -> Parameter:
        text = " ".join(token.text for token in tokens)
        name = ""
        for token in reversed(tokens):
            if token.kind is TokenKind.IDENTIFIER:
                name = token.text
                break
        texts = [token.text for token in tokens]
        return Parameter(
            text=text,
            name=name,
            is_pointer="*" in texts,
            is_reference="&" in texts or "&&" in texts,
            is_const="const" in texts,
        )

    def _analyze_body(self, function: FunctionInfo) -> None:
        open_index, close_index = function.body_start, function.body_end
        complexity = 1
        depth = 0
        max_depth = 0
        lines = set()
        add_line = lines.add
        keyword = TokenKind.KEYWORD
        punct = TokenKind.PUNCT
        identifier = TokenKind.IDENTIFIER
        previous = None
        for token in self.code[open_index:close_index + 1]:
            add_line(token.line)
            kind = token.kind
            if kind is keyword:
                text = token.text
                if text in _DECISION_KEYWORDS:
                    complexity += 1
                elif text == "return":
                    function.return_count += 1
                elif text == "goto":
                    function.goto_count += 1
                elif text == "break":
                    function.break_count += 1
                elif text == "continue":
                    function.continue_count += 1
                elif text == "throw":
                    function.throw_count += 1
                elif text == "new":
                    function.new_expressions += 1
                elif text == "delete":
                    function.delete_expressions += 1
            elif kind is punct:
                text = token.text
                if text in _DECISION_PUNCTS:
                    complexity += 1
                elif text == "{":
                    depth += 1
                    if depth > max_depth:
                        max_depth = depth
                elif text == "}":
                    depth -= 1
                elif text == "*" or text == "->":
                    function.pointer_operations += 1
                elif text == "<<<":
                    function.kernel_launches += 1
                elif text == "(" and previous is not None \
                        and previous.kind is identifier:
                    name = previous.text
                    function.calls.append(name)
                    if name in ALLOCATION_CALLS:
                        function.allocation_calls += 1
                    elif name in DEALLOCATION_CALLS:
                        function.deallocation_calls += 1
            previous = token
        function.cyclomatic_complexity = complexity
        function.token_count = close_index - open_index + 1
        function.nloc = len(lines)
        # The body braces themselves are depth 1; report nesting *inside*.
        function.max_nesting = max(0, max_depth - 1)

    # ------------------------------------------------------------------
    # variable declarations

    def _record_variable(self, head_start: int, stop: int, end: int) -> int:
        """Record a namespace-scope variable whose head ends at ``stop``."""
        head = self.code[head_start:stop]
        if not head or self._is_class_scope():
            # Class data members are summarized via field_count only.
            info = self._enclosing_class()
            if info is not None and head:
                info.field_count += 1
            return self._skip_to_semicolon(stop, end)
        names = [token for token in head
                 if token.kind is TokenKind.IDENTIFIER]
        if not names:
            return self._skip_to_semicolon(stop, end)
        name_token = names[-1]
        texts = {token.text for token in head}
        type_tokens = [token.text for token in head
                       if token is not name_token]
        variable = GlobalVariable(
            name=name_token.text,
            type_text=" ".join(type_tokens),
            line=name_token.line,
            namespace=self._current_namespace(),
            is_const="const" in texts,
            is_static="static" in texts,
            is_extern="extern" in texts,
            is_constexpr="constexpr" in texts,
        )
        self.globals.append(variable)
        return self._skip_to_semicolon(stop, end)

    # ------------------------------------------------------------------
    # matching helpers

    def _match_paren(self, index: int, end: int) -> int:
        return self._match_pair(index, end, "(", ")")

    def _match_brace(self, index: int, end: int) -> int:
        return self._match_pair(index, end, "{", "}")

    def _match_bracket(self, index: int, end: int) -> int:
        return self._match_pair(index, end, "[", "]")

    def _match_pair(self, index: int, end: int, open_text: str,
                    close_text: str) -> int:
        depth = 0
        cursor = index
        code = self.code
        punct = TokenKind.PUNCT
        while cursor < end:
            token = code[cursor]
            if token.kind is punct:
                text = token.text
                if text == open_text:
                    depth += 1
                elif text == close_text:
                    depth -= 1
                    if depth == 0:
                        return cursor
            cursor += 1
        return end - 1

    def _match_angle(self, index: int, end: int) -> int:
        matched = self._try_match_angle(index, end)
        return matched if matched >= 0 else index

    def _try_match_angle(self, index: int, end: int) -> int:
        """Match ``<``...``>`` within a bounded window, or return -1.

        Angle brackets are ambiguous with comparison operators; the
        heuristic gives up at semicolons, braces, or after a long window,
        mirroring what metric tools do.
        """
        depth = 0
        cursor = index
        limit = min(end, index + 256)
        while cursor < limit:
            token = self.code[cursor]
            if token.kind is TokenKind.PUNCT:
                if token.text == "<":
                    depth += 1
                elif token.text == ">":
                    depth -= 1
                    if depth == 0:
                        return cursor
                elif token.text == ">>":
                    depth -= 2
                    if depth <= 0:
                        return cursor
                elif token.text in (";", "{", "}"):
                    return -1
            cursor += 1
        return -1

    def _skip_to_semicolon(self, index: int, end: int) -> int:
        depth = 0
        cursor = index
        while cursor < end:
            token = self.code[cursor]
            if token.kind is TokenKind.PUNCT:
                if token.text in ("(", "[", "{"):
                    depth += 1
                elif token.text in (")", "]", "}"):
                    if depth == 0 and token.text == "}":
                        return cursor  # let the caller pop the scope
                    depth -= 1
                elif token.text == ";" and depth == 0:
                    return cursor + 1
            cursor += 1
        return end

    # ------------------------------------------------------------------
    # scope helpers

    def _is_class_scope(self) -> bool:
        return bool(self._scopes) and self._scopes[-1].kind == "class"

    def _enclosing_class(self) -> Optional[ClassInfo]:
        for scope in reversed(self._scopes):
            if scope.kind == "class":
                for info in reversed(self.classes):
                    if info.name == scope.name:
                        return info
        return None

    def _current_namespace(self) -> str:
        parts = [scope.name for scope in self._scopes
                 if scope.kind == "namespace" and scope.name]
        return "::".join(parts)

    def _current_class_name(self) -> str:
        for scope in reversed(self._scopes):
            if scope.kind == "class":
                return scope.name
        return ""

    def _qualify_namespace(self, name: str) -> str:
        current = self._current_namespace()
        if current and name:
            return f"{current}::{name}"
        return name or current

    @staticmethod
    def _qualified_name(namespace: str, class_name: str, name: str) -> str:
        parts = [part for part in (namespace, class_name, name) if part]
        return "::".join(parts)


def parse_translation_unit(source: str,
                           filename: str = "<memory>") -> TranslationUnit:
    """Build the fuzzy model of one source file."""
    return CppModelBuilder(source, filename).build()
