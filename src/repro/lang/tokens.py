"""Token model shared by the fuzzy C++ analyzer and the MiniC parser."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    COMMENT = "comment"
    PREPROCESSOR = "preprocessor"
    END = "end"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position.

    Attributes:
        kind: lexical category.
        text: the exact source spelling (for comments, the full comment).
        line: 1-based line of the first character.
        column: 1-based column of the first character.
    """

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        """True when this token is the punctuator ``text``."""
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        """True when this token is the keyword ``text``."""
        return self.kind is TokenKind.KEYWORD and self.text == text

    def is_identifier(self, text: str = "") -> bool:
        """True for any identifier, or for the specific identifier ``text``."""
        if self.kind is not TokenKind.IDENTIFIER:
            return False
        return not text or self.text == text

    @property
    def end_line(self) -> int:
        """1-based line of the last character (multi-line comments span)."""
        return self.line + self.text.count("\n")

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.value}({self.text!r})@{self.line}:{self.column}"


#: C and C++ keywords recognized by the lexer (C++17-era working set).
CPP_KEYWORDS: FrozenSet[str] = frozenset({
    "alignas", "alignof", "asm", "auto", "bool", "break", "case", "catch",
    "char", "class", "const", "constexpr", "const_cast", "continue",
    "decltype", "default", "delete", "do", "double", "dynamic_cast", "else",
    "enum", "explicit", "extern", "false", "float", "for", "friend", "goto",
    "if", "inline", "int", "long", "mutable", "namespace", "new", "noexcept",
    "nullptr", "operator", "private", "protected", "public", "register",
    "reinterpret_cast", "return", "short", "signed", "sizeof", "static",
    "static_assert", "static_cast", "struct", "switch", "template", "this",
    "throw", "true", "try", "typedef", "typeid", "typename", "union",
    "unsigned", "using", "virtual", "void", "volatile", "while",
})

#: CUDA execution-space and builtin qualifiers.  They are lexically plain
#: identifiers, but the analyzers treat them as keywords so kernel
#: declarations are recognizable.
CUDA_KEYWORDS: FrozenSet[str] = frozenset({
    "__global__", "__device__", "__host__", "__shared__", "__constant__",
    "__restrict__", "__managed__", "__launch_bounds__", "__forceinline__",
})

#: All keywords, C++ plus CUDA.
ALL_KEYWORDS: FrozenSet[str] = CPP_KEYWORDS | CUDA_KEYWORDS

#: Multi-character punctuators, longest first so maximal munch works.  The
#: CUDA kernel-launch brackets ``<<<``/``>>>`` are lexed as single tokens:
#: no well-formed C++ expression in the analyzed subset produces them.
PUNCTUATORS: tuple = (
    "<<<", ">>>",
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", ".*", "##",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "?",
    ":", ";", ",", ".", "(", ")", "[", "]", "{", "}", "#", "@",
)
