"""Hand-written tokenizer for C, C++ and CUDA source text.

The lexer is deliberately tolerant: it must tokenize arbitrary industrial
code (the synthetic Apollo-like corpus, real snippets such as the paper's
``scale_bias_gpu`` excerpt) without choking on constructs the downstream
analyzers do not model.  It produces *all* tokens, including comments and
whole-line preprocessor directives, so that metrics such as comment density
and include-fan-out stay computable; consumers that want a pure code stream
filter with :func:`code_tokens`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from ..errors import LexError
from .tokens import ALL_KEYWORDS, PUNCTUATORS, Token, TokenKind

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")
_NUMBER_SUFFIX = frozenset("uUlLfF")


class Lexer:
    """Single-pass tokenizer over one translation unit.

    Args:
        source: the source text.
        filename: used only for error messages.
        strict: when True, an unrecognizable character raises
            :class:`~repro.errors.LexError`; when False it is skipped, which
            is the right behaviour for corpus-scale scanning.
    """

    def __init__(self, source: str, filename: str = "<memory>",
                 strict: bool = True) -> None:
        self.source = source
        self.filename = filename
        self.strict = strict
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> Iterator[Token]:
        """Yield every token in the source, ending with an END token."""
        while True:
            token = self._next_token()
            yield token
            if token.kind is TokenKind.END:
                return

    def tokenize(self) -> List[Token]:
        """Return all tokens as a list (END token excluded)."""
        result = [token for token in self.tokens()]
        return result[:-1]

    # ------------------------------------------------------------------
    # scanning helpers

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self._pos:self._pos + count]
        for character in text:
            if character == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return text

    def _skip_whitespace(self) -> None:
        while self._pos < len(self.source):
            character = self._peek()
            if character in " \t\r\n\f\v":
                self._advance()
            elif character == "\\" and self._peek(1) == "\n":
                self._advance(2)
            else:
                return

    def _error(self, message: str) -> LexError:
        return LexError(message, self.filename, self._line, self._column)

    # ------------------------------------------------------------------
    # token producers

    def _next_token(self) -> Token:
        self._skip_whitespace()
        if self._pos >= len(self.source):
            return Token(TokenKind.END, "", self._line, self._column)

        line, column = self._line, self._column
        character = self._peek()

        if character == "/" and self._peek(1) in ("/", "*"):
            return self._lex_comment(line, column)
        if character == "#" and self._at_line_start():
            return self._lex_preprocessor(line, column)
        if character in _IDENT_START:
            return self._lex_identifier(line, column)
        if character in _DIGITS or (character == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, column)
        if character == '"':
            return self._lex_string(line, column)
        if character == "'":
            return self._lex_char(line, column)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self._pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line, column)

        if self.strict:
            raise self._error(f"unexpected character {character!r}")
        self._advance()
        return self._next_token()

    def _at_line_start(self) -> bool:
        index = self._pos - 1
        while index >= 0:
            character = self.source[index]
            if character == "\n":
                return True
            if character not in " \t\r":
                return False
            index -= 1
        return True

    def _lex_comment(self, line: int, column: int) -> Token:
        if self._peek(1) == "/":
            start = self._pos
            while self._pos < len(self.source) and self._peek() != "\n":
                # A line comment continued with a backslash spans lines.
                if self._peek() == "\\" and self._peek(1) == "\n":
                    self._advance(2)
                    continue
                self._advance()
            return Token(TokenKind.COMMENT, self.source[start:self._pos],
                         line, column)
        start = self._pos
        self._advance(2)
        while self._pos < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return Token(TokenKind.COMMENT, self.source[start:self._pos],
                             line, column)
            self._advance()
        if not self.strict:
            return Token(TokenKind.COMMENT, self.source[start:self._pos],
                         line, column)
        raise self._error("unterminated block comment")

    def _lex_preprocessor(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self.source):
            if self._peek() == "\\" and self._peek(1) == "\n":
                self._advance(2)
                continue
            if self._peek() == "\n":
                break
            # Block comments inside a directive must not hide the newline.
            if self._peek() == "/" and self._peek(1) == "*":
                self._lex_comment(self._line, self._column)
                continue
            if self._peek() == "/" and self._peek(1) == "/":
                break
            self._advance()
        return Token(TokenKind.PREPROCESSOR, self.source[start:self._pos],
                     line, column)

    def _lex_identifier(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self.source) and self._peek() in _IDENT_CONT:
            self._advance()
        text = self.source[start:self._pos]
        # Raw string literal prefix, e.g. R"(...)".
        if text in ("R", "LR", "u8R", "uR", "UR") and self._peek() == '"':
            return self._lex_raw_string(start, line, column)
        kind = TokenKind.KEYWORD if text in ALL_KEYWORDS else TokenKind.IDENTIFIER
        return Token(kind, text, line, column)

    def _lex_raw_string(self, start: int, line: int, column: int) -> Token:
        self._advance()  # opening quote
        delimiter_start = self._pos
        while self._peek() not in ("(", ""):
            self._advance()
        if self._peek() != "(":
            if not self.strict:
                return Token(TokenKind.STRING,
                             self.source[start:self._pos], line, column)
            raise self._error("malformed raw string literal")
        delimiter = self.source[delimiter_start:self._pos]
        self._advance()
        terminator = ")" + delimiter + '"'
        end = self.source.find(terminator, self._pos)
        if end < 0:
            if not self.strict:
                self._advance(len(self.source) - self._pos)
                return Token(TokenKind.STRING,
                             self.source[start:self._pos], line, column)
            raise self._error("unterminated raw string literal")
        self._advance(end + len(terminator) - self._pos)
        return Token(TokenKind.STRING, self.source[start:self._pos],
                     line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self._pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() in _HEX_DIGITS or self._peek() == "'":
                self._advance()
        else:
            seen_exponent = False
            while True:
                character = self._peek()
                if character in _DIGITS or character in (".", "'"):
                    self._advance()
                elif character in ("e", "E") and not seen_exponent:
                    seen_exponent = True
                    self._advance()
                    if self._peek() in ("+", "-"):
                        self._advance()
                else:
                    break
        while self._peek() in _NUMBER_SUFFIX:
            self._advance()
        return Token(TokenKind.NUMBER, self.source[start:self._pos],
                     line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        start = self._pos
        self._advance()
        while self._pos < len(self.source):
            character = self._peek()
            if character == "\\":
                self._advance(2)
                continue
            if character == "\n":
                if not self.strict:
                    break
                raise self._error("unterminated string literal")
            self._advance()
            if character == '"':
                return Token(TokenKind.STRING, self.source[start:self._pos],
                             line, column)
        if not self.strict:
            return Token(TokenKind.STRING, self.source[start:self._pos],
                         line, column)
        raise self._error("unterminated string literal")

    def _lex_char(self, line: int, column: int) -> Token:
        start = self._pos
        self._advance()
        while self._pos < len(self.source):
            character = self._peek()
            if character == "\\":
                self._advance(2)
                continue
            if character == "\n":
                if not self.strict:
                    break
                raise self._error("unterminated character literal")
            self._advance()
            if character == "'":
                return Token(TokenKind.CHAR, self.source[start:self._pos],
                             line, column)
        if not self.strict:
            return Token(TokenKind.CHAR, self.source[start:self._pos],
                         line, column)
        raise self._error("unterminated character literal")


def tokenize(source: str, filename: str = "<memory>",
             strict: bool = True) -> List[Token]:
    """Tokenize ``source`` and return all tokens (no END sentinel)."""
    return Lexer(source, filename, strict=strict).tokenize()


def code_tokens(tokens: Iterable[Token]) -> List[Token]:
    """Filter out comments and preprocessor directives."""
    return [token for token in tokens
            if token.kind not in (TokenKind.COMMENT, TokenKind.PREPROCESSOR)]
