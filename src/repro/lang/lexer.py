"""Hand-written tokenizer for C, C++ and CUDA source text.

The lexer is deliberately tolerant: it must tokenize arbitrary industrial
code (the synthetic Apollo-like corpus, real snippets such as the paper's
``scale_bias_gpu`` excerpt) without choking on constructs the downstream
analyzers do not model.  It produces *all* tokens, including comments and
whole-line preprocessor directives, so that metrics such as comment density
and include-fan-out stay computable; consumers that want a pure code stream
filter with :func:`code_tokens`.

Lexing is the single hottest stage of a cold assessment (every other
stage consumes the token stream), so the scanner is built around batch
primitives — compiled character-class regexes and ``str.find`` — rather
than a character-at-a-time loop.  Line/column bookkeeping is deferred:
the scanner tracks the current line number and the source offset of its
first character, and each consumed span settles its newline count in one
``str.count`` call.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List

from ..errors import LexError
from .tokens import ALL_KEYWORDS, PUNCTUATORS, Token, TokenKind

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")
_NUMBER_SUFFIX = frozenset("uUlLfF")

#: Whitespace plus backslash-newline line continuations, as one batch.
_WHITESPACE = re.compile(r"(?:[ \t\r\n\f\v]|\\\n)+")

#: A full identifier (the ``$`` extension matches GNU/CUDA tolerance).
_IDENTIFIER = re.compile(r"[A-Za-z_$][A-Za-z0-9_$]*")

#: One punctuator; alternatives keep the PUNCTUATORS longest-first order,
#: so the regex engine implements maximal munch exactly.
_PUNCTUATOR = re.compile("|".join(re.escape(punct) for punct in PUNCTUATORS))

#: A complete double-quoted string on the fast path: any run of
#: non-quote/non-backslash/non-newline characters or escape pairs (an
#: escaped character may be a newline — the slow path's ``advance(2)``
#: skips one too).  Unterminated/newline-broken literals fail to match
#: and fall back to the character loop for exact error semantics.
_STRING = re.compile(r'"(?:[^"\\\n]+|\\[\s\S])*"')
_CHAR = re.compile(r"'(?:[^'\\\n]+|\\[\s\S])*'")

#: Prefixes that start a raw string literal when followed by ``"``.
_RAW_PREFIXES = frozenset({"R", "LR", "u8R", "uR", "UR"})


class Lexer:
    """Single-pass tokenizer over one translation unit.

    Args:
        source: the source text.
        filename: used only for error messages.
        strict: when True, an unrecognizable character raises
            :class:`~repro.errors.LexError`; when False it is skipped, which
            is the right behaviour for corpus-scale scanning.
    """

    def __init__(self, source: str, filename: str = "<memory>",
                 strict: bool = True) -> None:
        self.source = source
        self.filename = filename
        self.strict = strict
        self._pos = 0
        self._line = 1
        #: Source offset of the current line's first character; the
        #: column of any position on this line is ``pos - line_start + 1``.
        self._line_start = 0

    def tokens(self) -> Iterator[Token]:
        """Yield every token in the source, ending with an END token."""
        while True:
            token = self._next_token()
            yield token
            if token.kind is TokenKind.END:
                return

    def tokenize(self) -> List[Token]:
        """Return all tokens as a list (END token excluded)."""
        result: List[Token] = []
        append = result.append
        next_token = self._next_token
        end = TokenKind.END
        while True:
            token = next_token()
            if token.kind is end:
                return result
            append(token)

    # ------------------------------------------------------------------
    # scanning helpers

    @property
    def _column(self) -> int:
        return self._pos - self._line_start + 1

    def _consume_to(self, new_pos: int) -> None:
        """Advance to ``new_pos``, settling line bookkeeping in batch."""
        source = self.source
        newlines = source.count("\n", self._pos, new_pos)
        if newlines:
            self._line += newlines
            self._line_start = source.rindex("\n", self._pos, new_pos) + 1
        self._pos = new_pos

    def _error(self, message: str) -> LexError:
        return LexError(message, self.filename, self._line, self._column)

    # ------------------------------------------------------------------
    # token producers

    def _next_token(self) -> Token:
        source = self.source
        length = len(source)
        while True:
            pos = self._pos
            match = _WHITESPACE.match(source, pos)
            if match is not None:
                new_pos = match.end()
                newlines = source.count("\n", pos, new_pos)
                if newlines:
                    self._line += newlines
                    self._line_start = source.rindex("\n", pos, new_pos) + 1
                self._pos = pos = new_pos
            if pos >= length:
                return Token(TokenKind.END, "", self._line, self._column)

            line = self._line
            column = pos - self._line_start + 1
            character = source[pos]

            if character in _IDENT_CONT:
                if character in _DIGITS:
                    return self._lex_number(line, column)
                return self._lex_identifier(line, column)
            if character == "/" and source[pos + 1:pos + 2] in ("/", "*"):
                return self._lex_comment(line, column)
            if character == '"':
                return self._lex_string(line, column)
            if character == "#" and self._at_line_start():
                return self._lex_preprocessor(line, column)
            if character == "." and source[pos + 1:pos + 2] in _DIGITS:
                return self._lex_number(line, column)
            if character == "'":
                return self._lex_char(line, column)
            match = _PUNCTUATOR.match(source, pos)
            if match is not None:
                text = match.group()
                self._pos = pos + len(text)
                return Token(TokenKind.PUNCT, text, line, column)

            if self.strict:
                raise self._error(f"unexpected character {character!r}")
            self._pos = pos + 1

    def _at_line_start(self) -> bool:
        """True when only blanks precede the current position on its line."""
        for character in self.source[self._line_start:self._pos]:
            if character not in " \t\r":
                return False
        return True

    def _lex_comment(self, line: int, column: int) -> Token:
        source = self.source
        start = self._pos
        if source[start + 1] == "/":
            # A line comment continued with a backslash spans lines.
            cursor = start
            while True:
                newline = source.find("\n", cursor)
                if newline < 0:
                    end = len(source)
                    break
                if source[newline - 1] == "\\":
                    cursor = newline + 1
                    continue
                end = newline
                break
            self._consume_to(end)
            return Token(TokenKind.COMMENT, source[start:end], line, column)
        close = source.find("*/", start + 2)
        if close < 0:
            if not self.strict:
                self._consume_to(len(source))
                return Token(TokenKind.COMMENT, source[start:], line, column)
            raise self._error("unterminated block comment")
        self._consume_to(close + 2)
        return Token(TokenKind.COMMENT, source[start:self._pos],
                     line, column)

    def _lex_preprocessor(self, line: int, column: int) -> Token:
        source = self.source
        length = len(source)
        start = self._pos
        pos = start
        while pos < length:
            character = source[pos]
            if character == "\\" and source[pos + 1:pos + 2] == "\n":
                pos += 2
                continue
            if character == "\n":
                break
            if character == "/":
                follower = source[pos + 1:pos + 2]
                # Block comments inside a directive must not hide the
                # newline; a trailing line comment ends the directive.
                if follower == "*":
                    close = source.find("*/", pos + 2)
                    pos = length if close < 0 else close + 2
                    continue
                if follower == "/":
                    break
            pos += 1
        self._consume_to(pos)
        return Token(TokenKind.PREPROCESSOR, source[start:pos], line, column)

    def _lex_identifier(self, line: int, column: int) -> Token:
        match = _IDENTIFIER.match(self.source, self._pos)
        text = match.group()
        end = match.end()
        # Raw string literal prefix, e.g. R"(...)".
        if text in _RAW_PREFIXES and self.source[end:end + 1] == '"':
            return self._lex_raw_string(self._pos, end, line, column)
        self._pos = end
        kind = TokenKind.KEYWORD if text in ALL_KEYWORDS else TokenKind.IDENTIFIER
        return Token(kind, text, line, column)

    def _lex_raw_string(self, start: int, quote: int, line: int,
                        column: int) -> Token:
        source = self.source
        delimiter_start = quote + 1
        open_paren = delimiter_start
        while open_paren < len(source) and source[open_paren] != "(":
            open_paren += 1
        if open_paren >= len(source):
            if not self.strict:
                self._consume_to(len(source))
                return Token(TokenKind.STRING, source[start:], line, column)
            self._consume_to(open_paren)
            raise self._error("malformed raw string literal")
        delimiter = source[delimiter_start:open_paren]
        terminator = ")" + delimiter + '"'
        end = source.find(terminator, open_paren + 1)
        if end < 0:
            if not self.strict:
                self._consume_to(len(source))
                return Token(TokenKind.STRING, source[start:], line, column)
            raise self._error("unterminated raw string literal")
        self._consume_to(end + len(terminator))
        return Token(TokenKind.STRING, source[start:self._pos],
                     line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        source = self.source
        length = len(source)
        start = self._pos
        pos = start
        if source[pos] == "0" and source[pos + 1:pos + 2] in ("x", "X"):
            digits = self._scan_hex_digits(pos + 2)
            saw_digits = digits > pos + 2
            pos = digits
            if pos < length and source[pos] == ".":
                fraction = self._scan_hex_digits(pos + 1)
                if fraction > pos + 1 or saw_digits:
                    saw_digits = saw_digits or fraction > pos + 1
                    pos = fraction
            if not saw_digits:
                # A bare `0x` is not a number: emit the `0` alone and let
                # the `x...` lex as an identifier.
                self._pos = start + 1
                return Token(TokenKind.NUMBER, "0", line, column)
            if pos < length and source[pos] in ("p", "P"):
                cursor = pos + 1
                if cursor < length and source[cursor] in ("+", "-"):
                    cursor += 1
                if cursor < length and source[cursor] in _DIGITS:
                    cursor += 1
                    while cursor < length and source[cursor] in _DIGITS:
                        cursor += 1
                    pos = cursor
        else:
            seen_dot = False
            seen_exponent = False
            while pos < length:
                character = source[pos]
                if character in _DIGITS:
                    pos += 1
                elif character == "'":
                    # Digit separators bind digits together; a quote not
                    # followed by a digit starts a character literal.
                    if source[pos + 1:pos + 2] in _DIGITS:
                        pos += 1
                    else:
                        break
                elif character == ".":
                    if seen_dot or seen_exponent:
                        break
                    seen_dot = True
                    pos += 1
                elif character in ("e", "E") and not seen_exponent:
                    seen_exponent = True
                    pos += 1
                    if pos < length and source[pos] in ("+", "-"):
                        pos += 1
                else:
                    break
        while pos < length and source[pos] in _NUMBER_SUFFIX:
            pos += 1
        self._pos = pos
        return Token(TokenKind.NUMBER, source[start:pos], line, column)

    def _scan_hex_digits(self, pos: int) -> int:
        """End of the run of hex digits and inter-digit separators at ``pos``."""
        source = self.source
        length = len(source)
        start = pos
        while pos < length:
            character = source[pos]
            if character in _HEX_DIGITS:
                pos += 1
            elif (character == "'" and pos > start
                    and source[pos + 1:pos + 2] in _HEX_DIGITS):
                pos += 1
            else:
                break
        return pos

    def _lex_string(self, line: int, column: int) -> Token:
        match = _STRING.match(self.source, self._pos)
        if match is not None:
            self._consume_to(match.end())
            return Token(TokenKind.STRING, match.group(), line, column)
        return self._lex_quoted_slow('"', "string literal", TokenKind.STRING,
                                     line, column)

    def _lex_char(self, line: int, column: int) -> Token:
        match = _CHAR.match(self.source, self._pos)
        if match is not None:
            self._consume_to(match.end())
            return Token(TokenKind.CHAR, match.group(), line, column)
        return self._lex_quoted_slow("'", "character literal", TokenKind.CHAR,
                                     line, column)

    def _lex_quoted_slow(self, quote: str, what: str, kind: TokenKind,
                         line: int, column: int) -> Token:
        """Character-loop fallback for malformed quoted literals.

        Reached only when the fast regex failed, i.e. the literal is
        unterminated or broken by a newline; preserves the strict/lenient
        error behaviour exactly.
        """
        source = self.source
        length = len(source)
        start = self._pos
        pos = start + 1
        while pos < length:
            character = source[pos]
            if character == "\\":
                pos += 2
                continue
            if character == "\n":
                if not self.strict:
                    break
                self._consume_to(pos)
                raise self._error(f"unterminated {what}")
            pos += 1
            if character == quote:
                self._consume_to(pos)
                return Token(kind, source[start:pos], line, column)
        if not self.strict:
            self._consume_to(min(pos, length))
            return Token(kind, source[start:self._pos], line, column)
        self._consume_to(min(pos, length))
        raise self._error(f"unterminated {what}")


def tokenize(source: str, filename: str = "<memory>",
             strict: bool = True) -> List[Token]:
    """Tokenize ``source`` and return all tokens (no END sentinel)."""
    return Lexer(source, filename, strict=strict).tokenize()


def code_tokens(tokens: Iterable[Token]) -> List[Token]:
    """Filter out comments and preprocessor directives."""
    return [token for token in tokens
            if token.kind not in (TokenKind.COMMENT, TokenKind.PREPROCESSOR)]
