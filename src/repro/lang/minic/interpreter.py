"""Tree-walking interpreter for MiniC with coverage probes.

The interpreter is the "target hardware plus RapiCover" of the
reproduction: it executes parsed MiniC under a :class:`Tracer`, which
receives one event per executed statement and one event per evaluated
decision (with the short-circuit condition vector needed for MC/DC).

Pointer semantics follow what the paper's CUDA excerpt needs: arrays are
first-class buffers, pointer parameters alias caller buffers, and pointer
arithmetic (``p + k``) produces offset views.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import (
    MiniCIndexError,
    MiniCNameError,
    MiniCRuntimeError,
    MiniCStepLimitExceeded,
    MiniCTypeError,
)
from . import ast
from .builtins import BUILTINS

_UNINITIALIZED = object()


class ArrayValue:
    """A buffer view: shared storage plus an element offset.

    Pointer parameters and pointer arithmetic produce views over the same
    underlying list, so writes through a callee pointer are visible to the
    caller — the aliasing CUDA code relies on.
    """

    __slots__ = ("buffer", "offset")

    def __init__(self, buffer: List, offset: int = 0) -> None:
        self.buffer = buffer
        self.offset = offset

    def __len__(self) -> int:
        return len(self.buffer) - self.offset

    def element_index(self, index: int) -> int:
        absolute = self.offset + index
        if absolute < 0 or absolute >= len(self.buffer):
            raise MiniCIndexError(
                f"index {index} out of bounds for view of length "
                f"{len(self)}")
        return absolute

    def get(self, index: int):
        return self.buffer[self.element_index(index)]

    def set(self, index: int, value) -> None:
        self.buffer[self.element_index(index)] = value

    def shifted(self, delta: int) -> "ArrayValue":
        return ArrayValue(self.buffer, self.offset + delta)

    def to_list(self) -> List:
        return list(self.buffer[self.offset:])


class Tracer:
    """Coverage-probe interface; the default implementation ignores events."""

    def on_statement(self, statement_id: int) -> None:
        """A statement with the given id is about to execute."""

    def on_decision(self, decision_id: int, outcome: bool,
                    vector: Tuple) -> None:
        """A decision evaluated to ``outcome`` with the given condition
        vector (one entry per atomic condition; ``None`` = short-circuited).
        """


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value) -> None:
        self.value = value


class ThreadContext:
    """CUDA builtin variables for one thread of a kernel launch."""

    __slots__ = ("thread_idx", "block_idx", "block_dim", "grid_dim")

    def __init__(self,
                 thread_idx: Tuple[int, int, int] = (0, 0, 0),
                 block_idx: Tuple[int, int, int] = (0, 0, 0),
                 block_dim: Tuple[int, int, int] = (1, 1, 1),
                 grid_dim: Tuple[int, int, int] = (1, 1, 1)) -> None:
        self.thread_idx = thread_idx
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim

    def lookup(self, base: str, axis: str) -> int:
        triple = {
            "threadIdx": self.thread_idx,
            "blockIdx": self.block_idx,
            "blockDim": self.block_dim,
            "gridDim": self.grid_dim,
        }[base]
        return triple["xyz".index(axis)]


class Interpreter:
    """Executes a MiniC :class:`~.ast.Program`.

    Args:
        program: the parsed program.
        tracer: coverage probe sink; ``None`` disables probing.
        max_steps: statement budget per :meth:`run` call, protecting the
            host from runaway loops in generated or user code.
        strict_uninitialized: when True, reading a scalar local before it
            was assigned raises :class:`MiniCRuntimeError` (the dynamic
            analogue of the paper's uninitialized-variable finding).
        obs_metrics: optional :class:`~repro.obs.MetricsRegistry`; each
            :meth:`run` flushes its executed-statement and function-call
            counts into ``interpreter.steps`` / ``interpreter.calls`` /
            ``interpreter.runs`` counters.
    """

    def __init__(self, program: ast.Program, tracer: Optional[Tracer] = None,
                 max_steps: int = 50_000_000,
                 strict_uninitialized: bool = False,
                 obs_metrics=None) -> None:
        self.program = program
        self.tracer = tracer
        self.max_steps = max_steps
        self.strict_uninitialized = strict_uninitialized
        self.obs_metrics = obs_metrics
        self.output: List[str] = []
        self._steps = 0
        self.call_count = 0
        self._functions: Dict[str, ast.Function] = {
            function.name: function for function in program.functions}
        self._globals: Dict[str, object] = {}
        for declaration in program.globals:
            self._execute_declaration(declaration, self._globals,
                                      record=False)

    # ------------------------------------------------------------------
    # public API

    def run(self, function_name: str, args: Sequence = (),
            thread_context: Optional[ThreadContext] = None):
        """Call a function by name with Python values as arguments.

        Scalars are passed by value; lists and :class:`ArrayValue` views
        are passed by reference (as C pointers would be).  Returns the
        function's return value, or ``None`` for void functions.
        """
        self._steps = 0
        calls_before = self.call_count
        try:
            return self.call(function_name, list(args), thread_context)
        finally:
            if self.obs_metrics is not None:
                self.obs_metrics.counter("interpreter.runs").inc()
                self.obs_metrics.counter("interpreter.steps").inc(
                    self._steps)
                self.obs_metrics.counter("interpreter.calls").inc(
                    self.call_count - calls_before)

    def call(self, function_name: str, args: List,
             thread_context: Optional[ThreadContext] = None):
        self.call_count += 1
        function = self._functions.get(function_name)
        if function is None:
            raise MiniCNameError(f"undefined function {function_name!r}")
        if len(args) != len(function.parameters):
            raise MiniCTypeError(
                f"{function_name!r} expects {len(function.parameters)} "
                f"argument(s), got {len(args)}")
        frame: Dict[str, object] = {}
        for parameter, value in zip(function.parameters, args):
            frame[parameter.name] = self._coerce_argument(parameter, value)
        frame["__thread__"] = thread_context
        try:
            self._execute_block(function.body, frame)
        except _ReturnSignal as signal:
            return self._coerce_type(function.return_type, signal.value)
        return None

    # ------------------------------------------------------------------
    # statements

    def _execute_statement(self, statement: ast.Statement,
                           frame: Dict[str, object]) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise MiniCStepLimitExceeded(
                f"exceeded {self.max_steps} execution steps")
        if self.tracer is not None and statement.statement_id >= 0:
            self.tracer.on_statement(statement.statement_id)

        if isinstance(statement, ast.Block):
            self._execute_block(statement, frame)
        elif isinstance(statement, ast.Declaration):
            self._execute_declaration(statement, frame, record=False)
        elif isinstance(statement, ast.ExpressionStatement):
            if statement.expression is not None:
                self._evaluate(statement.expression, frame)
        elif isinstance(statement, ast.If):
            if self._evaluate_decision(statement.condition, frame):
                self._execute_statement(statement.then_branch, frame)
            elif statement.else_branch is not None:
                self._execute_statement(statement.else_branch, frame)
        elif isinstance(statement, ast.While):
            while self._evaluate_decision(statement.condition, frame):
                try:
                    self._execute_statement(statement.body, frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(statement, ast.DoWhile):
            while True:
                try:
                    self._execute_statement(statement.body, frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if not self._evaluate_decision(statement.condition, frame):
                    break
        elif isinstance(statement, ast.For):
            if statement.initializer is not None:
                self._execute_statement(statement.initializer, frame)
            while (statement.condition is None
                   or self._evaluate_decision(statement.condition, frame)):
                try:
                    self._execute_statement(statement.body, frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if statement.increment is not None:
                    self._evaluate(statement.increment, frame)
        elif isinstance(statement, ast.Switch):
            self._execute_switch(statement, frame)
        elif isinstance(statement, ast.Break):
            raise _BreakSignal()
        elif isinstance(statement, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(statement, ast.Return):
            value = (self._evaluate(statement.value, frame)
                     if statement.value is not None else None)
            raise _ReturnSignal(value)
        else:  # pragma: no cover - parser guarantees exhaustiveness
            raise MiniCRuntimeError(
                f"unsupported statement {type(statement).__name__}")

    def _execute_block(self, block: ast.Block,
                       frame: Dict[str, object]) -> None:
        # MiniC uses function-level scoping for simplicity; blocks do not
        # pop declarations (C block scoping seldom matters for the
        # workloads, and the shadowing checker flags reuse statically).
        for statement in block.statements:
            self._execute_statement(statement, frame)

    def _execute_switch(self, statement: ast.Switch,
                        frame: Dict[str, object]) -> None:
        subject = self._evaluate(statement.subject, frame)
        matched_index = None
        default_index = None
        for index, case in enumerate(statement.cases):
            if case.value is None:
                default_index = index
            elif self._evaluate(case.value, frame) == subject:
                matched_index = index
                break
        start = matched_index if matched_index is not None else default_index
        if start is None:
            return
        try:
            for case in statement.cases[start:]:
                if self.tracer is not None and case.statement_id >= 0:
                    self.tracer.on_statement(case.statement_id)
                for child in case.body:
                    self._execute_statement(child, frame)
        except _BreakSignal:
            pass

    def _execute_declaration(self, declaration: ast.Declaration,
                             frame: Dict[str, object],
                             record: bool) -> None:
        if declaration.array_size is not None:
            size_value = self._evaluate(declaration.array_size, frame)
            size = int(size_value)
            if size < 0:
                raise MiniCRuntimeError(
                    f"negative array size {size} for "
                    f"{declaration.name!r}")
            zero = 0.0 if declaration.type_name == "float" else 0
            buffer = [zero] * size
            if declaration.initializer_list is not None:
                if len(declaration.initializer_list) > size:
                    raise MiniCRuntimeError(
                        f"too many initializers for {declaration.name!r}")
                for index, expression in enumerate(
                        declaration.initializer_list):
                    buffer[index] = self._coerce_type(
                        declaration.type_name,
                        self._evaluate(expression, frame))
            frame[declaration.name] = ArrayValue(buffer)
            return
        if declaration.initializer is not None:
            value = self._coerce_type(
                declaration.type_name,
                self._evaluate(declaration.initializer, frame))
        elif self.strict_uninitialized:
            value = _UNINITIALIZED
        else:
            value = 0.0 if declaration.type_name == "float" else 0
        frame[declaration.name] = value

    # ------------------------------------------------------------------
    # decisions

    def _evaluate_decision(self, decision: ast.Decision,
                           frame: Dict[str, object]) -> bool:
        if self.tracer is None:
            return _truthy(self._evaluate(decision.expression, frame))
        leaf_ids = getattr(decision, "_leaf_ids", None)
        if leaf_ids is None:
            leaf_ids = {id(leaf): index
                        for index, leaf in enumerate(decision.conditions)}
            decision._leaf_ids = leaf_ids  # type: ignore[attr-defined]
        vector: List[Optional[bool]] = [None] * len(decision.conditions)

        def evaluate(node: ast.Expression) -> bool:
            if isinstance(node, ast.Logical):
                left = evaluate(node.left)
                if node.operator == "&&":
                    if not left:
                        return False
                    return evaluate(node.right)
                if left:
                    return True
                return evaluate(node.right)
            outcome = _truthy(self._evaluate(node, frame))
            index = leaf_ids.get(id(node))
            if index is not None:
                vector[index] = outcome
            return outcome

        outcome = evaluate(decision.expression)
        self.tracer.on_decision(decision.decision_id, outcome,
                                tuple(vector))
        return outcome

    # ------------------------------------------------------------------
    # expressions

    def _evaluate(self, node: ast.Expression, frame: Dict[str, object]):
        if isinstance(node, ast.IntLiteral):
            return node.value
        if isinstance(node, ast.FloatLiteral):
            return node.value
        if isinstance(node, ast.Identifier):
            return self._load(node.name, frame, node.line)
        if isinstance(node, ast.ThreadBuiltin):
            context = frame.get("__thread__")
            if context is None:
                raise MiniCRuntimeError(
                    f"{node.base}.{node.axis} used outside a kernel launch")
            return context.lookup(node.base, node.axis)
        if isinstance(node, ast.Unary):
            return self._evaluate_unary(node, frame)
        if isinstance(node, ast.Logical):
            left = _truthy(self._evaluate(node.left, frame))
            if node.operator == "&&":
                if not left:
                    return 0
                return 1 if _truthy(self._evaluate(node.right, frame)) else 0
            if left:
                return 1
            return 1 if _truthy(self._evaluate(node.right, frame)) else 0
        if isinstance(node, ast.Binary):
            return self._evaluate_binary(node, frame)
        if isinstance(node, ast.Conditional):
            if self._evaluate_decision(node.condition, frame):
                return self._evaluate(node.then_value, frame)
            return self._evaluate(node.else_value, frame)
        if isinstance(node, ast.Assignment):
            return self._evaluate_assignment(node, frame)
        if isinstance(node, ast.IncDec):
            return self._evaluate_incdec(node, frame)
        if isinstance(node, ast.Call):
            return self._evaluate_call(node, frame)
        if isinstance(node, ast.Index):
            base = self._evaluate(node.base, frame)
            offset = self._evaluate(node.offset, frame)
            if not isinstance(base, ArrayValue):
                raise MiniCTypeError(
                    f"subscript applied to non-array at line {node.line}")
            return base.get(int(offset))
        if isinstance(node, ast.Cast):
            return self._coerce_type(node.type_name,
                                     self._evaluate(node.operand, frame))
        raise MiniCRuntimeError(
            f"unsupported expression {type(node).__name__}")

    def _evaluate_unary(self, node: ast.Unary, frame: Dict[str, object]):
        value = self._evaluate(node.operand, frame)
        if node.operator == "!":
            return 0 if _truthy(value) else 1
        if node.operator == "-":
            return -value
        if node.operator == "+":
            return value
        if node.operator == "~":
            return ~int(value)
        raise MiniCRuntimeError(f"unknown unary operator {node.operator!r}")

    def _evaluate_binary(self, node: ast.Binary, frame: Dict[str, object]):
        operator = node.operator
        left = self._evaluate(node.left, frame)
        if operator == ",":
            return self._evaluate(node.right, frame)
        right = self._evaluate(node.right, frame)
        if left is None or right is None:
            # A NULL pointer compares equal to 0 and to another NULL.
            if operator in ("==", "!="):
                def is_null(value):
                    return value is None or value == 0
                equal = (is_null(left) and is_null(right)
                         and not (isinstance(left, ArrayValue)
                                  or isinstance(right, ArrayValue)))
                if operator == "==":
                    return 1 if equal else 0
                return 0 if equal else 1
            raise MiniCTypeError(
                f"operator {operator!r} applied to a null pointer at "
                f"line {node.line}")
        if isinstance(left, ArrayValue) or isinstance(right, ArrayValue):
            return self._pointer_arithmetic(node, left, right)
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            return _c_divide(left, right, node.line)
        if operator == "%":
            return _c_modulo(left, right, node.line)
        if operator == "==":
            return 1 if left == right else 0
        if operator == "!=":
            return 1 if left != right else 0
        if operator == "<":
            return 1 if left < right else 0
        if operator == "<=":
            return 1 if left <= right else 0
        if operator == ">":
            return 1 if left > right else 0
        if operator == ">=":
            return 1 if left >= right else 0
        if operator == "&":
            return int(left) & int(right)
        if operator == "|":
            return int(left) | int(right)
        if operator == "^":
            return int(left) ^ int(right)
        if operator == "<<":
            return int(left) << int(right)
        if operator == ">>":
            return int(left) >> int(right)
        raise MiniCRuntimeError(f"unknown operator {operator!r}")

    @staticmethod
    def _pointer_arithmetic(node: ast.Binary, left, right):
        if node.operator == "+":
            if isinstance(left, ArrayValue) and not isinstance(right,
                                                               ArrayValue):
                return left.shifted(int(right))
            if isinstance(right, ArrayValue) and not isinstance(left,
                                                                ArrayValue):
                return right.shifted(int(left))
        if node.operator == "-" and isinstance(left, ArrayValue):
            if isinstance(right, ArrayValue):
                if left.buffer is not right.buffer:
                    raise MiniCRuntimeError(
                        "pointer difference between unrelated buffers")
                return left.offset - right.offset
            return left.shifted(-int(right))
        if node.operator in ("==", "!="):
            same = (isinstance(left, ArrayValue)
                    and isinstance(right, ArrayValue)
                    and left.buffer is right.buffer
                    and left.offset == right.offset)
            if node.operator == "==":
                return 1 if same else 0
            return 0 if same else 1
        raise MiniCTypeError(
            f"operator {node.operator!r} unsupported on pointers at line "
            f"{node.line}")

    def _evaluate_assignment(self, node: ast.Assignment,
                             frame: Dict[str, object]):
        value = self._evaluate(node.value, frame)
        if node.operator != "=":
            current = self._load_target(node.target, frame)
            value = self._apply_operator(node.operator[:-1], current, value,
                                         node.line)
        self._store_target(node.target, value, frame)
        return value

    def _apply_operator(self, operator: str, left, right, line: int):
        node = ast.Binary(line=line, operator=operator,
                          left=ast.IntLiteral(line=line, value=0),
                          right=ast.IntLiteral(line=line, value=0))
        if isinstance(left, ArrayValue) or isinstance(right, ArrayValue):
            return self._pointer_arithmetic(node, left, right)
        saved_left, saved_right = left, right
        if operator == "/":
            return _c_divide(saved_left, saved_right, line)
        if operator == "%":
            return _c_modulo(saved_left, saved_right, line)
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "&":
            return int(left) & int(right)
        if operator == "|":
            return int(left) | int(right)
        if operator == "^":
            return int(left) ^ int(right)
        if operator == "<<":
            return int(left) << int(right)
        if operator == ">>":
            return int(left) >> int(right)
        raise MiniCRuntimeError(f"unknown compound operator {operator!r}=")

    def _evaluate_incdec(self, node: ast.IncDec, frame: Dict[str, object]):
        current = self._load_target(node.target, frame)
        delta = 1 if node.operator == "++" else -1
        if isinstance(current, ArrayValue):
            updated = current.shifted(delta)
        else:
            updated = current + delta
        self._store_target(node.target, updated, frame)
        return updated if node.is_prefix else current

    def _evaluate_call(self, node: ast.Call, frame: Dict[str, object]):
        if node.name in self._functions:
            args = [self._evaluate(argument, frame)
                    for argument in node.arguments]
            return self.call(node.name, args, frame.get("__thread__"))
        if node.name == "printf":
            return self._builtin_printf(node, frame)
        builtin = BUILTINS.get(node.name)
        if builtin is not None:
            args = [self._evaluate(argument, frame)
                    for argument in node.arguments]
            return builtin(*args)
        raise MiniCNameError(
            f"undefined function {node.name!r} at line {node.line}")

    def _builtin_printf(self, node: ast.Call, frame: Dict[str, object]):
        if not node.arguments:
            return 0
        # The format string is not modeled as a value; emit the rendered
        # arguments, which is all the tests need.
        values = [self._evaluate(argument, frame)
                  for argument in node.arguments]
        rendered = " ".join(str(value) for value in values)
        self.output.append(rendered)
        return len(rendered)

    # ------------------------------------------------------------------
    # lvalues and environment

    def _load(self, name: str, frame: Dict[str, object], line: int):
        if name in frame:
            value = frame[name]
        elif name in self._globals:
            value = self._globals[name]
        else:
            raise MiniCNameError(f"undefined variable {name!r} at line "
                                 f"{line}")
        if value is _UNINITIALIZED:
            raise MiniCRuntimeError(
                f"variable {name!r} read before initialization at line "
                f"{line}")
        return value

    def _load_target(self, target: ast.Expression,
                     frame: Dict[str, object]):
        if isinstance(target, ast.Identifier):
            return self._load(target.name, frame, target.line)
        if isinstance(target, ast.Index):
            base = self._evaluate(target.base, frame)
            offset = int(self._evaluate(target.offset, frame))
            if not isinstance(base, ArrayValue):
                raise MiniCTypeError(
                    f"subscript applied to non-array at line {target.line}")
            return base.get(offset)
        raise MiniCTypeError(f"invalid lvalue at line {target.line}")

    def _store_target(self, target: ast.Expression, value,
                      frame: Dict[str, object]) -> None:
        if isinstance(target, ast.Identifier):
            if target.name in frame:
                frame[target.name] = value
            elif target.name in self._globals:
                self._globals[target.name] = value
            else:
                raise MiniCNameError(
                    f"assignment to undeclared variable {target.name!r} "
                    f"at line {target.line}")
            return
        if isinstance(target, ast.Index):
            base = self._evaluate(target.base, frame)
            offset = int(self._evaluate(target.offset, frame))
            if not isinstance(base, ArrayValue):
                raise MiniCTypeError(
                    f"subscript applied to non-array at line {target.line}")
            base.set(offset, value)
            return
        raise MiniCTypeError(f"invalid lvalue at line {target.line}")

    # ------------------------------------------------------------------
    # coercion

    def _coerce_argument(self, parameter: ast.ParameterDecl, value):
        if parameter.is_pointer:
            if isinstance(value, ArrayValue):
                return value
            if isinstance(value, list):
                return ArrayValue(value)
            if value in (0, None):
                return None  # NULL pointer
            raise MiniCTypeError(
                f"parameter {parameter.name!r} expects a buffer, got "
                f"{type(value).__name__}")
        return self._coerce_type(parameter.type_name, value)

    @staticmethod
    def _coerce_type(type_name: str, value):
        if value is None or isinstance(value, ArrayValue):
            return value
        if type_name == "float":
            return float(value)
        if type_name == "int":
            return int(value)
        return value


def _truthy(value) -> bool:
    if isinstance(value, ArrayValue):
        return True
    if value is None:
        return False
    return bool(value)


def _c_divide(left, right, line: int):
    if right == 0:
        raise MiniCRuntimeError(f"division by zero at line {line}")
    if isinstance(left, int) and isinstance(right, int):
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient
    return left / right


def _c_modulo(left, right, line: int):
    if right == 0:
        raise MiniCRuntimeError(f"modulo by zero at line {line}")
    if isinstance(left, int) and isinstance(right, int):
        remainder = abs(left) % abs(right)
        return remainder if left >= 0 else -remainder
    raise MiniCTypeError(f"%% requires integer operands at line {line}")
