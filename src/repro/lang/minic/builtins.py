"""Builtin function library available to MiniC programs.

Mirrors the slice of ``<math.h>``/CUDA math that the paper's workloads
(YOLO layers, stencils) use.  Both the ``f``-suffixed single-precision and
plain double-precision spellings are provided; MiniC collapses the
distinction to Python floats, matching how cuda4cpu runs device code on
the host.
"""

from __future__ import annotations

import math
from typing import Callable, Dict


def _clamped_exp(value: float) -> float:
    """exp with the saturation real hardware exhibits instead of raising."""
    if value > 700.0:
        return math.inf
    if value < -700.0:
        return 0.0
    return math.exp(value)


def _safe_log(value: float) -> float:
    if value <= 0.0:
        return -math.inf if value == 0.0 else math.nan
    return math.log(value)


def _safe_sqrt(value: float) -> float:
    if value < 0.0:
        return math.nan
    return math.sqrt(value)


BUILTINS: Dict[str, Callable] = {
    "abs": lambda x: abs(int(x)),
    "fabs": lambda x: abs(float(x)),
    "fabsf": lambda x: abs(float(x)),
    "sqrt": lambda x: _safe_sqrt(float(x)),
    "sqrtf": lambda x: _safe_sqrt(float(x)),
    "exp": lambda x: _clamped_exp(float(x)),
    "expf": lambda x: _clamped_exp(float(x)),
    "log": lambda x: _safe_log(float(x)),
    "logf": lambda x: _safe_log(float(x)),
    "pow": lambda x, y: float(x) ** float(y),
    "powf": lambda x, y: float(x) ** float(y),
    "sin": lambda x: math.sin(float(x)),
    "sinf": lambda x: math.sin(float(x)),
    "cos": lambda x: math.cos(float(x)),
    "cosf": lambda x: math.cos(float(x)),
    "tanh": lambda x: math.tanh(float(x)),
    "tanhf": lambda x: math.tanh(float(x)),
    "floor": lambda x: float(math.floor(float(x))),
    "floorf": lambda x: float(math.floor(float(x))),
    "ceil": lambda x: float(math.ceil(float(x))),
    "ceilf": lambda x: float(math.ceil(float(x))),
    "fmin": lambda x, y: min(float(x), float(y)),
    "fminf": lambda x, y: min(float(x), float(y)),
    "fmax": lambda x, y: max(float(x), float(y)),
    "fmaxf": lambda x, y: max(float(x), float(y)),
    "min": lambda x, y: min(x, y),
    "max": lambda x, y: max(x, y),
}
