"""MiniC AST pretty-printer (unparser).

Renders a parsed :class:`~.ast.Program` back to compilable MiniC source.
Round-tripping (``parse(unparse(parse(src)))``) is the completeness proof
of the AST — the property tests rely on it — and the unparser is what
tools built on MiniC use to emit transformed programs (e.g. a
goto-elimination or single-exit rewriter).
"""

from __future__ import annotations

from typing import List

from . import ast

_PRECEDENCE = {
    ",": 0, "=": 1, "+=": 1, "-=": 1, "*=": 1, "/=": 1, "%=": 1,
    "&=": 1, "|=": 1, "^=": 1, "<<=": 1, ">>=": 1,
    "?:": 2, "||": 3, "&&": 4, "|": 5, "^": 6, "&": 7,
    "==": 8, "!=": 8, "<": 9, ">": 9, "<=": 9, ">=": 9,
    "<<": 10, ">>": 10, "+": 11, "-": 11, "*": 12, "/": 12, "%": 12,
}


def unparse_expression(node: ast.Expression, parent_precedence: int = 0
                       ) -> str:
    """Render one expression with minimal necessary parentheses."""
    if isinstance(node, ast.IntLiteral):
        return str(node.value)
    if isinstance(node, ast.FloatLiteral):
        text = repr(float(node.value))
        return text + "f"
    if isinstance(node, ast.Identifier):
        return node.name
    if isinstance(node, ast.ThreadBuiltin):
        return f"{node.base}.{node.axis}"
    if isinstance(node, ast.Unary):
        inner = unparse_expression(node.operand, 13)
        return f"{node.operator}{inner}"
    if isinstance(node, (ast.Binary, ast.Logical)):
        precedence = _PRECEDENCE.get(node.operator, 11)
        left = unparse_expression(node.left, precedence)
        right = unparse_expression(node.right, precedence + 1)
        text = f"{left} {node.operator} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    if isinstance(node, ast.Conditional):
        condition = unparse_expression(node.condition.expression, 3)
        then_value = unparse_expression(node.then_value, 2)
        else_value = unparse_expression(node.else_value, 2)
        text = f"{condition} ? {then_value} : {else_value}"
        if parent_precedence > 2:
            return f"({text})"
        return text
    if isinstance(node, ast.Assignment):
        target = unparse_expression(node.target, 2)
        value = unparse_expression(node.value, 1)
        text = f"{target} {node.operator} {value}"
        if parent_precedence > 1:
            return f"({text})"
        return text
    if isinstance(node, ast.IncDec):
        target = unparse_expression(node.target, 13)
        if node.is_prefix:
            return f"{node.operator}{target}"
        return f"{target}{node.operator}"
    if isinstance(node, ast.Call):
        arguments = ", ".join(unparse_expression(argument, 1)
                              for argument in node.arguments)
        return f"{node.name}({arguments})"
    if isinstance(node, ast.Index):
        base = unparse_expression(node.base, 13)
        offset = unparse_expression(node.offset, 0)
        return f"{base}[{offset}]"
    if isinstance(node, ast.Cast):
        inner = unparse_expression(node.operand, 13)
        return f"({node.type_name}){inner}"
    raise TypeError(f"cannot unparse {type(node).__name__}")


class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)


def _unparse_statement(statement: ast.Statement, writer: _Writer) -> None:
    if isinstance(statement, ast.Block):
        writer.emit("{")
        writer.indent += 1
        for child in statement.statements:
            _unparse_statement(child, writer)
        writer.indent -= 1
        writer.emit("}")
    elif isinstance(statement, ast.Declaration):
        writer.emit(_declaration_text(statement) + ";")
    elif isinstance(statement, ast.ExpressionStatement):
        if statement.expression is None:
            writer.emit(";")
        else:
            writer.emit(unparse_expression(statement.expression) + ";")
    elif isinstance(statement, ast.If):
        condition = unparse_expression(statement.condition.expression)
        writer.emit(f"if ({condition}) {{")
        writer.indent += 1
        _unparse_branch(statement.then_branch, writer)
        writer.indent -= 1
        if statement.else_branch is not None:
            writer.emit("} else {")
            writer.indent += 1
            _unparse_branch(statement.else_branch, writer)
            writer.indent -= 1
        writer.emit("}")
    elif isinstance(statement, ast.While):
        condition = unparse_expression(statement.condition.expression)
        writer.emit(f"while ({condition}) {{")
        writer.indent += 1
        _unparse_branch(statement.body, writer)
        writer.indent -= 1
        writer.emit("}")
    elif isinstance(statement, ast.DoWhile):
        writer.emit("do {")
        writer.indent += 1
        _unparse_branch(statement.body, writer)
        writer.indent -= 1
        condition = unparse_expression(statement.condition.expression)
        writer.emit(f"}} while ({condition});")
    elif isinstance(statement, ast.For):
        initializer = ""
        if isinstance(statement.initializer, ast.Declaration):
            initializer = _declaration_text(statement.initializer)
        elif isinstance(statement.initializer, ast.ExpressionStatement) \
                and statement.initializer.expression is not None:
            initializer = unparse_expression(
                statement.initializer.expression)
        condition = (unparse_expression(statement.condition.expression)
                     if statement.condition is not None else "")
        increment = (unparse_expression(statement.increment)
                     if statement.increment is not None else "")
        writer.emit(f"for ({initializer}; {condition}; {increment}) {{")
        writer.indent += 1
        _unparse_branch(statement.body, writer)
        writer.indent -= 1
        writer.emit("}")
    elif isinstance(statement, ast.Switch):
        subject = unparse_expression(statement.subject)
        writer.emit(f"switch ({subject}) {{")
        writer.indent += 1
        for case in statement.cases:
            if case.value is None:
                writer.emit("default:")
            else:
                writer.emit(f"case {unparse_expression(case.value)}:")
            writer.indent += 1
            for child in case.body:
                _unparse_statement(child, writer)
            writer.indent -= 1
        writer.indent -= 1
        writer.emit("}")
    elif isinstance(statement, ast.Break):
        writer.emit("break;")
    elif isinstance(statement, ast.Continue):
        writer.emit("continue;")
    elif isinstance(statement, ast.Return):
        if statement.value is None:
            writer.emit("return;")
        else:
            writer.emit(f"return {unparse_expression(statement.value)};")
    else:
        raise TypeError(f"cannot unparse {type(statement).__name__}")


def _unparse_branch(statement: ast.Statement, writer: _Writer) -> None:
    """Emit a branch body without doubling braces for blocks."""
    if isinstance(statement, ast.Block):
        for child in statement.statements:
            _unparse_statement(child, writer)
    else:
        _unparse_statement(statement, writer)


def _declaration_text(declaration: ast.Declaration) -> str:
    text = f"{declaration.type_name} {declaration.name}"
    if declaration.array_size is not None:
        text += f"[{unparse_expression(declaration.array_size)}]"
        if declaration.initializer_list is not None:
            elements = ", ".join(unparse_expression(element)
                                 for element in
                                 declaration.initializer_list)
            text += f" = {{{elements}}}"
    elif declaration.initializer is not None:
        text += f" = {unparse_expression(declaration.initializer)}"
    return text


def unparse_function(function: ast.Function) -> str:
    """Render one function definition."""
    writer = _Writer()
    qualifier = ""
    if function.is_kernel:
        qualifier = "__global__ "
    elif function.is_device:
        qualifier = "__device__ "
    parameters = ", ".join(
        f"{parameter.type_name} {'*' if parameter.is_pointer else ''}"
        f"{parameter.name}"
        for parameter in function.parameters)
    writer.emit(f"{qualifier}{function.return_type} "
                f"{function.name}({parameters}) {{")
    writer.indent += 1
    _unparse_branch(function.body, writer)
    writer.indent -= 1
    writer.emit("}")
    return "\n".join(writer.lines)


def unparse_program(program: ast.Program) -> str:
    """Render a whole program: globals first, then functions."""
    pieces: List[str] = []
    for declaration in program.globals:
        pieces.append(_declaration_text(declaration) + ";")
    for function in program.functions:
        pieces.append(unparse_function(function))
    return "\n\n".join(pieces) + "\n"
