"""Abstract syntax tree for MiniC, the executable C subset.

MiniC is the strict counterpart of the fuzzy C++ model: a small C dialect
with real semantics, used to *execute* code under coverage instrumentation
(paper Sections 3.2 and 3.3).  It supports scalars, one-dimensional arrays,
pointer parameters (array aliases), full C expression syntax, the classic
statement set, and the CUDA markers needed by the GPU emulation layer
(``__global__``/``__device__`` qualifiers and the ``threadIdx``-family
builtins).

Every node carries a ``line`` for diagnostics.  Statements carry a
``statement_id`` and decisions a ``decision_id``, both assigned densely by
the parser so the coverage collector can use flat arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    """Base class for all MiniC AST nodes."""

    line: int


# ---------------------------------------------------------------------------
# expressions


@dataclass
class Expression(Node):
    """Base class for expressions."""


@dataclass
class IntLiteral(Expression):
    value: int


@dataclass
class FloatLiteral(Expression):
    value: float


@dataclass
class Identifier(Expression):
    name: str


@dataclass
class ThreadBuiltin(Expression):
    """A CUDA builtin component, e.g. ``threadIdx.x``.

    Attributes:
        base: one of ``threadIdx``, ``blockIdx``, ``blockDim``, ``gridDim``.
        axis: ``x``, ``y`` or ``z``.
    """

    base: str
    axis: str


@dataclass
class Unary(Expression):
    """Prefix unary operator: ``!``, ``-``, ``+``, ``~``."""

    operator: str
    operand: Expression


@dataclass
class Binary(Expression):
    """Non-short-circuit binary operator."""

    operator: str
    left: Expression
    right: Expression


@dataclass
class Logical(Expression):
    """Short-circuit ``&&`` / ``||``.

    Kept distinct from :class:`Binary` because MC/DC decomposition and the
    interpreter's short-circuit evaluation both hinge on it.
    """

    operator: str
    left: Expression
    right: Expression


@dataclass
class Conditional(Expression):
    """The ternary operator ``condition ? then : otherwise``."""

    condition: "Decision"
    then_value: Expression
    else_value: Expression


@dataclass
class Assignment(Expression):
    """Simple or compound assignment to an lvalue."""

    operator: str  # "=", "+=", "-=", "*=", "/=", "%="
    target: Expression  # Identifier or Index
    value: Expression


@dataclass
class IncDec(Expression):
    """``++``/``--`` in prefix or postfix position."""

    operator: str  # "++" or "--"
    target: Expression
    is_prefix: bool


@dataclass
class Call(Expression):
    name: str
    arguments: List[Expression] = field(default_factory=list)


@dataclass
class Index(Expression):
    """Array or pointer subscript ``base[offset]``."""

    base: Expression
    offset: Expression


@dataclass
class Cast(Expression):
    """C-style cast to a builtin type, e.g. ``(int)x``."""

    type_name: str
    operand: Expression


# ---------------------------------------------------------------------------
# decisions (coverage units)


@dataclass
class Decision(Node):
    """A boolean decision: the condition of an if/while/for/do/ternary.

    Attributes:
        expression: the underlying expression.
        decision_id: dense index assigned by the parser (-1 = unassigned).
        conditions: the atomic conditions, i.e. the leaves of the
            ``&&``/``||`` tree, in evaluation order.  Each entry is the
            leaf expression; a decision with one entry is a simple
            condition.
    """

    expression: Expression
    decision_id: int = -1
    conditions: List[Expression] = field(default_factory=list)

    @property
    def condition_count(self) -> int:
        return len(self.conditions)

    @property
    def is_compound(self) -> bool:
        return len(self.conditions) > 1


def decompose_conditions(expression: Expression) -> List[Expression]:
    """The atomic conditions of a decision, left to right.

    Leaves are everything that is not a ``&&``/``||`` node; a ``!`` applied
    to a compound expression keeps the compound as separate leaves per the
    usual MC/DC treatment of negation normal form is *not* applied — the
    negation stays part of the leaf, matching how RapiCover counts
    conditions on source operators.
    """
    leaves: List[Expression] = []

    def walk(node: Expression) -> None:
        if isinstance(node, Logical):
            walk(node.left)
            walk(node.right)
        else:
            leaves.append(node)

    walk(expression)
    return leaves


# ---------------------------------------------------------------------------
# statements


@dataclass
class Statement(Node):
    """Base class for statements; carries the coverage statement id."""

    statement_id: int = -1


@dataclass
class Declaration(Statement):
    """``type name [size]? [= init]?`` — scalar or array declaration."""

    type_name: str = "int"
    name: str = ""
    array_size: Optional[Expression] = None
    initializer: Optional[Expression] = None
    initializer_list: Optional[List[Expression]] = None


@dataclass
class ExpressionStatement(Statement):
    expression: Optional[Expression] = None  # None = empty statement


@dataclass
class Block(Statement):
    statements: List[Statement] = field(default_factory=list)


@dataclass
class If(Statement):
    condition: Decision = None  # type: ignore[assignment]
    then_branch: Statement = None  # type: ignore[assignment]
    else_branch: Optional[Statement] = None


@dataclass
class While(Statement):
    condition: Decision = None  # type: ignore[assignment]
    body: Statement = None  # type: ignore[assignment]


@dataclass
class DoWhile(Statement):
    body: Statement = None  # type: ignore[assignment]
    condition: Decision = None  # type: ignore[assignment]


@dataclass
class For(Statement):
    initializer: Optional[Statement] = None
    condition: Optional[Decision] = None
    increment: Optional[Expression] = None
    body: Statement = None  # type: ignore[assignment]


@dataclass
class SwitchCase:
    """One ``case value:`` or ``default:`` clause."""

    value: Optional[Expression]  # None for default
    body: List[Statement]
    line: int
    statement_id: int = -1


@dataclass
class Switch(Statement):
    subject: Expression = None  # type: ignore[assignment]
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class Break(Statement):
    pass


@dataclass
class Continue(Statement):
    pass


@dataclass
class Return(Statement):
    value: Optional[Expression] = None


# ---------------------------------------------------------------------------
# functions and programs


@dataclass
class ParameterDecl:
    """A formal parameter: scalar, pointer (array alias), or array."""

    type_name: str
    name: str
    is_pointer: bool
    line: int


@dataclass
class Function(Node):
    """A MiniC function definition."""

    name: str = ""
    return_type: str = "void"
    parameters: List[ParameterDecl] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]
    is_kernel: bool = False
    is_device: bool = False


@dataclass
class Program(Node):
    """A parsed MiniC translation unit.

    Attributes:
        functions: all function definitions, in source order.
        statement_count: number of statement ids assigned.
        decision_count: number of decision ids assigned.
        filename: source name for coverage reports.
    """

    functions: List[Function] = field(default_factory=list)
    globals: List[Declaration] = field(default_factory=list)
    statements: List[Statement] = field(default_factory=list)
    decisions: List[Decision] = field(default_factory=list)
    filename: str = "<memory>"

    @property
    def statement_count(self) -> int:
        return len(self.statements)

    @property
    def decision_count(self) -> int:
        return len(self.decisions)

    def function(self, name: str) -> Function:
        for candidate in self.functions:
            if candidate.name == name:
                return candidate
        raise KeyError(f"program defines no function {name!r}")

    @property
    def kernels(self) -> List[Function]:
        return [function for function in self.functions if function.is_kernel]


def iter_statements(node) -> List[Statement]:
    """All statements beneath ``node`` (including it), preorder."""
    found: List[Statement] = []

    def walk(current) -> None:
        if isinstance(current, Statement):
            found.append(current)
        if isinstance(current, Block):
            for child in current.statements:
                walk(child)
        elif isinstance(current, If):
            walk(current.then_branch)
            if current.else_branch is not None:
                walk(current.else_branch)
        elif isinstance(current, (While, DoWhile)):
            walk(current.body)
        elif isinstance(current, For):
            if current.initializer is not None:
                walk(current.initializer)
            walk(current.body)
        elif isinstance(current, Switch):
            for case in current.cases:
                for child in case.body:
                    walk(child)
        elif isinstance(current, Function):
            walk(current.body)

    walk(node)
    return found


def iter_decisions(node) -> List[Tuple[Decision, Statement]]:
    """All decisions beneath ``node`` with their owning statements."""
    found: List[Tuple[Decision, Statement]] = []
    for statement in iter_statements(node):
        if isinstance(statement, If):
            found.append((statement.condition, statement))
        elif isinstance(statement, While):
            found.append((statement.condition, statement))
        elif isinstance(statement, DoWhile):
            found.append((statement.condition, statement))
        elif isinstance(statement, For) and statement.condition is not None:
            found.append((statement.condition, statement))
        # Ternary decisions are collected by the parser during assignment
        # of ids; they are attached to their enclosing statement for
        # reporting purposes only.
    return found
