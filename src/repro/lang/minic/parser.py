"""Recursive-descent parser for MiniC.

Grammar (C subset):

* top level: global declarations and function definitions, with optional
  ``__global__``/``__device__``/``static``/``inline`` qualifiers;
* types: ``void``, ``int`` family (``char``/``short``/``long``/``unsigned``
  collapse to ``int``), ``float`` family (``double`` collapses to
  ``float``), ``bool`` (collapses to ``int``);
* full C expression precedence including assignment, ternary,
  short-circuit logic, bitwise, shifts, casts, subscripts and calls;
* statements: declaration, expression, block, if/else, while, do-while,
  for, switch/case/default, break, continue, return.

The parser assigns dense ``statement_id``/``decision_id`` values and
registers every statement and decision on the :class:`~.ast.Program`, which
is what makes the coverage engine's flat probe arrays possible.
"""

from __future__ import annotations

from typing import List, Optional

from ...errors import ParseError
from ..lexer import tokenize
from ..tokens import Token, TokenKind
from . import ast

_TYPE_STARTERS = frozenset({"void", "int", "float", "double", "bool", "char",
                            "long", "short", "unsigned", "signed"})
_QUALIFIERS = frozenset({"static", "inline", "const", "extern", "register",
                         "volatile"})
_CUDA_QUALIFIERS = frozenset({"__global__", "__device__", "__host__",
                              "__forceinline__", "__restrict__"})
_THREAD_BUILTINS = frozenset({"threadIdx", "blockIdx", "blockDim", "gridDim"})
_FLOAT_TYPES = frozenset({"float", "double"})

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                         "<<=", ">>="})


class Parser:
    """One-shot parser: construct, then call :meth:`parse`."""

    def __init__(self, source: str, filename: str = "<memory>") -> None:
        self.filename = filename
        raw = tokenize(source, filename, strict=True)
        self.tokens = [token for token in raw
                       if token.kind not in (TokenKind.COMMENT,
                                             TokenKind.PREPROCESSOR)]
        self.position = 0
        self.program = ast.Program(line=1, filename=filename)

    # ------------------------------------------------------------------
    # token helpers

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self.position + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def _at_end(self) -> bool:
        return self.position >= len(self.tokens)

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of input")
        self.position += 1
        return token

    def _check_punct(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.is_punct(text)

    def _check_keyword(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.is_keyword(text)

    def _match_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self.position += 1
            return True
        return False

    def _match_keyword(self, text: str) -> bool:
        if self._check_keyword(text):
            self.position += 1
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if token is None or not token.is_punct(text):
            raise self._error(f"expected {text!r}"
                              + (f", got {token.text!r}" if token else ""))
        return self._advance()

    def _expect_identifier(self) -> Token:
        token = self._peek()
        if token is None or token.kind is not TokenKind.IDENTIFIER:
            raise self._error("expected identifier"
                              + (f", got {token.text!r}" if token else ""))
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        line = token.line if token else 0
        column = token.column if token else 0
        return ParseError(message, self.filename, line, column)

    # ------------------------------------------------------------------
    # id assignment

    def _register_statement(self, statement: ast.Statement) -> None:
        statement.statement_id = len(self.program.statements)
        self.program.statements.append(statement)

    def _make_decision(self, expression: ast.Expression,
                       line: int) -> ast.Decision:
        decision = ast.Decision(line=line, expression=expression)
        decision.conditions = ast.decompose_conditions(expression)
        decision.decision_id = len(self.program.decisions)
        self.program.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    # top level

    def parse(self) -> ast.Program:
        while not self._at_end():
            self._parse_top_level()
        return self.program

    def _parse_top_level(self) -> None:
        is_kernel = False
        is_device = False
        while True:
            token = self._peek()
            if token is None:
                return
            if token.kind is TokenKind.KEYWORD \
                    and token.text in _CUDA_QUALIFIERS:
                if token.text == "__global__":
                    is_kernel = True
                elif token.text == "__device__":
                    is_device = True
                self._advance()
            elif token.kind is TokenKind.KEYWORD \
                    and token.text in _QUALIFIERS:
                self._advance()
            else:
                break
        type_name = self._parse_type()
        # Pointer return types are not supported; a `*` here is an error.
        if self._check_punct("*"):
            raise self._error("pointer return types are not supported")
        name = self._expect_identifier()
        if self._check_punct("("):
            self._parse_function(type_name, name, is_kernel, is_device)
        else:
            declaration = self._finish_declaration(type_name, name,
                                                   register=False)
            self.program.globals.append(declaration)

    def _parse_type(self) -> str:
        token = self._peek()
        if token is None or token.kind is not TokenKind.KEYWORD \
                or token.text not in _TYPE_STARTERS:
            raise self._error("expected type name"
                              + (f", got {token.text!r}" if token else ""))
        parts = []
        while True:
            token = self._peek()
            if token is not None and token.kind is TokenKind.KEYWORD \
                    and token.text in _TYPE_STARTERS:
                parts.append(token.text)
                self._advance()
            else:
                break
        if "void" in parts:
            return "void"
        if any(part in _FLOAT_TYPES for part in parts):
            return "float"
        return "int"

    def _parse_function(self, return_type: str, name: Token,
                        is_kernel: bool, is_device: bool) -> None:
        self._expect_punct("(")
        parameters: List[ast.ParameterDecl] = []
        if not self._check_punct(")"):
            if self._check_keyword("void") \
                    and self._peek(1) is not None \
                    and self._peek(1).is_punct(")"):
                self._advance()
            else:
                while True:
                    parameters.append(self._parse_parameter())
                    if not self._match_punct(","):
                        break
        self._expect_punct(")")
        body = self._parse_block()
        self.program.functions.append(ast.Function(
            line=name.line,
            name=name.text,
            return_type=return_type,
            parameters=parameters,
            body=body,
            is_kernel=is_kernel,
            is_device=is_device,
        ))

    def _parse_parameter(self) -> ast.ParameterDecl:
        while self._check_keyword("const"):
            self._advance()
        type_name = self._parse_type()
        while self._check_keyword("const"):
            self._advance()
        is_pointer = False
        while self._check_punct("*"):
            is_pointer = True
            self._advance()
        while self._peek() is not None \
                and self._peek().kind is TokenKind.KEYWORD \
                and self._peek().text == "__restrict__":
            self._advance()
        name = self._expect_identifier()
        if self._match_punct("["):
            is_pointer = True
            if not self._check_punct("]"):
                self._parse_expression()  # declared size is documentation
            self._expect_punct("]")
        return ast.ParameterDecl(type_name=type_name, name=name.text,
                                 is_pointer=is_pointer, line=name.line)

    # ------------------------------------------------------------------
    # statements

    def _parse_block(self) -> ast.Block:
        open_brace = self._expect_punct("{")
        statements: List[ast.Statement] = []
        while not self._check_punct("}"):
            if self._at_end():
                raise self._error("unterminated block")
            statements.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(line=open_brace.line, statements=statements)

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token is None:
            raise self._error("expected statement")
        if token.is_punct("{"):
            return self._parse_block()
        if token.kind is TokenKind.KEYWORD:
            if token.text in _TYPE_STARTERS or token.text == "const":
                return self._parse_declaration()
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "do":
                return self._parse_do_while()
            if token.text == "for":
                return self._parse_for()
            if token.text == "switch":
                return self._parse_switch()
            if token.text == "break":
                self._advance()
                self._expect_punct(";")
                statement = ast.Break(line=token.line)
                self._register_statement(statement)
                return statement
            if token.text == "continue":
                self._advance()
                self._expect_punct(";")
                statement = ast.Continue(line=token.line)
                self._register_statement(statement)
                return statement
            if token.text == "return":
                self._advance()
                value = None
                if not self._check_punct(";"):
                    value = self._parse_expression()
                self._expect_punct(";")
                statement = ast.Return(line=token.line, value=value)
                self._register_statement(statement)
                return statement
        if token.is_punct(";"):
            self._advance()
            return ast.ExpressionStatement(line=token.line, expression=None)
        expression = self._parse_expression()
        self._expect_punct(";")
        statement = ast.ExpressionStatement(line=token.line,
                                            expression=expression)
        self._register_statement(statement)
        return statement

    def _parse_declaration(self) -> ast.Declaration:
        while self._check_keyword("const"):
            self._advance()
        start = self._peek()
        type_name = self._parse_type()
        while self._check_keyword("const"):
            self._advance()
        name = self._expect_identifier()
        declaration = self._finish_declaration(type_name, name,
                                               register=True)
        declaration.line = start.line if start else name.line
        return declaration

    def _finish_declaration(self, type_name: str, name: Token,
                            register: bool) -> ast.Declaration:
        declaration = ast.Declaration(line=name.line, type_name=type_name,
                                      name=name.text)
        if self._match_punct("["):
            declaration.array_size = self._parse_expression()
            self._expect_punct("]")
            if self._match_punct("="):
                self._expect_punct("{")
                elements: List[ast.Expression] = []
                if not self._check_punct("}"):
                    while True:
                        elements.append(self._parse_assignment())
                        if not self._match_punct(","):
                            break
                self._expect_punct("}")
                declaration.initializer_list = elements
        elif self._match_punct("="):
            declaration.initializer = self._parse_assignment()
        self._expect_punct(";")
        if register:
            self._register_statement(declaration)
        return declaration

    def _parse_if(self) -> ast.If:
        keyword = self._advance()
        self._expect_punct("(")
        condition = self._make_decision(self._parse_expression(),
                                        keyword.line)
        self._expect_punct(")")
        then_branch = self._parse_statement()
        else_branch = None
        if self._match_keyword("else"):
            else_branch = self._parse_statement()
        statement = ast.If(line=keyword.line, condition=condition,
                           then_branch=then_branch, else_branch=else_branch)
        self._register_statement(statement)
        return statement

    def _parse_while(self) -> ast.While:
        keyword = self._advance()
        self._expect_punct("(")
        condition = self._make_decision(self._parse_expression(),
                                        keyword.line)
        self._expect_punct(")")
        body = self._parse_statement()
        statement = ast.While(line=keyword.line, condition=condition,
                              body=body)
        self._register_statement(statement)
        return statement

    def _parse_do_while(self) -> ast.DoWhile:
        keyword = self._advance()
        body = self._parse_statement()
        if not self._match_keyword("while"):
            raise self._error("expected 'while' after do body")
        self._expect_punct("(")
        condition = self._make_decision(self._parse_expression(),
                                        keyword.line)
        self._expect_punct(")")
        self._expect_punct(";")
        statement = ast.DoWhile(line=keyword.line, body=body,
                                condition=condition)
        self._register_statement(statement)
        return statement

    def _parse_for(self) -> ast.For:
        keyword = self._advance()
        self._expect_punct("(")
        initializer: Optional[ast.Statement] = None
        if not self._check_punct(";"):
            token = self._peek()
            if token is not None and token.kind is TokenKind.KEYWORD \
                    and (token.text in _TYPE_STARTERS
                         or token.text == "const"):
                initializer = self._parse_declaration()
            else:
                expression = self._parse_expression()
                self._expect_punct(";")
                initializer = ast.ExpressionStatement(line=token.line,
                                                      expression=expression)
                self._register_statement(initializer)
        else:
            self._advance()
        condition: Optional[ast.Decision] = None
        if not self._check_punct(";"):
            condition = self._make_decision(self._parse_expression(),
                                            keyword.line)
        self._expect_punct(";")
        increment: Optional[ast.Expression] = None
        if not self._check_punct(")"):
            increment = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        statement = ast.For(line=keyword.line, initializer=initializer,
                            condition=condition, increment=increment,
                            body=body)
        self._register_statement(statement)
        return statement

    def _parse_switch(self) -> ast.Switch:
        keyword = self._advance()
        self._expect_punct("(")
        subject = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[ast.SwitchCase] = []
        while not self._check_punct("}"):
            token = self._peek()
            if token is None:
                raise self._error("unterminated switch")
            if self._match_keyword("case"):
                value = self._parse_expression()
                self._expect_punct(":")
                case = ast.SwitchCase(value=value, body=[], line=token.line)
                case.statement_id = len(self.program.statements)
                self.program.statements.append(case)  # type: ignore[arg-type]
                cases.append(case)
            elif self._match_keyword("default"):
                self._expect_punct(":")
                case = ast.SwitchCase(value=None, body=[], line=token.line)
                case.statement_id = len(self.program.statements)
                self.program.statements.append(case)  # type: ignore[arg-type]
                cases.append(case)
            else:
                if not cases:
                    raise self._error("statement before first case label")
                cases[-1].body.append(self._parse_statement())
        self._expect_punct("}")
        statement = ast.Switch(line=keyword.line, subject=subject,
                               cases=cases)
        self._register_statement(statement)
        return statement

    # ------------------------------------------------------------------
    # expressions (precedence climbing)

    def _parse_expression(self) -> ast.Expression:
        expression = self._parse_assignment()
        while self._match_punct(","):
            right = self._parse_assignment()
            expression = ast.Binary(line=right.line, operator=",",
                                    left=expression, right=right)
        return expression

    def _parse_assignment(self) -> ast.Expression:
        target = self._parse_ternary()
        token = self._peek()
        if token is not None and token.kind is TokenKind.PUNCT \
                and token.text in _ASSIGN_OPS:
            if not isinstance(target, (ast.Identifier, ast.Index)):
                raise self._error("assignment target must be a variable or "
                                  "array element")
            operator = self._advance().text
            value = self._parse_assignment()
            return ast.Assignment(line=token.line, operator=operator,
                                  target=target, value=value)
        return target

    def _parse_ternary(self) -> ast.Expression:
        condition = self._parse_logical_or()
        if self._check_punct("?"):
            token = self._advance()
            decision = self._make_decision(condition, token.line)
            then_value = self._parse_assignment()
            self._expect_punct(":")
            else_value = self._parse_assignment()
            return ast.Conditional(line=token.line, condition=decision,
                                   then_value=then_value,
                                   else_value=else_value)
        return condition

    def _parse_logical_or(self) -> ast.Expression:
        left = self._parse_logical_and()
        while self._check_punct("||"):
            token = self._advance()
            right = self._parse_logical_and()
            left = ast.Logical(line=token.line, operator="||", left=left,
                               right=right)
        return left

    def _parse_logical_and(self) -> ast.Expression:
        left = self._parse_bitwise_or()
        while self._check_punct("&&"):
            token = self._advance()
            right = self._parse_bitwise_or()
            left = ast.Logical(line=token.line, operator="&&", left=left,
                               right=right)
        return left

    def _parse_bitwise_or(self) -> ast.Expression:
        return self._parse_binary_level((("|",), ("^",), ("&",)), 0,
                                        self._parse_equality)

    def _parse_binary_level(self, levels, depth, bottom):
        if depth >= len(levels):
            return bottom()
        operators = levels[depth]
        left = self._parse_binary_level(levels, depth + 1, bottom)
        while True:
            token = self._peek()
            if token is not None and token.kind is TokenKind.PUNCT \
                    and token.text in operators:
                self._advance()
                right = self._parse_binary_level(levels, depth + 1, bottom)
                left = ast.Binary(line=token.line, operator=token.text,
                                  left=left, right=right)
            else:
                return left

    def _parse_equality(self) -> ast.Expression:
        left = self._parse_relational()
        while True:
            token = self._peek()
            if token is not None and (token.is_punct("==")
                                      or token.is_punct("!=")):
                self._advance()
                right = self._parse_relational()
                left = ast.Binary(line=token.line, operator=token.text,
                                  left=left, right=right)
            else:
                return left

    def _parse_relational(self) -> ast.Expression:
        left = self._parse_shift()
        while True:
            token = self._peek()
            if token is not None and token.kind is TokenKind.PUNCT \
                    and token.text in ("<", ">", "<=", ">="):
                self._advance()
                right = self._parse_shift()
                left = ast.Binary(line=token.line, operator=token.text,
                                  left=left, right=right)
            else:
                return left

    def _parse_shift(self) -> ast.Expression:
        left = self._parse_additive()
        while True:
            token = self._peek()
            if token is not None and (token.is_punct("<<")
                                      or token.is_punct(">>")):
                self._advance()
                right = self._parse_additive()
                left = ast.Binary(line=token.line, operator=token.text,
                                  left=left, right=right)
            else:
                return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token is not None and (token.is_punct("+")
                                      or token.is_punct("-")):
                self._advance()
                right = self._parse_multiplicative()
                left = ast.Binary(line=token.line, operator=token.text,
                                  left=left, right=right)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token is not None and token.kind is TokenKind.PUNCT \
                    and token.text in ("*", "/", "%"):
                self._advance()
                right = self._parse_unary()
                left = ast.Binary(line=token.line, operator=token.text,
                                  left=left, right=right)
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token is None:
            raise self._error("expected expression")
        if token.kind is TokenKind.PUNCT and token.text in ("!", "-", "+",
                                                            "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, operator=token.text,
                             operand=operand)
        if token.is_punct("++") or token.is_punct("--"):
            self._advance()
            target = self._parse_unary()
            if not isinstance(target, (ast.Identifier, ast.Index)):
                raise self._error("++/-- target must be a variable or "
                                  "array element")
            return ast.IncDec(line=token.line, operator=token.text,
                              target=target, is_prefix=True)
        if token.is_punct("(") and self._is_cast_ahead():
            self._advance()
            type_name = self._parse_type()
            self._expect_punct(")")
            operand = self._parse_unary()
            return ast.Cast(line=token.line, type_name=type_name,
                            operand=operand)
        return self._parse_postfix()

    def _is_cast_ahead(self) -> bool:
        """True when position is at ``( typename )``."""
        first = self._peek(1)
        if first is None or first.kind is not TokenKind.KEYWORD \
                or first.text not in _TYPE_STARTERS:
            return False
        offset = 1
        while True:
            token = self._peek(offset)
            if token is None:
                return False
            if token.kind is TokenKind.KEYWORD \
                    and token.text in _TYPE_STARTERS:
                offset += 1
                continue
            return token.is_punct(")")

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_primary()
        while True:
            token = self._peek()
            if token is None:
                return expression
            if token.is_punct("["):
                self._advance()
                offset = self._parse_expression()
                self._expect_punct("]")
                expression = ast.Index(line=token.line, base=expression,
                                       offset=offset)
            elif token.is_punct("++") or token.is_punct("--"):
                if not isinstance(expression, (ast.Identifier, ast.Index)):
                    raise self._error("++/-- target must be a variable or "
                                      "array element")
                self._advance()
                expression = ast.IncDec(line=token.line, operator=token.text,
                                        target=expression, is_prefix=False)
            else:
                return expression

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token is None:
            raise self._error("expected expression")
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return self._make_number(token)
        if token.kind is TokenKind.CHAR:
            self._advance()
            return ast.IntLiteral(line=token.line,
                                  value=_char_value(token.text))
        if token.is_keyword("true"):
            self._advance()
            return ast.IntLiteral(line=token.line, value=1)
        if token.is_keyword("false"):
            self._advance()
            return ast.IntLiteral(line=token.line, value=0)
        if token.kind is TokenKind.IDENTIFIER:
            if token.text in _THREAD_BUILTINS:
                return self._parse_thread_builtin()
            self._advance()
            if self._check_punct("("):
                self._advance()
                arguments: List[ast.Expression] = []
                if not self._check_punct(")"):
                    while True:
                        arguments.append(self._parse_assignment())
                        if not self._match_punct(","):
                            break
                self._expect_punct(")")
                return ast.Call(line=token.line, name=token.text,
                                arguments=arguments)
            return ast.Identifier(line=token.line, name=token.text)
        if token.is_punct("("):
            self._advance()
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        raise self._error(f"unexpected token {token.text!r} in expression")

    def _parse_thread_builtin(self) -> ast.ThreadBuiltin:
        base = self._advance()
        self._expect_punct(".")
        axis = self._expect_identifier()
        if axis.text not in ("x", "y", "z"):
            raise self._error(f"unknown builtin axis {axis.text!r}")
        return ast.ThreadBuiltin(line=base.line, base=base.text,
                                 axis=axis.text)

    @staticmethod
    def _make_number(token: Token) -> ast.Expression:
        if token.text.lower().startswith("0x"):
            # Strip integer suffixes only — hex digits include 'f'/'F'.
            cleaned = token.text.replace("'", "").rstrip("uUlL")
            return ast.IntLiteral(line=token.line, value=int(cleaned, 16))
        text = token.text.rstrip("uUlLfF")
        cleaned = text.replace("'", "")
        is_float = ("." in cleaned or "e" in cleaned.lower()
                    or token.text.rstrip("uUlL").endswith(("f", "F")))
        if is_float:
            return ast.FloatLiteral(line=token.line, value=float(cleaned))
        return ast.IntLiteral(line=token.line, value=int(cleaned, 0))


def _char_value(literal: str) -> int:
    inner = literal[1:-1]
    if inner.startswith("\\"):
        escapes = {"\\n": 10, "\\t": 9, "\\0": 0, "\\r": 13, "\\\\": 92,
                   "\\'": 39}
        return escapes.get(inner, ord(inner[-1]))
    return ord(inner) if inner else 0


def parse_program(source: str, filename: str = "<memory>") -> ast.Program:
    """Parse MiniC source into a :class:`~.ast.Program`."""
    return Parser(source, filename).parse()
