"""Re-exports of MiniC error types for convenient import."""

from ...errors import (
    InterpreterError,
    MiniCIndexError,
    MiniCNameError,
    MiniCRuntimeError,
    MiniCStepLimitExceeded,
    MiniCTypeError,
    ParseError,
)

__all__ = [
    "InterpreterError",
    "MiniCIndexError",
    "MiniCNameError",
    "MiniCRuntimeError",
    "MiniCStepLimitExceeded",
    "MiniCTypeError",
    "ParseError",
]
