"""AST transformations: automated remediation of unit-design findings.

The paper claims several Table 8 violations are mechanically fixable
("code can be modified to cover most of these requirements").  This
module makes that claim executable for the single-exit rule (Table 8
item 1): :func:`to_single_exit` rewrites early returns into a
result-variable form with exactly one ``return``, preserving semantics
(the tests verify behaviour on random inputs and re-measure the
multi-exit metric afterwards).

The rewrite handles the guard-return shape::

    if (c) { return v; }          if (c) { __result = v; }
    rest...               ==>     else { rest'... }
    return w;                     return __result;

where ``rest'`` is the recursively folded remainder.  Returns nested
inside loops or switches need full CFG restructuring and are reported as
skipped — the effort gradation the paper describes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Tuple

from . import ast

#: Name of the synthesized result variable.
RESULT_NAME = "__single_exit_result"


@dataclass
class TransformReport:
    """Outcome of one program transformation pass."""

    transformed: List[str]
    skipped: List[str]

    @property
    def transformed_count(self) -> int:
        return len(self.transformed)


def _contains_return(statement: ast.Statement) -> bool:
    return any(isinstance(child, ast.Return)
               for child in ast.iter_statements(statement))


def _branch_sole_return(branch: Optional[ast.Statement]
                        ) -> Optional[ast.Return]:
    """The single Return when the branch is exactly one return."""
    if branch is None:
        return None
    if isinstance(branch, ast.Return):
        return branch
    if isinstance(branch, ast.Block):
        statements = [statement for statement in branch.statements
                      if not (isinstance(statement,
                                         ast.ExpressionStatement)
                              and statement.expression is None)]
        if len(statements) == 1 and isinstance(statements[0], ast.Return):
            return statements[0]
    return None


def _is_transformable(function: ast.Function) -> bool:
    """Top-level returns and top-level guard-returns only."""
    for statement in function.body.statements:
        if isinstance(statement, ast.Return):
            continue
        if isinstance(statement, ast.If):
            then_ok = (_branch_sole_return(statement.then_branch)
                       is not None
                       or not _contains_return(statement.then_branch))
            else_ok = (statement.else_branch is None
                       or _branch_sole_return(statement.else_branch)
                       is not None
                       or not _contains_return(statement.else_branch))
            if then_ok and else_ok:
                continue
            return False
        if _contains_return(statement):
            return False
    return True


def _exit_count(function: ast.Function) -> int:
    return sum(1 for statement in ast.iter_statements(function.body)
               if isinstance(statement, ast.Return))


def _assign_result(value: Optional[ast.Expression],
                   line: int) -> ast.Statement:
    target = ast.Identifier(line=line, name=RESULT_NAME)
    expression = ast.Assignment(
        line=line, operator="=", target=target,
        value=value if value is not None
        else ast.IntLiteral(line=line, value=0))
    return ast.ExpressionStatement(line=line, expression=expression)


def _fold(statements: List[ast.Statement], line: int
          ) -> Tuple[List[ast.Statement], bool]:
    """Replace returns with result assignments.

    Returns:
        (folded statements, all_paths_assign) — the flag is True when
        every control path through the folded sequence assigns the
        result (i.e. the original sequence always returned).
    """
    folded: List[ast.Statement] = []
    for index, statement in enumerate(statements):
        if isinstance(statement, ast.Return):
            folded.append(_assign_result(statement.value,
                                         statement.line))
            return folded, True  # rest is dead code
        if isinstance(statement, ast.If):
            then_return = _branch_sole_return(statement.then_branch)
            else_return = _branch_sole_return(statement.else_branch)
            rest = statements[index + 1:]
            if then_return is not None and statement.else_branch is None:
                else_body, else_assigns = _fold(rest, line)
                folded.append(ast.If(
                    line=statement.line,
                    condition=statement.condition,
                    then_branch=ast.Block(
                        line=statement.line,
                        statements=[_assign_result(then_return.value,
                                                   then_return.line)]),
                    else_branch=ast.Block(line=statement.line,
                                          statements=else_body)))
                return folded, else_assigns
            if then_return is not None and else_return is not None:
                folded.append(ast.If(
                    line=statement.line,
                    condition=statement.condition,
                    then_branch=ast.Block(
                        line=statement.line,
                        statements=[_assign_result(then_return.value,
                                                   then_return.line)]),
                    else_branch=ast.Block(
                        line=statement.line,
                        statements=[_assign_result(else_return.value,
                                                   else_return.line)])))
                # Both branches returned: everything after is dead.
                return folded, True
        folded.append(statement)
    return folded, False


def to_single_exit(program: ast.Program) -> Tuple[str, TransformReport]:
    """Rewrite transformable multi-exit functions to a single exit.

    Returns:
        (new source text, report).  Callers re-parse the text to obtain
        fresh, densely numbered coverage ids.
    """
    from .unparse import unparse_program
    clone = copy.deepcopy(program)
    report = TransformReport(transformed=[], skipped=[])
    for function in clone.functions:
        if _exit_count(function) <= 1:
            continue
        if function.return_type == "void" \
                or not _is_transformable(function):
            report.skipped.append(function.name)
            continue
        folded, all_assign = _fold(function.body.statements,
                                   function.line)
        if not all_assign:
            report.skipped.append(function.name)
            continue
        declaration = ast.Declaration(
            line=function.line,
            type_name=function.return_type,
            name=RESULT_NAME,
            initializer=ast.IntLiteral(line=function.line, value=0))
        return_statement = ast.Return(
            line=function.line,
            value=ast.Identifier(line=function.line, name=RESULT_NAME))
        function.body = ast.Block(
            line=function.body.line,
            statements=[declaration] + folded + [return_statement])
        report.transformed.append(function.name)
    return unparse_program(clone), report
