"""MiniC: the executable, instrumentable C subset."""

from . import ast
from .builtins import BUILTINS
from .interpreter import ArrayValue, Interpreter, ThreadContext, Tracer
from .parser import Parser, parse_program
from .transforms import TransformReport, to_single_exit
from .unparse import unparse_expression, unparse_function, unparse_program

__all__ = [
    "ArrayValue",
    "BUILTINS",
    "Interpreter",
    "Parser",
    "ThreadContext",
    "Tracer",
    "TransformReport",
    "to_single_exit",
    "ast",
    "parse_program",
    "unparse_expression",
    "unparse_function",
    "unparse_program",
]
