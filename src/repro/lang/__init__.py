"""Language-processing substrate: lexer, fuzzy C++ model, and MiniC.

Two layers coexist by design (see DESIGN.md):

* the *fuzzy* layer (:mod:`repro.lang.lexer`, :mod:`repro.lang.cppmodel`)
  tokenizes and structurally models arbitrary industrial C++/CUDA, the way
  Lizard does — robust, heuristic, never executes anything;
* the *strict* layer (:mod:`repro.lang.minic`) parses and executes a
  well-defined C subset, which the coverage engine instruments.
"""

from .cppmodel import (
    ClassInfo,
    FunctionInfo,
    GlobalVariable,
    Parameter,
    TranslationUnit,
    parse_translation_unit,
)
from .lexer import Lexer, code_tokens, tokenize
from .preprocessor import (
    Include,
    MacroDefinition,
    PreprocessorSummary,
    summarize,
    summarize_tokens,
)
from .tokens import Token, TokenKind

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "GlobalVariable",
    "Include",
    "Lexer",
    "MacroDefinition",
    "Parameter",
    "PreprocessorSummary",
    "Token",
    "TokenKind",
    "TranslationUnit",
    "code_tokens",
    "parse_translation_unit",
    "summarize",
    "summarize_tokens",
    "tokenize",
]
