"""Lightweight preprocessor-directive analysis.

The analyzers never expand macros — industrial metric tools such as Lizard
do not either — but several checks need directive-level facts: the include
graph feeds the coupling metric, macro definitions feed the hidden-control-
flow check, and conditional-compilation density is itself a complexity
signal flagged by MISRA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from .lexer import Lexer
from .tokens import Token, TokenKind


@dataclass(frozen=True)
class Directive:
    """A parsed preprocessor directive.

    Attributes:
        name: directive keyword, e.g. ``"include"``, ``"define"``.
        argument: the remainder of the directive line, stripped.
        line: 1-based source line.
    """

    name: str
    argument: str
    line: int


@dataclass(frozen=True)
class Include:
    """An ``#include`` directive.

    Attributes:
        target: the included path, without quotes or angle brackets.
        system: True for ``<...>`` includes, False for ``"..."`` includes.
        line: 1-based source line.
    """

    target: str
    system: bool
    line: int


@dataclass(frozen=True)
class MacroDefinition:
    """A ``#define``; function-like macros can hide control flow.

    Attributes:
        name: the macro name.
        is_function_like: True when the macro takes parameters.
        body: the replacement text, stripped.
        line: 1-based source line.
    """

    name: str
    is_function_like: bool
    body: str
    line: int


@dataclass
class PreprocessorSummary:
    """All directive-level facts extracted from one translation unit."""

    includes: List[Include] = field(default_factory=list)
    macros: List[MacroDefinition] = field(default_factory=list)
    conditionals: int = 0
    directives: List[Directive] = field(default_factory=list)

    @property
    def local_includes(self) -> List[Include]:
        """Includes using quote syntax — intra-project dependencies."""
        return [include for include in self.includes if not include.system]

    @property
    def system_includes(self) -> List[Include]:
        """Includes using angle-bracket syntax — external dependencies."""
        return [include for include in self.includes if include.system]

    @property
    def function_like_macros(self) -> List[MacroDefinition]:
        """Macros that take arguments and can therefore hide flow."""
        return [macro for macro in self.macros if macro.is_function_like]


_CONDITIONAL_NAMES = frozenset(
    {"if", "ifdef", "ifndef", "elif", "elifdef", "elifndef"})


def parse_directive(token: Token) -> Optional[Directive]:
    """Parse a PREPROCESSOR token into a :class:`Directive`, or None."""
    if token.kind is not TokenKind.PREPROCESSOR:
        return None
    body = token.text.lstrip()[1:].lstrip()  # drop the leading '#'
    if not body:
        return Directive(name="", argument="", line=token.line)
    parts = body.split(None, 1)
    name = parts[0]
    argument = parts[1].strip() if len(parts) > 1 else ""
    return Directive(name=name, argument=argument, line=token.line)


def _parse_include(directive: Directive) -> Optional[Include]:
    argument = directive.argument
    if argument.startswith("<"):
        end = argument.find(">")
        if end > 0:
            return Include(argument[1:end], system=True, line=directive.line)
    elif argument.startswith('"'):
        end = argument.find('"', 1)
        if end > 0:
            return Include(argument[1:end], system=False, line=directive.line)
    return None


def _parse_define(directive: Directive) -> Optional[MacroDefinition]:
    argument = directive.argument
    if not argument:
        return None
    name_end = 0
    while name_end < len(argument) and (argument[name_end].isalnum()
                                        or argument[name_end] == "_"):
        name_end += 1
    if name_end == 0:
        return None
    name = argument[:name_end]
    is_function_like = name_end < len(argument) and argument[name_end] == "("
    if is_function_like:
        close = argument.find(")", name_end)
        body = argument[close + 1:].strip() if close >= 0 else ""
    else:
        body = argument[name_end:].strip()
    return MacroDefinition(name=name, is_function_like=is_function_like,
                           body=body, line=directive.line)


def summarize_tokens(tokens: Iterable[Token]) -> PreprocessorSummary:
    """Extract directive-level facts from an existing token stream.

    Accepts any token iterable (PREPROCESSOR tokens are picked out, END
    sentinels ignored), so a caller that already lexed the unit — the
    cpp model builder in particular — pays no second lexer pass.
    """
    summary = PreprocessorSummary()
    for token in tokens:
        if token.kind is not TokenKind.PREPROCESSOR:
            continue
        directive = parse_directive(token)
        if directive is None:
            continue
        summary.directives.append(directive)
        if directive.name == "include":
            include = _parse_include(directive)
            if include is not None:
                summary.includes.append(include)
        elif directive.name == "define":
            macro = _parse_define(directive)
            if macro is not None:
                summary.macros.append(macro)
        elif directive.name in _CONDITIONAL_NAMES:
            summary.conditionals += 1
    return summary


def summarize(source: str, filename: str = "<memory>") -> PreprocessorSummary:
    """Extract directive-level facts from one translation unit."""
    return summarize_tokens(Lexer(source, filename, strict=False).tokenize())
