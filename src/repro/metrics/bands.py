"""Cyclomatic-complexity risk bands used by the paper.

Section 3.1.1: "As reference ranges we use: 1-10 (low); 11-20 (moderate);
21-50 (risky); and >50 (unstable)."  A function is *moderate or higher*
when its complexity exceeds 10; the paper counts 554 such functions across
Apollo.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List


class ComplexityBand(enum.Enum):
    """The paper's four reference ranges for cyclomatic complexity."""

    LOW = "low"
    MODERATE = "moderate"
    RISKY = "risky"
    UNSTABLE = "unstable"

    @property
    def bounds(self) -> tuple:
        """Inclusive (low, high) complexity bounds of the band."""
        return _BAND_BOUNDS[self]

    @classmethod
    def classify(cls, complexity: int) -> "ComplexityBand":
        """Band containing the given cyclomatic complexity (must be >= 1)."""
        if complexity < 1:
            raise ValueError(f"cyclomatic complexity must be >= 1, "
                             f"got {complexity}")
        for band, (low, high) in _BAND_BOUNDS.items():
            if low <= complexity <= high:
                return band
        raise AssertionError("bands must cover all complexities")

    @property
    def exceeds_low(self) -> bool:
        """True for moderate/risky/unstable — the paper's gap criterion."""
        return self is not ComplexityBand.LOW


_BAND_BOUNDS: Dict[ComplexityBand, tuple] = {
    ComplexityBand.LOW: (1, 10),
    ComplexityBand.MODERATE: (11, 20),
    ComplexityBand.RISKY: (21, 50),
    ComplexityBand.UNSTABLE: (51, 10 ** 9),
}

#: Thresholds used for the Figure 3 bars ("number of functions with a
#: cyclomatic complexity over a given value").
FIGURE3_THRESHOLDS: List[int] = [5, 10, 20, 50]


def band_histogram(complexities: Iterable[int]) -> Dict[ComplexityBand, int]:
    """Count functions per band."""
    histogram = {band: 0 for band in ComplexityBand}
    for complexity in complexities:
        histogram[ComplexityBand.classify(complexity)] += 1
    return histogram


def count_over_thresholds(complexities: Iterable[int],
                          thresholds: Iterable[int] = tuple(FIGURE3_THRESHOLDS),
                          ) -> Dict[int, int]:
    """For each threshold, count functions with complexity strictly above it."""
    values = list(complexities)
    return {threshold: sum(1 for value in values if value > threshold)
            for threshold in thresholds}
