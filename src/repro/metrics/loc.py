"""Line-counting metrics: physical lines, code lines, comments, blanks.

These feed Figure 3 (LOC per module) and the architectural-design size
checks (Table 3 item 2: "Main modules of Apollo have from 5k to 60k lines
of code").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

from ..lang.tokens import Token, TokenKind


@dataclass(frozen=True)
class LineCounts:
    """Line-level size metrics for one source file.

    Attributes:
        total: physical lines in the file.
        code: lines carrying at least one code token (NLOC).
        comment: lines carrying at least one comment token.
        blank: lines with neither code nor comments nor directives.
        preprocessor: lines carrying a preprocessor directive.
    """

    total: int
    code: int
    comment: int
    blank: int
    preprocessor: int

    @property
    def comment_density(self) -> float:
        """Comment lines per code line; 0 for an empty file."""
        if self.code == 0:
            return 0.0
        return self.comment / self.code

    def __add__(self, other: "LineCounts") -> "LineCounts":
        return LineCounts(
            total=self.total + other.total,
            code=self.code + other.code,
            comment=self.comment + other.comment,
            blank=self.blank + other.blank,
            preprocessor=self.preprocessor + other.preprocessor,
        )


EMPTY_LINE_COUNTS = LineCounts(total=0, code=0, comment=0, blank=0,
                               preprocessor=0)


def count_lines(source: str, tokens: Iterable[Token]) -> LineCounts:
    """Classify every physical line of ``source`` using its token stream.

    A line can be both a code line and a comment line (trailing comment);
    the categories are therefore not disjoint, except for ``blank``.
    """
    total = source.count("\n") + (1 if source and not source.endswith("\n")
                                  else 0)
    code_lines: Set[int] = set()
    comment_lines: Set[int] = set()
    directive_lines: Set[int] = set()
    comment = TokenKind.COMMENT
    preprocessor = TokenKind.PREPROCESSOR
    end = TokenKind.END
    for token in tokens:
        kind = token.kind
        if kind is comment:
            lines = comment_lines
        elif kind is preprocessor:
            lines = directive_lines
        elif kind is not end:
            lines = code_lines
        else:
            continue
        line = token.line
        # Almost every token sits on one line; only multi-line tokens
        # (block comments, continued directives, raw strings) pay for a
        # span update.
        if "\n" in token.text:
            lines.update(range(line, line + token.text.count("\n") + 1))
        else:
            lines.add(line)
    occupied = code_lines | comment_lines | directive_lines
    blank = max(0, total - len(occupied))
    return LineCounts(
        total=total,
        code=len(code_lines),
        comment=len(comment_lines),
        blank=blank,
        preprocessor=len(directive_lines),
    )
