"""Per-module metric aggregation — the data behind Figure 3.

A *module* here is what the paper plots on the X axis of Figure 3: one of
Apollo's top-level components (perception, prediction, planning, ...).  The
:class:`ModuleMetrics` record carries everything the figure shows: total
LOC (crosses), function count (diamonds), and the number of functions above
each complexity threshold (bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

from ..lang.cppmodel import TranslationUnit
from ..obs import NULL_TRACER
from .bands import FIGURE3_THRESHOLDS
from .complexity import ComplexitySummary, summarize_units
from .loc import EMPTY_LINE_COUNTS, LineCounts, count_lines


@dataclass
class ModuleMetrics:
    """Size and complexity metrics for one software module."""

    name: str
    lines: LineCounts = EMPTY_LINE_COUNTS
    file_count: int = 0
    complexity: ComplexitySummary = field(default_factory=ComplexitySummary)
    class_count: int = 0
    global_count: int = 0

    @property
    def loc(self) -> int:
        """Total physical lines — the Figure 3 crosses."""
        return self.lines.total

    @property
    def function_count(self) -> int:
        """Number of function definitions — the Figure 3 diamonds."""
        return self.complexity.function_count

    def functions_over(self,
                       thresholds: Sequence[int] = tuple(FIGURE3_THRESHOLDS),
                       ) -> Dict[int, int]:
        """Functions above each complexity threshold — the Figure 3 bars."""
        return self.complexity.over_thresholds(thresholds)


def measure_module(name: str,
                   sources: Mapping[str, str],
                   units: Iterable[TranslationUnit],
                   tracer=None) -> ModuleMetrics:
    """Aggregate metrics for one module.

    Args:
        name: module name (e.g. ``"perception"``).
        sources: filename -> source text, for line counting.
        units: the parsed fuzzy models of the same files.
        tracer: optional :class:`~repro.obs.Tracer`; measurement is
            wrapped in a ``measure_module`` span carrying file and LOC
            counts.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    units = list(units)
    with tracer.span("measure_module", module=name) as span:
        lines = EMPTY_LINE_COUNTS
        for unit in units:
            source = sources.get(unit.filename, "")
            lines = lines + count_lines(source, unit.tokens)
        metrics = ModuleMetrics(
            name=name,
            lines=lines,
            file_count=len(units),
            complexity=summarize_units(units),
            class_count=sum(len(unit.classes) for unit in units),
            global_count=sum(len(unit.mutable_globals) for unit in units),
        )
        span.set("files", metrics.file_count)
        span.set("loc", metrics.loc)
    return metrics


def figure3_rows(modules: Iterable[ModuleMetrics],
                 thresholds: Sequence[int] = tuple(FIGURE3_THRESHOLDS),
                 ) -> List[Dict[str, object]]:
    """Render the Figure 3 data as a list of row dictionaries.

    Each row contains the module name, LOC, function count, and one
    ``cc>N`` entry per threshold, in the same spirit as the paper's plot.
    """
    rows: List[Dict[str, object]] = []
    for module in modules:
        row: Dict[str, object] = {
            "module": module.name,
            "loc": module.loc,
            "functions": module.function_count,
        }
        for threshold, count in module.functions_over(thresholds).items():
            row[f"cc>{threshold}"] = count
        rows.append(row)
    return rows


def total_moderate_or_higher(modules: Iterable[ModuleMetrics]) -> int:
    """Framework-wide count of functions with complexity > 10.

    The paper reports 554 for the whole of Apollo.
    """
    return sum(module.complexity.moderate_or_higher for module in modules)
