"""Static path counting (NPATH) on MiniC ASTs — the WCET-analysis proxy.

Section 3.1.1 of the paper ties high cyclomatic complexity to the cost of
"timing (WCET) estimation": the number of acyclic execution paths a
static timing analyzer must enumerate grows *multiplicatively* with
sequential decisions, while cyclomatic complexity only grows additively.
NPATH (Nejmeh, 1988) captures that blow-up; this module computes it
exactly on the strict MiniC AST.

Rules (loops count their body once plus the skip path, matching the
classic NPATH definition):

* sequence: product of the statements' path counts;
* ``if``: paths(then) + 1 (no else) or paths(then) + paths(else);
* ``while``/``for``/``do``: paths(body) + 1;
* ``switch``: sum over case bodies (+1 when no default exists);
* ternary: adds a factor of 2 at its expression site.
"""

from __future__ import annotations

from typing import List

from ..lang.minic import ast


def npath_expression(node) -> int:
    """Multiplicative path factor contributed by an expression."""
    if node is None:
        return 1
    if isinstance(node, ast.Conditional):
        return (npath_expression(node.condition.expression)
                * (npath_expression(node.then_value)
                   + npath_expression(node.else_value)))
    if isinstance(node, ast.Logical):
        # Short-circuit adds an evaluation path.
        return npath_expression(node.left) + npath_expression(node.right)
    if isinstance(node, ast.Binary):
        return npath_expression(node.left) * npath_expression(node.right)
    if isinstance(node, ast.Unary):
        return npath_expression(node.operand)
    if isinstance(node, ast.Assignment):
        return npath_expression(node.value)
    if isinstance(node, ast.Call):
        product = 1
        for argument in node.arguments:
            product *= npath_expression(argument)
        return product
    if isinstance(node, ast.Index):
        return (npath_expression(node.base)
                * npath_expression(node.offset))
    if isinstance(node, ast.Cast):
        return npath_expression(node.operand)
    return 1


def npath_statement(statement: ast.Statement) -> int:
    """NPATH of one statement."""
    if isinstance(statement, ast.Block):
        return npath_sequence(statement.statements)
    if isinstance(statement, ast.If):
        condition = npath_expression(statement.condition.expression)
        then_paths = npath_statement(statement.then_branch)
        if statement.else_branch is None:
            return condition * (then_paths + 1)
        return condition * (then_paths
                            + npath_statement(statement.else_branch))
    if isinstance(statement, (ast.While, ast.DoWhile)):
        condition = npath_expression(statement.condition.expression)
        return condition * (npath_statement(statement.body) + 1)
    if isinstance(statement, ast.For):
        condition = (npath_expression(statement.condition.expression)
                     if statement.condition is not None else 1)
        return condition * (npath_statement(statement.body) + 1)
    if isinstance(statement, ast.Switch):
        total = 0
        has_default = any(case.value is None for case in statement.cases)
        for case in statement.cases:
            total += npath_sequence(case.body)
        if not has_default:
            total += 1
        return max(1, total)
    if isinstance(statement, ast.ExpressionStatement):
        return npath_expression(statement.expression)
    if isinstance(statement, ast.Declaration):
        return npath_expression(statement.initializer)
    if isinstance(statement, ast.Return):
        return npath_expression(statement.value)
    return 1


def npath_sequence(statements: List[ast.Statement]) -> int:
    product = 1
    for statement in statements:
        product *= npath_statement(statement)
    return product


def npath_function(function: ast.Function) -> int:
    """NPATH of a MiniC function body."""
    return npath_statement(function.body)


def npath_program(program: ast.Program) -> dict:
    """NPATH per function, keyed by name."""
    return {function.name: npath_function(function)
            for function in program.functions}


def wcet_enumeration_cost(program: ast.Program,
                          paths_per_second: float = 10_000.0) -> float:
    """A coarse "seconds to enumerate all paths" proxy for a timing tool.

    Demonstrates the paper's point quantitatively: a function of
    cyclomatic complexity ~20 built from sequential decisions already has
    ~2^19 paths, making exhaustive path-based WCET analysis intractable.
    """
    total_paths = sum(npath_program(program).values())
    return total_paths / paths_per_second
