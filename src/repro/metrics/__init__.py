"""Size and complexity metrics (the Lizard-equivalent layer)."""

from .bands import (
    FIGURE3_THRESHOLDS,
    ComplexityBand,
    band_histogram,
    count_over_thresholds,
)
from .halstead import (
    FunctionMaintainability,
    HalsteadMetrics,
    maintainability_index,
    measure_function,
    measure_tokens,
    unit_maintainability,
)
from .paths import (
    npath_function,
    npath_program,
    npath_statement,
    wcet_enumeration_cost,
)
from .complexity import (
    ComplexitySummary,
    FunctionComplexity,
    summarize_functions,
    summarize_unit,
    summarize_units,
)
from .loc import EMPTY_LINE_COUNTS, LineCounts, count_lines
from .report import (
    ModuleMetrics,
    figure3_rows,
    measure_module,
    total_moderate_or_higher,
)

__all__ = [
    "FunctionMaintainability",
    "HalsteadMetrics",
    "maintainability_index",
    "measure_function",
    "measure_tokens",
    "npath_function",
    "npath_program",
    "npath_statement",
    "unit_maintainability",
    "wcet_enumeration_cost",
    "EMPTY_LINE_COUNTS",
    "FIGURE3_THRESHOLDS",
    "ComplexityBand",
    "ComplexitySummary",
    "FunctionComplexity",
    "LineCounts",
    "ModuleMetrics",
    "band_histogram",
    "count_lines",
    "count_over_thresholds",
    "figure3_rows",
    "measure_module",
    "summarize_functions",
    "summarize_unit",
    "summarize_units",
    "total_moderate_or_higher",
]
