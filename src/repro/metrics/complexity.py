"""Cyclomatic-complexity measurement over the fuzzy C++ model.

The complexity itself is computed while the model is built (one pass over
the token stream, matching Lizard's counting rules); this module aggregates
it per file and per module, producing exactly the quantities plotted in
Figure 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..lang.cppmodel import FunctionInfo, TranslationUnit
from .bands import (
    FIGURE3_THRESHOLDS,
    ComplexityBand,
    band_histogram,
    count_over_thresholds,
)


@dataclass
class FunctionComplexity:
    """Complexity record of one function, for reports and sorting."""

    name: str
    filename: str
    start_line: int
    complexity: int

    @property
    def band(self) -> ComplexityBand:
        return ComplexityBand.classify(self.complexity)


@dataclass
class ComplexitySummary:
    """Aggregated complexity statistics for a set of functions."""

    records: List[FunctionComplexity] = field(default_factory=list)

    @property
    def function_count(self) -> int:
        return len(self.records)

    @property
    def complexities(self) -> List[int]:
        return [record.complexity for record in self.records]

    @property
    def max_complexity(self) -> int:
        return max(self.complexities, default=0)

    @property
    def mean_complexity(self) -> float:
        if not self.records:
            return 0.0
        return sum(self.complexities) / len(self.records)

    @property
    def moderate_or_higher(self) -> int:
        """Functions with complexity > 10 — the paper's 554-count metric."""
        return sum(1 for value in self.complexities if value > 10)

    def histogram(self) -> Dict[ComplexityBand, int]:
        return band_histogram(self.complexities)

    def over_thresholds(self,
                        thresholds: Sequence[int] = tuple(FIGURE3_THRESHOLDS),
                        ) -> Dict[int, int]:
        return count_over_thresholds(self.complexities, thresholds)

    def worst(self, count: int = 10) -> List[FunctionComplexity]:
        """The ``count`` most complex functions, most complex first."""
        return sorted(self.records, key=lambda record: -record.complexity)[:count]

    def extend(self, other: "ComplexitySummary") -> None:
        self.records.extend(other.records)


def summarize_functions(functions: Iterable[FunctionInfo],
                        filename: str = "<memory>") -> ComplexitySummary:
    """Build a summary from already-analyzed function records."""
    summary = ComplexitySummary()
    for function in functions:
        summary.records.append(FunctionComplexity(
            name=function.qualified_name,
            filename=filename,
            start_line=function.start_line,
            complexity=function.cyclomatic_complexity,
        ))
    return summary


def summarize_unit(unit: TranslationUnit) -> ComplexitySummary:
    """Complexity summary of one translation unit."""
    return summarize_functions(unit.functions, unit.filename)


def summarize_units(units: Iterable[TranslationUnit]) -> ComplexitySummary:
    """Complexity summary across many translation units (e.g. one module)."""
    summary = ComplexitySummary()
    for unit in units:
        summary.extend(summarize_unit(unit))
    return summary
