"""Halstead software-science metrics and the maintainability index.

The paper's verification-cost argument (Section 3.1.1: complexity
"impacts the already costly verification activities") is usually
quantified in industrial practice by Halstead volume/effort and the
maintainability index alongside cyclomatic complexity; these metrics
extend the Lizard-equivalent layer accordingly.

Operators are keywords plus punctuators; operands are identifiers and
literals — the standard token-class convention for C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from ..lang.cppmodel import FunctionInfo, TranslationUnit
from ..lang.tokens import Token, TokenKind

#: Punctuators that are purely syntactic and count as neither operator
#: nor operand (brackets pair with their openers; separators delimit).
_SYNTACTIC = frozenset({"(", ")", "{", "}", "[", "]", ";", ",", "::"})


@dataclass(frozen=True)
class HalsteadMetrics:
    """Halstead measures for one token span.

    Attributes:
        distinct_operators: n1.
        distinct_operands: n2.
        total_operators: N1.
        total_operands: N2.
    """

    distinct_operators: int
    distinct_operands: int
    total_operators: int
    total_operands: int

    @property
    def vocabulary(self) -> int:
        return self.distinct_operators + self.distinct_operands

    @property
    def length(self) -> int:
        return self.total_operators + self.total_operands

    @property
    def volume(self) -> float:
        """V = N * log2(n); 0 for an empty span."""
        if self.vocabulary <= 1 or self.length == 0:
            return 0.0
        return self.length * math.log2(self.vocabulary)

    @property
    def difficulty(self) -> float:
        """D = (n1 / 2) * (N2 / n2); 0 when no operands exist."""
        if self.distinct_operands == 0:
            return 0.0
        return (self.distinct_operators / 2.0
                * self.total_operands / self.distinct_operands)

    @property
    def effort(self) -> float:
        return self.volume * self.difficulty

    @property
    def estimated_bugs(self) -> float:
        """Halstead's delivered-bug estimate B = V / 3000."""
        return self.volume / 3000.0


def measure_tokens(tokens: Iterable[Token]) -> HalsteadMetrics:
    """Halstead counts over a token span (comments/directives ignored)."""
    operators = {}
    operands = {}
    for token in tokens:
        if token.kind in (TokenKind.COMMENT, TokenKind.PREPROCESSOR,
                          TokenKind.END):
            continue
        if token.kind is TokenKind.KEYWORD or (
                token.kind is TokenKind.PUNCT
                and token.text not in _SYNTACTIC):
            operators[token.text] = operators.get(token.text, 0) + 1
        elif token.kind in (TokenKind.IDENTIFIER, TokenKind.NUMBER,
                            TokenKind.STRING, TokenKind.CHAR):
            operands[token.text] = operands.get(token.text, 0) + 1
    return HalsteadMetrics(
        distinct_operators=len(operators),
        distinct_operands=len(operands),
        total_operators=sum(operators.values()),
        total_operands=sum(operands.values()),
    )


def measure_function(unit: TranslationUnit,
                     function: FunctionInfo) -> HalsteadMetrics:
    """Halstead counts over one function body."""
    return measure_tokens(unit.body_tokens(function))


def maintainability_index(volume: float, cyclomatic: int,
                          loc: int) -> float:
    """The classic SEI maintainability index, clamped to [0, 100].

    ``MI = 171 - 5.2 ln V - 0.23 CC - 16.2 ln LOC``, rescaled to 0-100.
    Below ~65 is conventionally considered hard to maintain; ASIL-D
    review guidance typically wants > 80.
    """
    if loc <= 0:
        return 100.0
    raw = (171.0
           - 5.2 * math.log(max(1.0, volume))
           - 0.23 * cyclomatic
           - 16.2 * math.log(loc))
    return max(0.0, min(100.0, raw * 100.0 / 171.0))


@dataclass(frozen=True)
class FunctionMaintainability:
    """Combined maintainability record for one function."""

    name: str
    volume: float
    cyclomatic: int
    loc: int

    @property
    def index(self) -> float:
        return maintainability_index(self.volume, self.cyclomatic,
                                     self.loc)


def unit_maintainability(unit: TranslationUnit
                         ) -> List[FunctionMaintainability]:
    """Maintainability records for every function of a unit."""
    records = []
    for function in unit.functions:
        halstead = measure_function(unit, function)
        records.append(FunctionMaintainability(
            name=function.qualified_name,
            volume=halstead.volume,
            cyclomatic=function.cyclomatic_complexity,
            loc=function.nloc,
        ))
    return records
