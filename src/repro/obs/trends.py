"""Trend and regression reporting over the run ledger: ``repro-trends``.

The paper's claim is longitudinal — how a framework tracks the ISO
26262-6 tables *over time* — and so is a CI fleet's: the interesting
question is rarely one run's finding count but whether the latest run
*spiked* relative to recent history.  This module reads the ledger
(:mod:`repro.obs.runlog`) back and answers exactly that::

    repro-trends --ledger .repro            # table over the last runs
    repro-trends --ledger .repro --json t.json --min-delta 1

Two regression detectors run over the last N comparable records
(records whose config + rules fingerprints match the latest run's —
a finding spike means nothing across a profile change):

* **finding spike** — a rule whose latest count exceeds the rolling
  median of the prior runs by at least ``--min-delta`` findings *and*
  by a ``--spike-factor`` multiple;
* **stage slowdown** — a pipeline stage whose latest wall time exceeds
  the rolling median by a ``--slowdown-factor`` multiple and at least
  ``--min-seconds``.

Exit codes: 0 clean, 1 when any regression fired (so CI can gate on
it), 2 for unusable invocations (missing ledger, bad flags).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

from .runlog import RunLedger, RunRecord

__all__ = [
    "Regression",
    "detect_regressions",
    "finding_spikes",
    "render_trends",
    "stage_slowdowns",
    "trends_document",
    "main",
]

#: Default look-back window, in runs.
DEFAULT_LAST = 20
#: Latest count must be at least this multiple of the rolling median.
DEFAULT_SPIKE_FACTOR = 2.0
#: ... and exceed it by at least this many findings.
DEFAULT_MIN_DELTA = 3
#: Latest stage seconds must be at least this multiple of the median.
DEFAULT_SLOWDOWN_FACTOR = 2.0
#: ... and exceed it by at least this many seconds (absorbs noise on
#: sub-millisecond stages).
DEFAULT_MIN_SECONDS = 0.05


@dataclass(frozen=True)
class Regression:
    """One detected regression in the latest run vs its history.

    Attributes:
        kind: ``"finding_spike"`` or ``"stage_slowdown"``.
        subject: the rule id or stage name.
        latest: the latest run's value (count or seconds).
        median: the rolling median over the prior runs.
        run_id: the offending (latest) run.
    """

    kind: str
    subject: str
    latest: float
    median: float
    run_id: str

    def describe(self) -> str:
        if self.kind == "finding_spike":
            return (f"REGRESSION [rule {self.subject}] "
                    f"{int(self.latest)} finding(s) in run {self.run_id} "
                    f"vs rolling median {self.median:g}")
        return (f"REGRESSION [stage {self.subject}] "
                f"{self.latest:.3f}s in run {self.run_id} "
                f"vs rolling median {self.median:.3f}s")

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "latest": self.latest,
            "median": self.median,
            "run_id": self.run_id,
        }


def comparable_window(records: List[RunRecord]) -> List[RunRecord]:
    """The trailing run of records comparable to the latest one.

    Walks backwards from the newest record and keeps records while the
    ``config_fingerprint`` + ``rules_fingerprint`` pair matches the
    latest run's — a configuration change starts trend history afresh
    rather than reporting spurious spikes across it.
    """
    if not records:
        return []
    latest = records[-1]
    key = (latest.config_fingerprint, latest.rules_fingerprint)
    window: List[RunRecord] = []
    for record in reversed(records):
        if (record.config_fingerprint, record.rules_fingerprint) != key:
            break
        window.append(record)
    window.reverse()
    return window


def finding_spikes(records: List[RunRecord],
                   spike_factor: float = DEFAULT_SPIKE_FACTOR,
                   min_delta: int = DEFAULT_MIN_DELTA
                   ) -> List[Regression]:
    """Per-rule finding-count spikes in the latest record vs the rest."""
    if len(records) < 2:
        return []
    latest, history = records[-1], records[:-1]
    rules = set(latest.findings_by_rule)
    for record in history:
        rules.update(record.findings_by_rule)
    regressions: List[Regression] = []
    for rule in sorted(rules):
        current = latest.findings_by_rule.get(rule, 0)
        median = statistics.median(
            record.findings_by_rule.get(rule, 0) for record in history)
        if (current - median >= min_delta
                and current >= spike_factor * max(median, 1)):
            regressions.append(Regression(
                kind="finding_spike", subject=rule,
                latest=current, median=median, run_id=latest.run_id))
    return regressions


def stage_slowdowns(records: List[RunRecord],
                    slowdown_factor: float = DEFAULT_SLOWDOWN_FACTOR,
                    min_seconds: float = DEFAULT_MIN_SECONDS
                    ) -> List[Regression]:
    """Per-stage wall-time slowdowns in the latest record vs the rest."""
    if len(records) < 2:
        return []
    latest, history = records[-1], records[:-1]
    regressions: List[Regression] = []
    for stage in sorted(latest.stages):
        current = latest.stages[stage]
        samples = [record.stages[stage] for record in history
                   if stage in record.stages]
        if not samples:
            continue
        median = statistics.median(samples)
        if (median > 0 and current - median >= min_seconds
                and current >= slowdown_factor * median):
            regressions.append(Regression(
                kind="stage_slowdown", subject=stage,
                latest=current, median=median, run_id=latest.run_id))
    return regressions


def detect_regressions(records: List[RunRecord],
                       spike_factor: float = DEFAULT_SPIKE_FACTOR,
                       min_delta: int = DEFAULT_MIN_DELTA,
                       slowdown_factor: float = DEFAULT_SLOWDOWN_FACTOR,
                       min_seconds: float = DEFAULT_MIN_SECONDS
                       ) -> List[Regression]:
    """Both detectors over the comparable trailing window."""
    window = comparable_window(records)
    return (finding_spikes(window, spike_factor, min_delta)
            + stage_slowdowns(window, slowdown_factor, min_seconds))


# ----------------------------------------------------------------------
# rendering


def _series(values: List[float], integral: bool) -> str:
    rendered = []
    for value in values:
        rendered.append(str(int(value)) if integral else f"{value:.3f}")
    return " ".join(rendered)


def render_trends(records: List[RunRecord],
                  regressions: List[Regression],
                  rule_limit: int = 12) -> str:
    """The console report: run table, per-rule and per-stage series,
    and the regression verdicts."""
    lines: List[str] = []
    header = (f"{'run':<13}{'timestamp':<21}{'units':>6}{'findings':>9}"
              f"{'degr':>5}{'seconds':>9}")
    lines.append(f"Run ledger trends — last {len(records)} run(s)")
    lines.append(header)
    lines.append("-" * max(48, len(header)))
    for record in records:
        lines.append(
            f"{record.run_id[:12]:<13}{record.timestamp[:20]:<21}"
            f"{record.corpus.get('units', 0):>6}"
            f"{record.total_findings:>9}{record.degradations:>5}"
            f"{record.total_seconds:>9.3f}")
    window = comparable_window(records)
    if len(window) < len(records):
        lines.append(f"(trend window: last {len(window)} run(s) share "
                     f"the latest configuration)")

    rules = sorted(
        {rule for record in window for rule in record.findings_by_rule},
        key=lambda rule: -window[-1].findings_by_rule.get(rule, 0))
    if rules:
        lines.append("")
        lines.append(f"Findings per rule (oldest -> newest, top "
                     f"{min(rule_limit, len(rules))} of {len(rules)})")
        for rule in rules[:rule_limit]:
            series = [record.findings_by_rule.get(rule, 0)
                      for record in window]
            lines.append(f"  {rule:<24} {_series(series, True)}")

    stages = sorted({stage for record in window for stage in record.stages})
    if stages:
        lines.append("")
        lines.append("Stage seconds (oldest -> newest)")
        for stage in stages:
            series = [record.stages.get(stage, 0.0) for record in window]
            lines.append(f"  {stage:<24} {_series(series, False)}")

    lines.append("")
    if regressions:
        for regression in regressions:
            lines.append(regression.describe())
    else:
        lines.append("No regressions detected.")
    return "\n".join(lines)


def trends_document(records: List[RunRecord],
                    regressions: List[Regression]) -> Dict:
    """The machine-readable report written by ``--json``.

    ``window`` lists the run ids the detectors actually compared;
    ``window_meta`` says *why* that window is what it is — how many
    records were read, how many matched the latest run's configuration,
    and the config/rules fingerprint pair defining the match — so a
    consumer can tell "quiet because stable" from "quiet because the
    fingerprint changed and history restarted".
    """
    window = comparable_window(records)
    latest = records[-1] if records else None
    return {
        "runs": [record.to_dict() for record in records],
        "window": [record.run_id for record in window],
        "window_meta": {
            "size": len(records),
            "matched": len(window),
            "config_fingerprint": (latest.config_fingerprint
                                   if latest else ""),
            "rules_fingerprint": (latest.rules_fingerprint
                                  if latest else ""),
        },
        "regressions": [regression.to_dict()
                        for regression in regressions],
        "regressed": bool(regressions),
    }


# ----------------------------------------------------------------------
# CLI


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trends",
        description="Trend and regression report over the repro-assess "
                    "run ledger; exits 1 when the latest run regressed.")
    parser.add_argument("--ledger", default=".repro", metavar="DIR",
                        help="ledger directory (default .repro)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="read a repro-assess --store directory "
                             "instead of --ledger; unmerged shard run "
                             "tables are unioned in by run id, so "
                             "trends cover the fleet's merged history")
    parser.add_argument("--last", type=int, default=DEFAULT_LAST,
                        metavar="N",
                        help=f"look-back window in runs "
                             f"(default {DEFAULT_LAST})")
    parser.add_argument("--spike-factor", type=float,
                        default=DEFAULT_SPIKE_FACTOR, metavar="F",
                        help="finding spike: latest must be at least F "
                             "times the rolling median "
                             f"(default {DEFAULT_SPIKE_FACTOR})")
    parser.add_argument("--min-delta", type=int,
                        default=DEFAULT_MIN_DELTA, metavar="N",
                        help="finding spike: latest must exceed the "
                             "median by at least N findings "
                             f"(default {DEFAULT_MIN_DELTA})")
    parser.add_argument("--slowdown-factor", type=float,
                        default=DEFAULT_SLOWDOWN_FACTOR, metavar="F",
                        help="stage slowdown: latest must be at least F "
                             "times the rolling median "
                             f"(default {DEFAULT_SLOWDOWN_FACTOR})")
    parser.add_argument("--min-seconds", type=float,
                        default=DEFAULT_MIN_SECONDS, metavar="S",
                        help="stage slowdown: latest must exceed the "
                             "median by at least S seconds "
                             f"(default {DEFAULT_MIN_SECONDS})")
    parser.add_argument("--json", metavar="FILE",
                        help="also write the report (runs, window, "
                             "regressions) as JSON")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.last < 1:
        print(f"--last must be a positive integer, got {args.last}",
              file=sys.stderr)
        return 2
    # A store root is also a valid history directory (same runs.jsonl
    # plus shard tables), so both flags read through one class.
    ledger = RunLedger(args.store if args.store else args.ledger)
    try:
        records = ledger.tail(args.last)
    except OSError as error:
        print(f"cannot read run ledger: {error}", file=sys.stderr)
        return 2
    if not records:
        print(f"run ledger {ledger.path} holds no readable records",
              file=sys.stderr)
        return 2
    regressions = detect_regressions(
        records, spike_factor=args.spike_factor,
        min_delta=args.min_delta,
        slowdown_factor=args.slowdown_factor,
        min_seconds=args.min_seconds)
    print(render_trends(records, regressions))
    if ledger.corrupt_lines:
        print(f"({ledger.corrupt_lines} corrupt ledger line(s) skipped)",
              file=sys.stderr)
    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(trends_document(records, regressions), handle,
                          indent=2)
        except OSError as error:
            print(f"cannot write trends JSON: {error}", file=sys.stderr)
            return 2
        print(f"\ntrends JSON written to {args.json}")
    return 1 if regressions else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
