"""Profiling views over a recorded trace.

Three flat tables over the span forest, all printed by
``repro-assess --profile``:

* :func:`top_spans` / :func:`render_profile` — the individual spans
  with the most *self* time (time not explained by their children),
  which is where optimization effort should go;
* :func:`self_time_by_name` / :func:`render_self_time` — exclusive
  time *attributed per span name* (all ``parse_file`` spans together,
  all ``checker`` spans together), the stage-level answer to "where
  does the wall time actually go";
* :func:`hotspots` / :func:`render_hotspots` — the slowest files
  (``parse_file`` spans by ``path``) crossed with the slowest checkers
  (``checker`` spans by ``name``); the top-K also lands in each
  :class:`~repro.obs.runlog.RunRecord` so the ledger remembers where
  past runs spent their time.
"""

from __future__ import annotations

from typing import Dict, List, Union

from .span import Span
from .tracer import Tracer


def _all_spans(source: Union[Tracer, List[Span]]) -> List[Span]:
    if isinstance(source, Tracer):
        return source.spans()
    return [span for root in source for span in root.walk()]


def top_spans(source: Union[Tracer, List[Span]], limit: int = 10,
              by_self_time: bool = True) -> List[Span]:
    """The ``limit`` slowest spans, by self time (default) or total."""
    spans = _all_spans(source)
    key = (lambda s: s.self_time) if by_self_time else (lambda s: s.duration)
    return sorted(spans, key=key, reverse=True)[:max(0, limit)]


def render_profile(source: Union[Tracer, List[Span]],
                   limit: int = 10) -> str:
    """The ``--profile`` table: top-N spans by self time."""
    from .export import _format_counts, _format_seconds
    spans = top_spans(source, limit)
    total = sum(span.self_time for span in _all_spans(source)) or 1.0
    header = f"{'self':>10} {'total':>10} {'share':>7}  span"
    lines = [f"Top {len(spans)} spans by self time", header,
             "-" * max(48, len(header))]
    for span in spans:
        share = 100.0 * span.self_time / total
        lines.append(f"{_format_seconds(span.self_time)} "
                     f"{_format_seconds(span.duration)} "
                     f"{share:6.1f}%  {span.label()}{_format_counts(span)}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# self-time attribution per span name


def self_time_by_name(source: Union[Tracer, List[Span]]
                      ) -> Dict[str, Dict[str, float]]:
    """Exclusive time aggregated per span name.

    Returns ``{name: {"count": n, "seconds": s}}`` where ``seconds``
    is the summed *self* time of every span with that name — each
    wall-clock second is attributed to exactly one name, so the values
    add up to the total traced time.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for span in _all_spans(source):
        entry = totals.setdefault(span.name, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += span.self_time
    return totals


def render_self_time(source: Union[Tracer, List[Span]],
                     limit: int = 10) -> str:
    """The per-span-name exclusive-time table (biggest first)."""
    from .export import _format_seconds
    totals = self_time_by_name(source)
    overall = sum(entry["seconds"] for entry in totals.values()) or 1.0
    ranked = sorted(totals.items(), key=lambda item: item[1]["seconds"],
                    reverse=True)[:max(0, limit)]
    header = f"{'self':>10} {'count':>7} {'share':>7}  span name"
    lines = ["Self time by span name", header,
             "-" * max(48, len(header))]
    for name, entry in ranked:
        share = 100.0 * entry["seconds"] / overall
        lines.append(f"{_format_seconds(entry['seconds'])} "
                     f"{int(entry['count']):>7} {share:6.1f}%  {name}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# hotspots: slowest files x slowest checkers


def hotspots(source: Union[Tracer, List[Span]],
             limit: int = 10) -> Dict[str, List[Dict]]:
    """The slowest files and checkers, by summed span time.

    Files aggregate ``parse_file`` spans per ``path`` attribute (a
    file parsed in several runs of one trace sums); checkers aggregate
    ``checker`` spans per ``name``.  Returns
    ``{"files": [{"path", "seconds"}...],
    "checkers": [{"checker", "seconds"}...]}``, each list sorted
    slowest-first and cut at ``limit`` — the shape stored in the run
    ledger's ``hotspots`` field.
    """
    files: Dict[str, float] = {}
    checkers: Dict[str, float] = {}
    for span in _all_spans(source):
        if span.name == "parse_file":
            path = str(span.attributes.get("path", "<unknown>"))
            files[path] = files.get(path, 0.0) + span.duration
        elif span.name == "checker":
            name = str(span.attributes.get("name", "<unknown>"))
            checkers[name] = checkers.get(name, 0.0) + span.duration
    cut = max(0, limit)
    return {
        "files": [{"path": path, "seconds": round(seconds, 6)}
                  for path, seconds in sorted(files.items(),
                                              key=lambda kv: -kv[1])[:cut]],
        "checkers": [{"checker": name, "seconds": round(seconds, 6)}
                     for name, seconds in sorted(checkers.items(),
                                                 key=lambda kv: -kv[1])
                     [:cut]],
    }


def render_hotspots(source: Union[Tracer, List[Span]],
                    limit: int = 10) -> str:
    """The "top slowest files x checkers" table under ``--profile``."""
    from .export import _format_seconds
    table = hotspots(source, limit=limit)
    lines = [f"Top {limit} slowest files x checkers"]
    header = f"{'time':>10}  file"
    lines.append(header)
    lines.append("-" * max(48, len(header)))
    for row in table["files"]:
        lines.append(f"{_format_seconds(row['seconds'])}  {row['path']}")
    if not table["files"]:
        lines.append("(no parse_file spans recorded)")
    header = f"{'time':>10}  checker"
    lines.append(header)
    lines.append("-" * max(48, len(header)))
    for row in table["checkers"]:
        lines.append(f"{_format_seconds(row['seconds'])}  "
                     f"{row['checker']}")
    if not table["checkers"]:
        lines.append("(no checker spans recorded)")
    return "\n".join(lines)
