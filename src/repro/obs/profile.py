"""Profiling view over a recorded trace: the top-N slowest spans.

This is what ``repro-assess --profile`` prints after the span tree: a
flat table of the spans with the most *self* time (time not explained by
their children), which is where optimization effort should go.
"""

from __future__ import annotations

from typing import List, Union

from .span import Span
from .tracer import Tracer


def _all_spans(source: Union[Tracer, List[Span]]) -> List[Span]:
    if isinstance(source, Tracer):
        return source.spans()
    return [span for root in source for span in root.walk()]


def top_spans(source: Union[Tracer, List[Span]], limit: int = 10,
              by_self_time: bool = True) -> List[Span]:
    """The ``limit`` slowest spans, by self time (default) or total."""
    spans = _all_spans(source)
    key = (lambda s: s.self_time) if by_self_time else (lambda s: s.duration)
    return sorted(spans, key=key, reverse=True)[:max(0, limit)]


def render_profile(source: Union[Tracer, List[Span]],
                   limit: int = 10) -> str:
    """The ``--profile`` table: top-N spans by self time."""
    from .export import _format_counts, _format_seconds
    spans = top_spans(source, limit)
    total = sum(span.self_time for span in _all_spans(source)) or 1.0
    header = f"{'self':>10} {'total':>10} {'share':>7}  span"
    lines = [f"Top {len(spans)} spans by self time", header,
             "-" * max(48, len(header))]
    for span in spans:
        share = 100.0 * span.self_time / total
        lines.append(f"{_format_seconds(span.self_time)} "
                     f"{_format_seconds(span.duration)} "
                     f"{share:6.1f}%  {span.label()}{_format_counts(span)}")
    return "\n".join(lines)
