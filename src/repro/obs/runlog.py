"""The run ledger: one append-only manifest per assessment run.

PR 2's tracer and metrics die with the process; the ledger is the
cross-run memory.  Every assessment (when ``--ledger`` or ``--store``
is enabled) appends one :class:`RunRecord` — a JSON line capturing
*what was assessed, with what configuration, how long each stage took,
what faults were absorbed, and what was found* — to
``<DIR>/runs.jsonl``.  The trend layer (:mod:`repro.obs.trends`) reads
the ledger back to plot finding counts per rule and stage timings over
time and to gate CI on regressions.

Since the store refactor, the table mechanics live in
:class:`repro.store.history.RunHistory` — the run-history side of the
sharded persistence layer — and :class:`RunLedger` is that class under
its historical name.  The on-disk format is unchanged (every old
ledger directory is a valid history), and the store adds what a single
JSONL file could not: per-shard run tables unioned on read, canonical
order-independent merging of many machines' histories
(``repro-store merge``, including ``--from-ledger`` imports of legacy
directories), and run-manifest object references that pin a run's
cache entries against GC.

What stays here is the *assembly*: :func:`build_run_record` knows the
pipeline, tracer, and cache shapes well enough to distill one finished
assessment into a schema-stable manifest.
"""

from __future__ import annotations

import hashlib
from datetime import datetime, timezone
from typing import Dict, List, Optional

from ..store.history import (
    LEDGER_FILENAME,
    LEDGER_SCHEMA,
    RunHistory,
    RunRecord,
    new_run_id,
)

__all__ = [
    "LEDGER_FILENAME",
    "LEDGER_SCHEMA",
    "RunLedger",
    "RunRecord",
    "STAGE_NAMES",
    "build_run_record",
    "new_run_id",
]

#: The pipeline stages whose wall times a record carries, in order.
STAGE_NAMES = ("parse", "metrics", "checkers", "evidence", "compliance",
               "observations")

#: Parallel-engine fault counters folded into every record.
FAULT_COUNTERS = ("task_timeouts", "worker_deaths", "task_errors",
                  "task_retries", "serial_fallbacks")


class RunLedger(RunHistory):
    """Append-only JSONL store of :class:`RunRecord` manifests.

    The historical name for :class:`repro.store.history.RunHistory`:
    ``append`` writes one ``os.O_APPEND`` JSON line per run,
    ``records``/``tail`` read them back oldest-first (skipping and
    counting corrupt lines), and — when the directory is a sharded
    store root — per-shard run tables are unioned in by run id.
    """


# ----------------------------------------------------------------------
# record assembly


def _counter_total(metrics, name: str) -> int:
    """A counter's value summed over every label set."""
    return int(sum(counter.value for counter in metrics.counters
                   if counter.name == name))


def _config_fingerprint(config) -> str:
    """Digest of the assessment-relevant configuration.

    Covers what changes *verdicts or findings* for the same sources —
    ASIL target, thresholds, style/architecture limits, strictness,
    and the shard slice (a shard run assesses a different corpus, so
    its trends must never be compared against a full run's) — not what
    changes only the execution shape (jobs, executor, cache), which
    the record carries as plain fields instead.
    """
    material = repr((config.target_asil, config.thresholds, config.style,
                     config.architecture, config.strict,
                     config.skip_unparseable))
    shard = getattr(config, "shard", None)
    if shard:
        # Appended (rather than folded into the tuple) so full-run
        # fingerprints are byte-identical to pre-store releases and
        # existing trend windows survive the upgrade.
        material += f"|shard:{shard}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]


def _rules_fingerprint(config) -> str:
    if config.rules is None:
        return ""
    from ..rules import REGISTRY
    return config.rules.fingerprint_for(list(REGISTRY))


def build_run_record(result, *, run_id: str, duration: float,
                     exit_code: int, config=None, tracer=None,
                     cache=None, files: Optional[int] = None,
                     timestamp: Optional[str] = None,
                     hotspot_limit: int = 5) -> RunRecord:
    """Assemble a :class:`RunRecord` from one finished assessment.

    Args:
        result: the :class:`~repro.core.assessment.AssessmentResult`.
        run_id: the run's correlation id.
        duration: end-to-end wall seconds.
        exit_code: what the CLI is about to return.
        config: the :class:`~repro.core.config.PipelineConfig` used
            (``None`` skips the fingerprints and fan-out fields).
        tracer: the run's :class:`~repro.obs.Tracer`; supplies stage
            times, fault counters, and hotspots when present.
        cache: the :class:`~repro.core.cache.ResultCache` (or any
            :class:`~repro.store.objects.ObjectStore`), for its
            hit/miss/put/corruption accounting; a store-backed cache
            (``record_references`` set) additionally pins the object
            keys it touched into the manifest, for GC retention.
        files: input file count (defaults to units + unparseable).
        timestamp: ISO timestamp override for deterministic tests.
    """
    findings_by_rule: Dict[str, int] = {}
    findings_by_severity: Dict[str, int] = {}
    total_findings = 0
    for report in result.reports.values():
        for rule, count in report.count_by_rule().items():
            findings_by_rule[rule] = findings_by_rule.get(rule, 0) + count
        for finding in report.findings:
            name = finding.severity.name
            findings_by_severity[name] = \
                findings_by_severity.get(name, 0) + 1
        total_findings += report.finding_count

    stages: Dict[str, float] = {}
    faults: Dict[str, int] = {}
    hotspot_table: Dict[str, List] = {}
    if tracer is not None and tracer.enabled:
        for name in STAGE_NAMES:
            spans = tracer.find(name)
            if spans:
                stages[name] = round(
                    sum(span.duration for span in spans), 6)
        for name in FAULT_COUNTERS:
            faults[name] = _counter_total(tracer.metrics,
                                          f"parallel.{name}")
        from .profile import hotspots
        hotspot_table = hotspots(tracer, limit=hotspot_limit)

    cache_stats: Dict[str, int] = {}
    object_keys: List[str] = []
    if cache is not None:
        cache_stats = {
            "hits": cache.hits,
            "misses": cache.misses,
            "puts": getattr(cache, "puts", 0),
            "corrupt_entries": getattr(cache, "corrupt_entries", 0),
        }
        if getattr(cache, "record_references", False):
            object_keys = sorted(getattr(cache, "referenced", ()))

    units = result.unit_count
    unparseable = len(result.unparseable)
    record = RunRecord(
        run_id=run_id,
        timestamp=timestamp if timestamp is not None else
        datetime.now(timezone.utc).isoformat(timespec="seconds"),
        corpus={
            "files": files if files is not None else units + unparseable,
            "units": units,
            "unparseable": unparseable,
            "loc": result.total_loc,
            "functions": result.total_functions,
        },
        stages=stages,
        total_seconds=round(duration, 6),
        faults=faults,
        cache=cache_stats,
        findings_by_rule=dict(sorted(findings_by_rule.items())),
        findings_by_severity=dict(sorted(findings_by_severity.items())),
        total_findings=total_findings,
        degradations=len(result.crashes),
        hotspots=hotspot_table,
        exit_code=exit_code,
        objects=object_keys,
    )
    if config is not None:
        record.config_fingerprint = _config_fingerprint(config)
        record.rules_fingerprint = _rules_fingerprint(config)
        record.jobs = config.jobs
        record.executor = config.executor
        record.shard = getattr(config, "shard", None) or ""
    return record
