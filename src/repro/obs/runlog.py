"""The run ledger: one append-only manifest per assessment run.

PR 2's tracer and metrics die with the process; the ledger is the
cross-run memory.  Every assessment (when ``--ledger`` is enabled)
appends one :class:`RunRecord` — a JSON line capturing *what was
assessed, with what configuration, how long each stage took, what
faults were absorbed, and what was found* — to ``<DIR>/runs.jsonl``.
The trend layer (:mod:`repro.obs.trends`) reads the ledger back to
plot finding counts per rule and stage timings over time and to gate
CI on regressions.

Design points:

* **Append-only JSONL.**  One ``os.O_APPEND`` write per run keeps
  concurrent assessments from torn interleaving on POSIX, and a
  corrupt line (a crashed writer, a merge artifact) costs exactly that
  line: :meth:`RunLedger.records` skips it and counts it.
* **Schema-versioned.**  Every record carries ``schema``
  (:data:`LEDGER_SCHEMA`); readers default missing fields so old
  ledgers survive new readers and vice versa.
* **Fingerprinted.**  ``config_fingerprint`` and ``rules_fingerprint``
  let the trend layer refuse to compare apples to oranges — a finding
  spike means nothing across a rule-profile change.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from dataclasses import asdict, dataclass, field, fields
from datetime import datetime, timezone
from typing import Dict, List, Optional

__all__ = [
    "LEDGER_FILENAME",
    "LEDGER_SCHEMA",
    "RunLedger",
    "RunRecord",
    "STAGE_NAMES",
    "build_run_record",
    "new_run_id",
]

#: Bump when a :class:`RunRecord` field changes meaning (readers
#: tolerate added/removed fields without a bump).
LEDGER_SCHEMA = 1

#: Ledger file name inside the ledger directory.
LEDGER_FILENAME = "runs.jsonl"

#: The pipeline stages whose wall times a record carries, in order.
STAGE_NAMES = ("parse", "metrics", "checkers", "evidence", "compliance",
               "observations")

#: Parallel-engine fault counters folded into every record.
FAULT_COUNTERS = ("task_timeouts", "worker_deaths", "task_errors",
                  "task_retries", "serial_fallbacks")


def new_run_id() -> str:
    """A fresh 12-hex-digit run id."""
    return uuid.uuid4().hex[:12]


@dataclass
class RunRecord:
    """One assessment run's manifest — everything the trend layer needs.

    Attributes:
        run_id: the run's correlation id (also stamped into the event
            log and printed by the CLI).
        timestamp: ISO-8601 UTC wall time the record was built.
        schema: :data:`LEDGER_SCHEMA` at write time.
        config_fingerprint: digest over the assessment-relevant pipeline
            configuration (ASIL target, thresholds, style and
            architecture limits, strictness).
        rules_fingerprint: how the active rule profile deviates from
            registry defaults (``""`` when no profile or no deviation).
        corpus: input statistics — ``files``, ``units``,
            ``unparseable``, ``loc``, ``functions``.
        jobs / executor: the fan-out configuration the run used.
        stages: per-stage wall seconds (:data:`STAGE_NAMES` keys;
            empty when the run was not traced).
        total_seconds: end-to-end assessment wall time.
        faults: parallel fault counters (:data:`FAULT_COUNTERS`).
        cache: result-cache accounting — ``hits``, ``misses``,
            ``puts``, ``corrupt_entries`` (empty when no cache).
        findings_by_rule: finding count per rule id.
        findings_by_severity: finding count per severity name.
        total_findings: sum over all checkers.
        degradations: contained faults (checker crashes, parser bugs).
        hotspots: top-K slowest files and checkers
            (see :func:`repro.obs.profile.hotspots`).
        exit_code: the CLI exit code the run reported (0 clean,
            3 degraded).
    """

    run_id: str
    timestamp: str
    schema: int = LEDGER_SCHEMA
    config_fingerprint: str = ""
    rules_fingerprint: str = ""
    corpus: Dict[str, int] = field(default_factory=dict)
    jobs: int = 1
    executor: str = "thread"
    stages: Dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    faults: Dict[str, int] = field(default_factory=dict)
    cache: Dict[str, int] = field(default_factory=dict)
    findings_by_rule: Dict[str, int] = field(default_factory=dict)
    findings_by_severity: Dict[str, int] = field(default_factory=dict)
    total_findings: int = 0
    degradations: int = 0
    hotspots: Dict[str, List] = field(default_factory=dict)
    exit_code: int = 0

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """The JSON object written to the ledger (field order stable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, document: Dict) -> "RunRecord":
        """Rebuild a record, defaulting fields the document lacks.

        Unknown keys are dropped, so newer writers do not break older
        readers (and vice versa) — the schema-stability contract the
        trend layer depends on.
        """
        known = {f.name for f in fields(cls)}
        kept = {key: value for key, value in document.items()
                if key in known}
        kept.setdefault("run_id", "")
        kept.setdefault("timestamp", "")
        return cls(**kept)


class RunLedger:
    """Append-only JSONL store of :class:`RunRecord` manifests.

    Attributes:
        directory: the ledger directory (created on first append).
        path: the ``runs.jsonl`` file inside it.
        corrupt_lines: unparseable lines skipped by the last
            :meth:`records` call.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.path = os.path.join(directory, LEDGER_FILENAME)
        self.corrupt_lines = 0

    # ------------------------------------------------------------------

    def append(self, record: RunRecord) -> str:
        """Write one record as a JSON line; returns the ledger path.

        Raises :class:`OSError` when the directory or file cannot be
        written — the CLI surfaces that as a clean exit 2, like any
        other unwritable output path.
        """
        os.makedirs(self.directory, exist_ok=True)
        line = json.dumps(record.to_dict()) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
        return self.path

    def records(self) -> List[RunRecord]:
        """Every parseable record, oldest first.

        Corrupt lines are skipped and counted in :attr:`corrupt_lines`;
        a missing or unreadable ledger raises :class:`OSError`.
        """
        self.corrupt_lines = 0
        loaded: List[RunRecord] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    document = json.loads(line)
                    if not isinstance(document, dict):
                        raise ValueError("record is not an object")
                    loaded.append(RunRecord.from_dict(document))
                except (ValueError, TypeError):
                    self.corrupt_lines += 1
        return loaded

    def tail(self, count: int) -> List[RunRecord]:
        """The last ``count`` records, oldest first."""
        records = self.records()
        return records[-max(0, count):] if count else []


# ----------------------------------------------------------------------
# record assembly


def _counter_total(metrics, name: str) -> int:
    """A counter's value summed over every label set."""
    return int(sum(counter.value for counter in metrics.counters
                   if counter.name == name))


def _config_fingerprint(config) -> str:
    """Digest of the assessment-relevant configuration.

    Covers what changes *verdicts or findings* for the same sources —
    ASIL target, thresholds, style/architecture limits, strictness —
    not what changes only the execution shape (jobs, executor, cache),
    which the record carries as plain fields instead.
    """
    material = repr((config.target_asil, config.thresholds, config.style,
                     config.architecture, config.strict,
                     config.skip_unparseable))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]


def _rules_fingerprint(config) -> str:
    if config.rules is None:
        return ""
    from ..rules import REGISTRY
    return config.rules.fingerprint_for(list(REGISTRY))


def build_run_record(result, *, run_id: str, duration: float,
                     exit_code: int, config=None, tracer=None,
                     cache=None, files: Optional[int] = None,
                     timestamp: Optional[str] = None,
                     hotspot_limit: int = 5) -> RunRecord:
    """Assemble a :class:`RunRecord` from one finished assessment.

    Args:
        result: the :class:`~repro.core.assessment.AssessmentResult`.
        run_id: the run's correlation id.
        duration: end-to-end wall seconds.
        exit_code: what the CLI is about to return.
        config: the :class:`~repro.core.config.PipelineConfig` used
            (``None`` skips the fingerprints and fan-out fields).
        tracer: the run's :class:`~repro.obs.Tracer`; supplies stage
            times, fault counters, and hotspots when present.
        cache: the :class:`~repro.core.cache.ResultCache`, for its
            hit/miss/put/corruption accounting.
        files: input file count (defaults to units + unparseable).
        timestamp: ISO timestamp override for deterministic tests.
    """
    findings_by_rule: Dict[str, int] = {}
    findings_by_severity: Dict[str, int] = {}
    total_findings = 0
    for report in result.reports.values():
        for rule, count in report.count_by_rule().items():
            findings_by_rule[rule] = findings_by_rule.get(rule, 0) + count
        for finding in report.findings:
            name = finding.severity.name
            findings_by_severity[name] = \
                findings_by_severity.get(name, 0) + 1
        total_findings += report.finding_count

    stages: Dict[str, float] = {}
    faults: Dict[str, int] = {}
    hotspot_table: Dict[str, List] = {}
    if tracer is not None and tracer.enabled:
        for name in STAGE_NAMES:
            spans = tracer.find(name)
            if spans:
                stages[name] = round(
                    sum(span.duration for span in spans), 6)
        for name in FAULT_COUNTERS:
            faults[name] = _counter_total(tracer.metrics,
                                          f"parallel.{name}")
        from .profile import hotspots
        hotspot_table = hotspots(tracer, limit=hotspot_limit)

    cache_stats: Dict[str, int] = {}
    if cache is not None:
        cache_stats = {
            "hits": cache.hits,
            "misses": cache.misses,
            "puts": getattr(cache, "puts", 0),
            "corrupt_entries": getattr(cache, "corrupt_entries", 0),
        }

    units = result.unit_count
    unparseable = len(result.unparseable)
    record = RunRecord(
        run_id=run_id,
        timestamp=timestamp if timestamp is not None else
        datetime.now(timezone.utc).isoformat(timespec="seconds"),
        corpus={
            "files": files if files is not None else units + unparseable,
            "units": units,
            "unparseable": unparseable,
            "loc": result.total_loc,
            "functions": result.total_functions,
        },
        stages=stages,
        total_seconds=round(duration, 6),
        faults=faults,
        cache=cache_stats,
        findings_by_rule=dict(sorted(findings_by_rule.items())),
        findings_by_severity=dict(sorted(findings_by_severity.items())),
        total_findings=total_findings,
        degradations=len(result.crashes),
        hotspots=hotspot_table,
        exit_code=exit_code,
    )
    if config is not None:
        record.config_fingerprint = _config_fingerprint(config)
        record.rules_fingerprint = _rules_fingerprint(config)
        record.jobs = config.jobs
        record.executor = config.executor
    return record
