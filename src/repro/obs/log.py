"""Structured, leveled JSONL event logging for the assessment stack.

Where the tracer (:mod:`repro.obs.tracer`) answers *how long* things
took, the event log answers *what happened*: one JSON object per line,
each carrying a wall-clock timestamp, the owning run id, a sequence
number, a level, and a dotted event name plus free-form fields::

    {"ts": 1754650000.1, "run": "3f2a9c1b04de", "seq": 7,
     "level": "warning", "event": "parse.failure",
     "path": "perception/lidar.cc", "error": "...", "span": 12}

The contract mirrors the tracer's:

* every instrumented layer takes an optional :class:`EventLog` and
  defaults to :data:`NULL_LOG`, so logging is strictly opt-in and
  zero-cost (and output byte-identical) when disabled;
* events are emitted at the *load-bearing* points only — parse
  failures, unreadable-file skips (``parse.skipped_unreadable``),
  checker crashes, worker deaths and timeouts, serial fallbacks, cache
  corruption and dead-shard sweeps (``cache.sweep_shards``), serve
  request faults (``serve.request_error``, ``serve.crash``) — not per
  unit of work;
* worker chunks log into a picklable :class:`BufferLog`; the parent
  grafts the buffered events back with :meth:`EventLog.graft`, exactly
  as :func:`~repro.core.parallel.graft_worker_trace` does for spans.

Events reference spans by the span's :attr:`~repro.obs.span.Span.id`
(unique per tracer), which also appears in the ``--metrics-json``
span document — the correlation key between the two outputs.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, TextIO

__all__ = [
    "BufferLog",
    "EventLog",
    "LEVELS",
    "NULL_LOG",
    "NullLog",
]

#: Recognized levels, least to most severe.
LEVELS: Dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
}


def _level_number(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(
            f"log level must be one of {tuple(LEVELS)}, got {level!r}")


class EventLog:
    """Writes leveled, structured events as JSON lines.

    Args:
        stream: text sink for the JSON lines (a file handle, a
            ``StringIO``); each event is written and flushed as one
            line, so a crashing run keeps everything emitted so far.
        level: minimum level written; lower-level events are dropped
            at the emit call.
        run_id: correlation id stamped into every event.
        clock: wall-clock time source (overridable for deterministic
            tests).
    """

    #: False on :class:`NullLog`; lets call sites skip event assembly.
    enabled: bool = True

    def __init__(self, stream: Optional[TextIO], level: str = "info",
                 run_id: str = "", clock=time.time) -> None:
        self._stream = stream
        self.level = _level_number(level)
        self.run_id = run_id
        self._clock = clock
        self._seq = 0

    # ------------------------------------------------------------------

    def emit(self, level: str, event: str, **fields) -> None:
        """Record one event; dropped when below the configured level."""
        if _level_number(level) < self.level:
            return
        record: Dict[str, object] = {
            "ts": round(self._clock(), 6),
            "run": self.run_id,
            "seq": self._seq,
            "level": level,
            "event": event,
        }
        record.update(fields)
        self._seq += 1
        self._write(record)

    def debug(self, event: str, **fields) -> None:
        self.emit("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.emit("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.emit("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.emit("error", event, **fields)

    # ------------------------------------------------------------------

    def graft(self, events: Optional[List[Dict]]) -> None:
        """Replay a worker's buffered events into this log.

        Each event keeps its worker-side timestamp and fields (including
        the stamped ``worker`` index) but is re-sequenced and re-stamped
        with this log's run id, and re-filtered against this log's
        level — the buffer records everything, the parent decides.
        """
        if not events:
            return
        for buffered in events:
            if LEVELS.get(str(buffered.get("level")), 0) < self.level:
                continue
            record = dict(buffered)
            record["run"] = self.run_id
            record["seq"] = self._seq
            self._seq += 1
            self._write(record)

    # ------------------------------------------------------------------

    def _write(self, record: Dict[str, object]) -> None:
        self._stream.write(json.dumps(record) + "\n")
        flush = getattr(self._stream, "flush", None)
        if flush is not None:
            flush()


class BufferLog(EventLog):
    """An event log that buffers records in memory instead of writing.

    Used inside worker chunks: the buffer is plain data (a list of
    dicts), so it crosses process-pool result queues unchanged, and the
    parent replays it with :meth:`EventLog.graft`.  Buffers record at
    ``debug`` level — filtering is the grafting parent's job.

    Args:
        worker: worker index stamped into every buffered event.
    """

    def __init__(self, worker: Optional[int] = None,
                 clock=time.time) -> None:
        super().__init__(stream=None, level="debug", clock=clock)
        self.worker = worker
        self.events: List[Dict] = []

    def _write(self, record: Dict[str, object]) -> None:
        if self.worker is not None:
            record.setdefault("worker", self.worker)
        self.events.append(record)


class NullLog(EventLog):
    """The zero-cost default: every emit is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(stream=None, level="error", clock=lambda: 0.0)

    def emit(self, level: str, event: str, **fields) -> None:
        pass

    def debug(self, event: str, **fields) -> None:
        pass

    def info(self, event: str, **fields) -> None:
        pass

    def warning(self, event: str, **fields) -> None:
        pass

    def error(self, event: str, **fields) -> None:
        pass

    def graft(self, events: Optional[List[Dict]]) -> None:
        pass


#: Shared default for every instrumented call site.
NULL_LOG = NullLog()
