"""The tracer: nestable spans plus an attached metrics registry.

Usage::

    tracer = Tracer()
    with tracer.span("checkers"):
        with tracer.span("checker", name="casts") as span:
            report = checker.check_project(units)
            span.set("findings", report.finding_count)
    print(render_span_tree(tracer))

Everything instrumented accepts a tracer and defaults to the module-level
:data:`NULL_TRACER`, whose spans and metrics are shared no-op objects —
the disabled path costs one attribute load and a ``with`` over a trivial
context manager, and produces byte-identical pipeline output.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .metrics import MetricsRegistry, NullMetricsRegistry
from .span import Span


class Tracer:
    """Records a forest of timed spans and owns a metrics registry.

    Args:
        clock: monotonic time source in seconds (overridable for
            deterministic tests).
    """

    #: False on :class:`NullTracer`; lets hot loops skip attribute work.
    enabled: bool = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self.metrics: MetricsRegistry = MetricsRegistry()

    # ------------------------------------------------------------------

    def span(self, name: str, /, **attributes) -> "_SpanContext":
        """Open a nested span as a context manager.

        ``name`` is positional-only so that ``name=`` stays usable as a
        span attribute: ``tracer.span("checker", name="casts")``.
        """
        return _SpanContext(self, name, attributes)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def spans(self) -> List[Span]:
        """Every recorded span, depth first across all roots."""
        collected: List[Span] = []
        for root in self.roots:
            collected.extend(root.walk())
        return collected

    def find(self, name: str) -> List[Span]:
        """Every recorded span with the given taxonomy name."""
        return [span for span in self.spans() if span.name == name]

    def to_dict(self) -> Dict:
        """JSON document: the span forest plus all metrics."""
        return {
            "spans": [root.to_dict() for root in self.roots],
            "metrics": self.metrics.to_dict(),
        }

    # ------------------------------------------------------------------

    def _open(self, name: str, attributes: Dict) -> Span:
        span = Span(name, attributes, start=self._clock(),
                    parent=self.current)
        span.id = self._next_id
        self._next_id += 1
        if span.parent is not None:
            span.parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - misnested exit
            self._stack.remove(span)


class _SpanContext:
    """Context manager yielding the opened :class:`Span`."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: Tracer, name: str, attributes: Dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.set("error", exc_type.__name__)
        self._tracer._close(self._span)


class _NullSpan(Span):
    """A shared span that ignores attribute writes."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, key: str, value) -> None:
        pass


class _NullSpanContext:
    """Reusable no-op context manager returned by ``NullTracer.span``."""

    __slots__ = ("_span",)

    def __init__(self, span: _NullSpan) -> None:
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class NullTracer(Tracer):
    """The zero-cost default: every span and metric is a shared no-op.

    ``span()`` returns one preallocated context manager, so instrumented
    code paths allocate nothing and record nothing when tracing is off.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0)
        self.metrics = NullMetricsRegistry()
        self._null_context = _NullSpanContext(_NullSpan())

    def span(self, name: str, /, **attributes) -> "_NullSpanContext":
        return self._null_context


#: Shared default for every instrumented call site.
NULL_TRACER = NullTracer()
