"""Telemetry for the assessment stack: tracing, metrics, profiling.

The observability subsystem instrumentation contract:

* every instrumented layer takes an optional :class:`Tracer` and
  defaults to :data:`NULL_TRACER`, so telemetry is strictly opt-in and
  zero-cost (and output byte-identical) when disabled;
* spans follow a small taxonomy (``pipeline`` > ``parse`` >
  ``parse_file``, ``checkers`` > ``checker``, ``kernel_launch``, ...)
  documented in DESIGN.md;
* numbers land in the tracer's :class:`MetricsRegistry` under dotted
  names (``pipeline.units_parsed``, ``checker.findings``,
  ``gpu.kernel_launches``) with Prometheus-style labels.

Exporters render the recorded trace as a human span tree, a Chrome
``trace_event`` JSON document, or Prometheus text.
"""

from .export import (
    chrome_trace,
    render_prometheus,
    render_span_tree,
    trace_document,
)
from .profile import render_profile, top_spans
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .span import Span
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "render_profile",
    "render_prometheus",
    "render_span_tree",
    "top_spans",
    "trace_document",
]
