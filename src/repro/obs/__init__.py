"""Telemetry for the assessment stack: tracing, metrics, profiling.

The observability subsystem instrumentation contract:

* every instrumented layer takes an optional :class:`Tracer` and
  defaults to :data:`NULL_TRACER`, so telemetry is strictly opt-in and
  zero-cost (and output byte-identical) when disabled;
* spans follow a small taxonomy (``pipeline`` > ``parse`` >
  ``parse_file``, ``checkers`` > ``checker``, ``kernel_launch``, ...)
  documented in DESIGN.md;
* numbers land in the tracer's :class:`MetricsRegistry` under dotted
  names (``pipeline.units_parsed``, ``checker.findings``,
  ``gpu.kernel_launches``) with Prometheus-style labels.

Exporters render the recorded trace as a human span tree, a Chrome
``trace_event`` JSON document, or Prometheus text.
"""

from .export import (
    chrome_trace,
    render_prometheus,
    render_span_tree,
    trace_document,
)
from .log import LEVELS, NULL_LOG, BufferLog, EventLog, NullLog
from .profile import (
    hotspots,
    render_hotspots,
    render_profile,
    render_self_time,
    self_time_by_name,
    top_spans,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .runlog import (
    LEDGER_SCHEMA,
    RunLedger,
    RunRecord,
    build_run_record,
    new_run_id,
)
from .span import Span
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "BufferLog",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA",
    "LEVELS",
    "MetricsRegistry",
    "NullLog",
    "NullMetricsRegistry",
    "NULL_LOG",
    "NULL_TRACER",
    "NullTracer",
    "RunLedger",
    "RunRecord",
    "Span",
    "Tracer",
    "build_run_record",
    "chrome_trace",
    "hotspots",
    "new_run_id",
    "render_hotspots",
    "render_profile",
    "render_prometheus",
    "render_self_time",
    "render_span_tree",
    "self_time_by_name",
    "top_spans",
    "trace_document",
]
