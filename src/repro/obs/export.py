"""Exporters: human span tree, Chrome ``trace_event`` JSON, Prometheus text.

Three consumers, three formats:

* :func:`render_span_tree` — what ``repro-assess --trace`` prints: an
  indented tree with total/self wall time and the count attributes.
* :func:`chrome_trace` — a list of Chrome ``trace_event`` complete
  events (load the written JSON in ``chrome://tracing`` / Perfetto).
* :func:`render_prometheus` — the text exposition format, one line per
  counter/gauge plus summary lines per histogram.

The profiling view (top-N slowest spans) lives in
:mod:`repro.obs.profile`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Union

from .metrics import MetricsRegistry
from .span import Span
from .tracer import Tracer

#: Attributes that name a span rather than count something.
_LABEL_KEYS = ("name", "path", "kernel", "module", "checker")


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1000.0:8.3f}ms"


def _format_counts(span: Span) -> str:
    counts = []
    for key, value in span.attributes.items():
        if key in _LABEL_KEYS:
            continue
        counts.append(f"{key}={value}")
    return f"  [{', '.join(counts)}]" if counts else ""


def render_span_tree(source: Union[Tracer, List[Span]]) -> str:
    """The indented span tree with total and self wall times."""
    roots = source.roots if isinstance(source, Tracer) else list(source)
    header = f"{'total':>10} {'self':>10}  span"
    lines = [header, "-" * max(48, len(header))]

    def emit(span: Span, depth: int) -> None:
        lines.append(f"{_format_seconds(span.duration)} "
                     f"{_format_seconds(span.self_time)}  "
                     f"{'  ' * depth}{span.label()}{_format_counts(span)}")
        for child in span.children:
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome trace_event


def _worker_tid(span: Span, base_tid: int) -> Union[int, None]:
    """The dedicated track for a grafted worker span forest, if any.

    Worker root spans (``parse_worker``, ``checker_worker``) carry a
    ``worker`` chunk index; each gets its own ``tid`` so parallel
    chunks render as one row per worker in the trace viewer instead of
    interleaving on the main track.
    """
    if not span.name.endswith("_worker"):
        return None
    try:
        return base_tid + 1 + int(span.attributes["worker"])
    except (KeyError, TypeError, ValueError):
        return None


def chrome_trace(source: Union[Tracer, List[Span]],
                 pid: int = 1, tid: int = 1) -> List[Dict]:
    """Chrome ``trace_event`` complete ("X") events, one per span.

    Timestamps are microseconds relative to the earliest span start, so
    the document is stable across runs modulo durations.  Spans under a
    grafted worker forest get a per-worker ``tid`` (worker N renders on
    track ``tid + 1 + N``); everything else stays on ``tid``.
    """
    roots = source.roots if isinstance(source, Tracer) else list(source)
    spans = [span for root in roots for span in root.walk()]
    if not spans:
        return []
    epoch = min(span.start for span in spans)
    events: List[Dict] = []

    def emit(span: Span, track: int) -> None:
        worker_track = _worker_tid(span, tid)
        if worker_track is not None:
            track = worker_track
        events.append({
            "name": span.label(),
            "cat": span.name,
            "ph": "X",
            "ts": (span.start - epoch) * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": track,
            "args": dict(span.attributes),
        })
        for child in span.children:
            emit(child, track)

    for root in roots:
        emit(root, tid)
    return events


def trace_document(tracer: Tracer) -> Dict:
    """The full JSON trace: span forest, metrics, and Chrome events."""
    return {
        "spans": [root.to_dict() for root in tracer.roots],
        "metrics": tracer.metrics.to_dict(),
        "traceEvents": chrome_trace(tracer),
    }


# ----------------------------------------------------------------------
# Prometheus text exposition


def _prometheus_name(name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _prometheus_labels(labels) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f'{key}="{value}"' for key, value in labels) + "}"


def render_prometheus(source: Union[Tracer, MetricsRegistry]) -> str:
    """Prometheus text format for every registered metric."""
    registry = source.metrics if isinstance(source, Tracer) else source
    lines: List[str] = []
    typed = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    for counter in registry.counters:
        name = _prometheus_name(counter.name)
        declare(name, "counter")
        lines.append(f"{name}{_prometheus_labels(counter.labels)} "
                     f"{_render_value(counter.value)}")
    for gauge in registry.gauges:
        name = _prometheus_name(gauge.name)
        declare(name, "gauge")
        lines.append(f"{name}{_prometheus_labels(gauge.labels)} "
                     f"{_render_value(gauge.value)}")
    for histogram in registry.histograms:
        name = _prometheus_name(histogram.name)
        declare(name, "summary")
        summary = histogram.summary()
        for quantile, key in (("0.5", "p50"), ("0.95", "p95")):
            labels = histogram.labels + (("quantile", quantile),)
            lines.append(f"{name}{_prometheus_labels(labels)} "
                         f"{_render_value(summary[key])}")
        lines.append(f"{name}_sum{_prometheus_labels(histogram.labels)} "
                     f"{_render_value(summary['sum'])}")
        lines.append(f"{name}_count{_prometheus_labels(histogram.labels)} "
                     f"{summary['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _render_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
