"""Metrics primitives: counters, gauges, and streaming histograms.

A :class:`MetricsRegistry` is the single sink for every numeric fact the
instrumented stack emits — units parsed, findings per rule, interpreter
steps, kernel launches.  Histograms are *streaming*: they keep
geometric buckets plus exact count/sum/min/max, so p50/p95 are available
without storing samples (bounded memory at any corpus scale).

Metric names are dotted (``pipeline.units_parsed``); labels are plain
keyword arguments (``counter("checker.findings", checker="casts")``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

#: Geometric bucket growth factor.  1.2 bounds the relative quantile
#: error at ~10%, with ~115 buckets per decade-of-9 dynamic range.
_BUCKET_FACTOR = 1.2
_BUCKET_LOG = math.log(_BUCKET_FACTOR)
#: Values at or below this land in the underflow bucket.
_BUCKET_FLOOR = 1e-9

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _metric_key(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down (e.g. bytes currently allocated)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Streaming distribution: geometric buckets + exact extremes.

    ``observe`` is O(1); ``quantile`` walks the (sparse) buckets.  The
    bucket representative is the geometric mean of its bounds, clamped to
    the observed min/max so ``quantile(0.0)`` / ``quantile(1.0)`` are
    exact.
    """

    __slots__ = ("name", "labels", "count", "total", "minimum", "maximum",
                 "_buckets")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._buckets: Dict[int, int] = {}

    # ------------------------------------------------------------------

    @staticmethod
    def _bucket_of(value: float) -> int:
        if value <= _BUCKET_FLOOR:
            return -(2 ** 31)
        return int(math.floor(math.log(value / _BUCKET_FLOOR) / _BUCKET_LOG))

    @staticmethod
    def _representative(bucket: int) -> float:
        if bucket == -(2 ** 31):
            return 0.0
        lower = _BUCKET_FLOOR * _BUCKET_FACTOR ** bucket
        return lower * math.sqrt(_BUCKET_FACTOR)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        bucket = self._bucket_of(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        rank = q * self.count
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= rank:
                value = self._representative(bucket)
                return min(max(value, self.minimum), self.maximum)
        return self.maximum  # pragma: no cover - rank <= count always

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's distribution into this one.

        Buckets are summed and extremes combined, so merging worker
        histograms is equivalent to observing every sample centrally.
        """
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for bucket, occupancy in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + occupancy

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }


class MetricsRegistry:
    """Creates and holds every metric; the export surface.

    Calling :meth:`counter` / :meth:`gauge` / :meth:`histogram` twice with
    the same name and labels returns the same instance, so call sites do
    not need to cache handles.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _labelset(labels))
        if key not in self._counters:
            self._counters[key] = Counter(name, key[1])
        return self._counters[key]

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _labelset(labels))
        if key not in self._gauges:
            self._gauges[key] = Gauge(name, key[1])
        return self._gauges[key]

    def histogram(self, name: str, **labels) -> Histogram:
        key = (name, _labelset(labels))
        if key not in self._histograms:
            self._histograms[key] = Histogram(name, key[1])
        return self._histograms[key]

    # ------------------------------------------------------------------

    @property
    def counters(self) -> List[Counter]:
        return [self._counters[key] for key in sorted(self._counters)]

    @property
    def gauges(self) -> List[Gauge]:
        return [self._gauges[key] for key in sorted(self._gauges)]

    @property
    def histograms(self) -> List[Histogram]:
        return [self._histograms[key] for key in sorted(self._histograms)]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (parallel-worker fan-in).

        Counters add, gauges add (workers report deltas), histograms
        merge bucket-wise; metrics unique to either side survive.
        """
        for counter in other.counters:
            self.counter(counter.name,
                         **dict(counter.labels)).inc(counter.value)
        for gauge in other.gauges:
            self.gauge(gauge.name, **dict(gauge.labels)).inc(gauge.value)
        for histogram in other.histograms:
            self.histogram(histogram.name,
                           **dict(histogram.labels)).merge(histogram)

    def counter_value(self, name: str, **labels) -> float:
        """The current value of a counter, 0 if never created."""
        key = (name, _labelset(labels))
        counter = self._counters.get(key)
        return counter.value if counter is not None else 0

    def to_dict(self) -> Dict:
        """JSON document: every metric keyed by ``name{labels}``."""
        return {
            "counters": {_metric_key(c.name, c.labels): c.value
                         for c in self.counters},
            "gauges": {_metric_key(g.name, g.labels): g.value
                       for g in self.gauges},
            "histograms": {_metric_key(h.name, h.labels): h.summary()
                           for h in self.histograms},
        }


class NullMetricsRegistry(MetricsRegistry):
    """A registry whose metrics swallow every update.

    One shared no-op instance of each primitive is handed out, so the
    disabled path allocates nothing per call site.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter()
        self._null_gauge = _NullGauge()
        self._null_histogram = _NullHistogram()

    def counter(self, name: str, **labels) -> Counter:
        return self._null_counter

    def gauge(self, name: str, **labels) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, **labels) -> Histogram:
        return self._null_histogram


class _NullCounter(Counter):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def observe(self, value: float) -> None:
        pass

    def merge(self, other: Histogram) -> None:
        pass
