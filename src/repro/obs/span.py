"""Trace spans: the nodes of the in-memory trace tree.

A :class:`Span` records one timed region of the assessment pipeline —
"parse this file", "run this checker", "launch this kernel" — together
with free-form attributes (item counts, names) and its child spans.
Spans are produced by :class:`~repro.obs.tracer.Tracer` context managers
and consumed by the exporters in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional


class Span:
    """One timed region of execution, with attributes and children.

    Attributes:
        name: span-taxonomy name (e.g. ``"checker"``, ``"parse_file"``).
        attributes: free-form labels and counts (``name="casts"``,
            ``findings=12``).
        start: clock reading when the span opened (seconds).
        end: clock reading when the span closed, or ``None`` while open.
        children: sub-spans, in start order.
        parent: enclosing span, or ``None`` for a root.
        id: tracer-assigned sequence number (unique within one tracer,
            0 for unassigned spans) — the correlation key structured
            log events use to reference a span.
    """

    __slots__ = ("name", "attributes", "start", "end", "children", "parent",
                 "id")

    def __init__(self, name: str, attributes: Optional[Dict] = None,
                 start: float = 0.0,
                 parent: Optional["Span"] = None) -> None:
        self.name = name
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.start = start
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self.parent = parent
        self.id = 0

    # ------------------------------------------------------------------

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute; usable while open."""
        self.attributes[key] = value

    @property
    def duration(self) -> float:
        """Total wall time in seconds (0.0 while the span is open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Wall time not accounted for by child spans."""
        return max(0.0, self.duration -
                   sum(child.duration for child in self.children))

    def label(self) -> str:
        """``name`` plus the identifying attributes, for display."""
        parts = [self.name]
        for key in ("name", "path", "kernel", "module", "checker"):
            value = self.attributes.get(key)
            if value is not None and str(value) != self.name:
                parts.append(f"{key}={value}")
        return " ".join(parts)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every descendant (including self) with the given name."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> Dict:
        """JSON-friendly recursive representation."""
        return {
            "name": self.name,
            "id": self.id,
            "attributes": dict(self.attributes),
            "start": self.start,
            "duration": self.duration,
            "self_time": self.self_time,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.label()!r}, duration={self.duration:.6f}, "
                f"children={len(self.children)})")
