"""Software unit design & implementation checks — paper Table 3 (ISO Table 8).

Section 3.5 walks through the ten principles and reports, for Apollo:

1. 41% of functions in the object-detection module have several exit points;
2. most data structures are allocated dynamically;
3. several variables are uninitialized;
4. variable-name uniqueness is complicated by libraries and namespaces;
5. ~900 globals in the perception module;
6. pointers are used pervasively (CUDA makes them indispensable);
7. >1,400 explicit type conversions;
8. hidden data/control flow (function-like macros, conditional compilation);
9. several unconditional jumps;
10. a few recursive functions (tree processing).

This checker produces one finding stream and one statistics block covering
all ten items.  Recursion detection is project-level (indirect recursion
needs the whole call graph), so :meth:`check_project` overrides the default.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ..lang.cppmodel import TYPE_KEYWORDS, FunctionInfo, TranslationUnit
from ..lang.tokens import Token, TokenKind
from ..rules import REGISTRY, Rule
from .base import Checker, CheckerReport, Finding, Severity

RULES = REGISTRY.register_many("unit_design", (
    Rule("UD1.multi_exit", "One entry and one exit point per function",
         Severity.MINOR, table="unit_design", topic="single_entry_exit"),
    Rule("UD2.dynamic_alloc", "No dynamic objects or variables",
         Severity.MAJOR, table="unit_design", topic="no_dynamic_objects"),
    Rule("UD3.uninitialized", "Initialization of variables",
         Severity.MAJOR, table="unit_design",
         topic="variable_initialization"),
    Rule("UD4.shadowing", "No multiple use of variable names",
         Severity.MINOR, table="unit_design", topic="no_name_reuse"),
    Rule("UD8.macro_flow", "No hidden data flow or control flow "
         "(function-like macros)",
         Severity.MINOR, table="unit_design", topic="no_hidden_flow"),
    Rule("UD8.cond_compilation", "No hidden data flow or control flow "
         "(conditional compilation)",
         Severity.INFO, table="unit_design", topic="no_hidden_flow"),
    Rule("UD9.goto", "No unconditional jumps",
         Severity.MAJOR, table="unit_design",
         topic="no_unconditional_jumps"),
    Rule("UD10.recursion", "No recursions",
         Severity.MAJOR, table="unit_design", topic="no_recursion"),
))

#: Scalar types whose declaration without initializer is flagged (item 3).
_SCALAR_TYPES = TYPE_KEYWORDS - {"void", "auto"}

#: Statement-context tokens after which a declaration can begin.
_STATEMENT_STARTERS = frozenset({";", "{", "}"})


class UnitDesignChecker(Checker):
    """Implements the ten Table 8 unit-design checks."""

    name = "unit_design"

    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        report = self.new_report((unit,))
        counts = {"multi_exit": 0, "dynamic": 0, "pointer": 0, "goto": 0}
        for function in unit.functions:
            body = unit.body_tokens(function)
            self._check_function(unit, function, body, counts, report)
        self._finish_unit(unit, counts, report)
        return report

    def unit_visitor(self, unit: TranslationUnit, report: CheckerReport,
                     sweep) -> bool:
        """Fused registration: the per-function battery rides the shared
        function phase; hidden-flow findings and the statistics block
        come last, exactly as in :meth:`check_unit`."""
        counts = {"multi_exit": 0, "dynamic": 0, "pointer": 0, "goto": 0}
        sweep.on_function(lambda function, body:
                          self._check_function(unit, function, body,
                                               counts, report))
        sweep.at_end(lambda: self._finish_unit(unit, counts, report))
        return True

    def _check_function(self, unit: TranslationUnit,
                        function: FunctionInfo, body: List[Token],
                        counts: Dict[str, int],
                        report: CheckerReport) -> None:
        if function.has_multiple_exits:
            if report.emit(Finding(
                    rule="UD1.multi_exit",
                    message=(f"{function.name!r} has "
                             f"{function.exit_points} exit points"),
                    filename=unit.filename,
                    line=function.start_line,
                    severity=Severity.MINOR,
                    function=function.qualified_name,
            )):
                counts["multi_exit"] += 1
        if function.uses_dynamic_memory:
            if report.emit(Finding(
                    rule="UD2.dynamic_alloc",
                    message=(f"{function.name!r} allocates dynamically "
                             f"({function.allocation_calls} calls, "
                             f"{function.new_expressions} new)"),
                    filename=unit.filename,
                    line=function.start_line,
                    severity=Severity.MAJOR,
                    function=function.qualified_name,
            )):
                counts["dynamic"] += 1
        if function.pointer_operations > 0 \
                or any(parameter.is_pointer
                       for parameter in function.parameters):
            counts["pointer"] += 1
        if function.goto_count > 0:
            if report.emit(Finding(
                    rule="UD9.goto",
                    message=f"{function.name!r} uses goto",
                    filename=unit.filename,
                    line=function.start_line,
                    severity=Severity.MAJOR,
                    function=function.qualified_name,
            )):
                counts["goto"] += 1
        self._check_uninitialized(unit, function, body, report)
        self._check_shadowing(unit, function, body, report)

    def _finish_unit(self, unit: TranslationUnit, counts: Dict[str, int],
                     report: CheckerReport) -> None:
        hidden = self._check_hidden_flow(unit, report)
        report.stats.update({
            "functions": len(unit.functions),
            "multi_exit_functions": counts["multi_exit"],
            "dynamic_alloc_functions": counts["dynamic"],
            "pointer_functions": counts["pointer"],
            "goto_functions": counts["goto"],
            "uninitialized_declarations": sum(
                1 for finding in report.findings
                if finding.rule == "UD3.uninitialized"),
            "shadowed_names": sum(
                1 for finding in report.findings
                if finding.rule == "UD4.shadowing"),
            "hidden_flow_sites": hidden,
            "mutable_globals": len(unit.mutable_globals),
        })

    def check_project(self,
                      units: Iterable[TranslationUnit]) -> CheckerReport:
        units = list(units)
        return self.finish_from_units(
            units, [self.check_unit(unit) for unit in units])

    def finish_from_units(self, units: List[TranslationUnit],
                          unit_reports: List[CheckerReport]
                          ) -> CheckerReport:
        """Merge the per-unit reports, then run the project-wide
        call-graph recursion pass — the part that genuinely needs every
        unit at once.  Overriding this (rather than only
        :meth:`check_project`) lets the pipeline distribute and cache
        this checker's per-unit portion like any other."""
        report = self.new_report(units, flag_deviations=False)
        for unit_report in unit_reports:
            report.merge(unit_report)
        report.stats["recursive_functions"] = \
            self._check_recursion(units, report)
        self.finalize(report)
        return report

    def finalize(self, report: CheckerReport) -> None:
        functions = report.stats.get("functions", 0)
        for key, stat in (("multi_exit_ratio", "multi_exit_functions"),
                          ("dynamic_alloc_ratio", "dynamic_alloc_functions"),
                          ("pointer_ratio", "pointer_functions")):
            report.stats[key] = self.ratio(report.stats.get(stat, 0),
                                           functions)

    # ------------------------------------------------------------------
    # item 3: initialization of variables

    def _check_uninitialized(self, unit: TranslationUnit,
                             function: FunctionInfo, body: List[Token],
                             report: CheckerReport) -> None:
        """Flag `type name;` scalar declarations with no initializer.

        The heuristic mirrors what "static code analysis tools and compiler
        options" (Section 3.5 item 3) report: a scalar local declared
        without an initializer.  Whether a later assignment happens before
        first use is undecidable fuzzily, so this over-approximates the
        same way ``-Wuninitialized``-style diagnostics do at declaration
        granularity.
        """
        for index in range(1, len(body) - 2):
            token = body[index]
            if not (token.kind is TokenKind.KEYWORD
                    and token.text in _SCALAR_TYPES):
                continue
            previous = body[index - 1]
            if not (previous.kind is TokenKind.PUNCT
                    and previous.text in _STATEMENT_STARTERS):
                continue
            name = body[index + 1]
            terminator = body[index + 2]
            if name.kind is TokenKind.IDENTIFIER \
                    and terminator.is_punct(";"):
                report.emit(Finding(
                    rule="UD3.uninitialized",
                    message=(f"local {name.text!r} declared without an "
                             f"initializer"),
                    filename=unit.filename,
                    line=token.line,
                    severity=Severity.MAJOR,
                    function=function.qualified_name,
                ))

    # ------------------------------------------------------------------
    # item 4: no multiple use of variable names (shadowing)

    def _check_shadowing(self, unit: TranslationUnit,
                         function: FunctionInfo, body: List[Token],
                         report: CheckerReport) -> None:
        """Flag a local declaration reusing a name visible in an outer scope."""
        scopes: List[Set[str]] = [
            {parameter.name for parameter in function.parameters
             if parameter.name}]
        punct = TokenKind.PUNCT
        keyword = TokenKind.KEYWORD
        index = 1  # skip opening brace
        stop = len(body) - 1
        while index < stop:
            token = body[index]
            kind = token.kind
            if kind is punct:
                text = token.text
                if text == "{":
                    scopes.append(set())
                elif text == "}" and len(scopes) > 1:
                    scopes.pop()
            elif kind is keyword and token.text in _SCALAR_TYPES:
                # Only a scalar-type keyword can open a declaration;
                # _declared_name re-checks the full shape.
                declared = self._declared_name(body, index)
                if declared is not None:
                    name, line = declared
                    if any(name in scope for scope in scopes[:-1]) \
                            or name in scopes[-1]:
                        report.emit(Finding(
                            rule="UD4.shadowing",
                            message=(f"declaration of {name!r} shadows an "
                                     f"outer declaration"),
                            filename=unit.filename,
                            line=line,
                            severity=Severity.MINOR,
                            function=function.qualified_name,
                        ))
                    scopes[-1].add(name)
            index += 1

    @staticmethod
    def _declared_name(body: List[Token], index: int):
        """Name declared by `type name [=...]` starting at ``index``."""
        token = body[index]
        if not (token.kind is TokenKind.KEYWORD
                and token.text in _SCALAR_TYPES):
            return None
        previous = body[index - 1]
        if not (previous.kind is TokenKind.PUNCT
                and previous.text in (_STATEMENT_STARTERS | {"("})):
            return None
        cursor = index + 1
        # Skip further type keywords and pointer declarators.
        while cursor < len(body) and (
                (body[cursor].kind is TokenKind.KEYWORD
                 and body[cursor].text in (_SCALAR_TYPES | {"const"}))
                or body[cursor].is_punct("*") or body[cursor].is_punct("&")):
            cursor += 1
        if cursor < len(body) \
                and body[cursor].kind is TokenKind.IDENTIFIER:
            after = body[cursor + 1] if cursor + 1 < len(body) else None
            if after is not None and (after.is_punct("=")
                                      or after.is_punct(";")
                                      or after.is_punct("[")):
                return body[cursor].text, body[cursor].line
        return None

    # ------------------------------------------------------------------
    # item 8: hidden data/control flow

    def _check_hidden_flow(self, unit: TranslationUnit,
                           report: CheckerReport) -> int:
        """Function-like macros and in-function conditional compilation.

        Both hide flow from review and coverage tools, which is how the
        paper connects item 8 to its coverage findings.
        """
        sites = 0
        macro_names = {macro.name
                       for macro in unit.preprocessor.function_like_macros}
        if macro_names:
            for function in unit.functions:
                hidden_calls = [call for call in function.calls
                                if call in macro_names]
                if hidden_calls:
                    if report.emit(Finding(
                            rule="UD8.macro_flow",
                            message=(f"{function.name!r} invokes "
                                     f"function-like macro(s) "
                                     f"{sorted(set(hidden_calls))}"),
                            filename=unit.filename,
                            line=function.start_line,
                            severity=Severity.MINOR,
                            function=function.qualified_name,
                    )):
                        sites += len(hidden_calls)
        conditionals = unit.preprocessor.conditionals
        if conditionals:
            if report.emit(Finding(
                    rule="UD8.cond_compilation",
                    message=(f"{conditionals} conditional-compilation "
                             f"directive(s) in translation unit"),
                    filename=unit.filename,
                    severity=Severity.INFO,
            )):
                sites += conditionals
        return sites

    # ------------------------------------------------------------------
    # item 10: recursion (direct and indirect)

    def _check_recursion(self, units: List[TranslationUnit],
                         report: CheckerReport) -> int:
        """Report functions on a call-graph cycle; returns the count.

        Names are matched project-wide; the count covers only findings
        that actually landed (disabled or deviated ones are excluded
        from the ``recursive_functions`` stat too).
        """
        graph: Dict[str, Set[str]] = {}
        locations: Dict[str, Tuple[str, int]] = {}
        defined: Set[str] = set()
        for unit in units:
            for function in unit.functions:
                defined.add(function.name)
                locations.setdefault(function.name,
                                     (unit.filename, function.start_line))
        for unit in units:
            for function in unit.functions:
                edges = graph.setdefault(function.name, set())
                edges.update(call for call in function.calls
                             if call in defined)
        recursive = _functions_on_cycles(graph)
        reported = 0
        for name in sorted(recursive):
            filename, line = locations.get(name, ("<unknown>", 0))
            if report.emit(Finding(
                    rule="UD10.recursion",
                    message=f"{name!r} participates in a call-graph cycle",
                    filename=filename,
                    line=line,
                    severity=Severity.MAJOR,
                    function=name,
            )):
                reported += 1
        return reported


def _functions_on_cycles(graph: Dict[str, Set[str]]) -> Set[str]:
    """Names on any cycle of the call graph (iterative Tarjan SCC)."""
    index_counter = [0]
    indices: Dict[str, int] = {}
    lowlinks: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: Set[str] = set()

    for root in graph:
        if root in indices:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                indices[node] = index_counter[0]
                lowlinks[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = sorted(graph.get(node, ()))
            recurse = False
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in indices:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[child])
            if recurse:
                continue
            if lowlinks[node] == indices[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    result.update(component)
                elif node in graph.get(node, ()):
                    result.add(node)  # direct self-recursion
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
    return result
