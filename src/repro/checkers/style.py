"""Style-guide conformance — Table 1 item 7, Observation 8.

The paper: "For Apollo source code, we used a style guide tool to process
the code, and it verifies that the proper coding style is very well
achieved" (Apollo mandates the Google C++ style guide, enforced by
cpplint).  This checker implements the mechanically verifiable cpplint
subset relevant at ASIL D review time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.cppmodel import TranslationUnit
from ..rules import REGISTRY, Rule
from .base import Checker, CheckerReport, Finding, Severity

RULES = REGISTRY.register_many("style", (
    Rule("SG.line_length", "Lines shall fit the configured length limit",
         Severity.INFO, table="modeling_coding", topic="style_guides"),
    Rule("SG.tab", "Tabs shall not be used for whitespace",
         Severity.INFO, table="modeling_coding", topic="style_guides"),
    Rule("SG.trailing_ws", "Lines shall carry no trailing whitespace",
         Severity.INFO, table="modeling_coding", topic="style_guides"),
    Rule("SG.brace_own_line", "Opening braces end the previous line",
         Severity.INFO, table="modeling_coding", topic="style_guides"),
    Rule("SG.indent", "Indentation follows the configured width",
         Severity.INFO, table="modeling_coding", topic="style_guides"),
    Rule("SG.final_newline", "Files shall end with a newline",
         Severity.INFO, table="modeling_coding", topic="style_guides"),
    Rule("SG.header_guard", "Headers shall have an include guard",
         Severity.MINOR, table="modeling_coding", topic="style_guides"),
))


@dataclass(frozen=True)
class StyleConfig:
    """Tunable limits; defaults match Google C++ style / cpplint."""

    max_line_length: int = 80
    indent_width: int = 2
    require_header_guard: bool = True


class StyleChecker(Checker):
    """Line-level and file-level Google-style checks.

    Needs the original source text, so callers must register sources with
    :meth:`add_source` (the assessment pipeline does this automatically).
    """

    name = "style"

    def __init__(self, config: StyleConfig = StyleConfig()) -> None:
        self.config = config
        self._sources = {}

    def add_source(self, filename: str, source: str) -> None:
        """Register the raw text of a file before checking its unit."""
        self._sources[filename] = source

    def for_units(self, units) -> "StyleChecker":
        """A copy carrying only the sources of ``units`` (see base)."""
        pruned = StyleChecker(self.config)
        pruned.profile = self.profile
        for unit in units:
            source = self._sources.get(unit.filename)
            if source is not None:
                pruned.add_source(unit.filename, source)
        return pruned

    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        report = self.new_report((unit,))
        self._check_into(unit, report)
        return report

    def unit_visitor(self, unit: TranslationUnit, report: CheckerReport,
                     sweep) -> bool:
        """Style checks read the registered raw source, not the token
        stream, so the battery runs whole from the end hook."""
        sweep.at_end(lambda: self._check_into(unit, report))
        return True

    def _check_into(self, unit: TranslationUnit,
                    report: CheckerReport) -> None:
        source = self._sources.get(unit.filename)
        if source is None:
            # Reconstruct approximate lines from tokens is lossy; without
            # text we can only run token-level checks.
            source = ""
        lines = source.split("\n") if source else []
        violations = 0
        previous = ""
        for line_number, line in enumerate(lines, start=1):
            violations += self._check_line(unit, report, line_number, line,
                                           previous)
            if line.strip():
                previous = line
        if source and not source.endswith("\n"):
            if report.emit(Finding(
                    rule="SG.final_newline",
                    message="file does not end with a newline",
                    filename=unit.filename,
                    line=len(lines),
                    severity=Severity.INFO,
            )):
                violations += 1
        if (self.config.require_header_guard
                and unit.filename.endswith((".h", ".hpp", ".cuh"))
                and source and not self._has_header_guard(source)):
            if report.emit(Finding(
                    rule="SG.header_guard",
                    message="header lacks an include guard or #pragma once",
                    filename=unit.filename,
                    line=1,
                    severity=Severity.MINOR,
            )):
                violations += 1
        report.stats.update({
            "style_violations": violations,
            "checked_lines": len(lines),
        })
        self.finalize(report)

    def finalize(self, report: CheckerReport) -> None:
        lines = report.stats.get("checked_lines", 0)
        violations = report.stats.get("style_violations", 0)
        report.stats["violations_per_kloc"] = (
            0.0 if lines == 0 else 1000.0 * violations / lines)

    # ------------------------------------------------------------------

    def _check_line(self, unit: TranslationUnit, report: CheckerReport,
                    line_number: int, line: str, previous: str = "") -> int:
        violations = 0

        def flag(rule: str, message: str,
                 severity: Severity = Severity.INFO) -> None:
            nonlocal violations
            if report.emit(Finding(
                    rule=rule, message=message, filename=unit.filename,
                    line=line_number, severity=severity)):
                violations += 1

        if len(line) > self.config.max_line_length:
            flag("SG.line_length",
                 f"line is {len(line)} characters "
                 f"(limit {self.config.max_line_length})")
        if "\t" in line:
            flag("SG.tab", "tab character used for whitespace")
        if line != line.rstrip():
            flag("SG.trailing_ws", "trailing whitespace")
        stripped = line.strip()
        if stripped == "{":
            flag("SG.brace_own_line",
                 "opening brace should be at the end of the previous line")
        indent = len(line) - len(line.lstrip(" "))
        is_continuation = previous.rstrip().endswith(
            ("(", ",", "&&", "||", "+", "-", "*", "/", "="))
        if stripped and "\t" not in line and not is_continuation \
                and indent % self.config.indent_width != 0 \
                and not stripped.startswith(("*", "//", "public:",
                                             "private:", "protected:")):
            # Continuation lines (previous line left an expression or
            # argument list open) may align to the opening token; only
            # odd indents on fresh statements violate a 2-space standard.
            if indent % 2 != 0:
                flag("SG.indent",
                     f"indentation of {indent} is not a multiple of "
                     f"{self.config.indent_width}")
        return violations

    @staticmethod
    def _has_header_guard(source: str) -> bool:
        head = source[:2000]
        if "#pragma once" in head:
            return True
        return "#ifndef" in head and "#define" in head
