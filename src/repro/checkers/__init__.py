"""Static checkers producing ISO 26262 compliance evidence."""

from .architecture import (
    ArchitectureChecker,
    ArchitectureConfig,
    module_from_path,
)
from .base import (
    Checker,
    CheckerCrash,
    CheckerReport,
    Finding,
    RuleView,
    Severity,
    crash_report,
    enclosing_function_name,
    make_crash,
    require_unique_checker,
    run_checkers,
)
from .casts import CastChecker
from .defensive import DefensiveChecker, project_validation_ratio
from .globals_check import GlobalVariableChecker
from .gpu_subset import GpuSubsetChecker, KernelAudit
from .misra import MisraChecker, cuda_intrinsic_violations
from .naming import NamingChecker
from .style import StyleChecker, StyleConfig
from .unitdesign import UnitDesignChecker

__all__ = [
    "ArchitectureChecker",
    "ArchitectureConfig",
    "CastChecker",
    "Checker",
    "CheckerCrash",
    "CheckerReport",
    "DefensiveChecker",
    "Finding",
    "GlobalVariableChecker",
    "GpuSubsetChecker",
    "KernelAudit",
    "MisraChecker",
    "NamingChecker",
    "RuleView",
    "Severity",
    "StyleChecker",
    "StyleConfig",
    "UnitDesignChecker",
    "crash_report",
    "cuda_intrinsic_violations",
    "enclosing_function_name",
    "make_crash",
    "module_from_path",
    "project_validation_ratio",
    "require_unique_checker",
    "run_checkers",
]
