"""Global-variable usage — evidence for Table 1 item 5 and Table 8 item 5.

Observation 7: "AD software uses global variables"; Section 3.5 item 5:
"We identified the use of global variables (e.g. ~900 in the perception
module)."  Mutable file- and namespace-scope variables count; ``const`` and
``constexpr`` objects do not (they are compile-time constants, which the
Google style guide the paper cites explicitly permits).
"""

from __future__ import annotations

from ..lang.cppmodel import TranslationUnit
from ..rules import REGISTRY, Rule
from .base import Checker, CheckerReport, Finding, Severity

RULES = REGISTRY.register_many("globals", (
    Rule("GV.mutable_global", "Mutable global variables shall not be used",
         Severity.MAJOR, table="unit_design", topic="avoid_globals"),
))


class GlobalVariableChecker(Checker):
    """Flags mutable globals and summarizes their density."""

    name = "globals"

    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        report = self.new_report((unit,))
        self._check_into(unit, report)
        return report

    def unit_visitor(self, unit: TranslationUnit, report: CheckerReport,
                     sweep) -> bool:
        """Global-variable evidence comes from the parsed model alone,
        so the check runs whole from the end hook."""
        sweep.at_end(lambda: self._check_into(unit, report))
        return True

    def _check_into(self, unit: TranslationUnit,
                    report: CheckerReport) -> None:
        mutable = 0
        extern = 0
        static = 0
        for variable in unit.globals:
            if not variable.is_mutable_global:
                continue
            scope = variable.namespace or "file scope"
            if not report.emit(Finding(
                    rule="GV.mutable_global",
                    message=(f"mutable global variable {variable.name!r} "
                             f"({variable.type_text or 'unknown type'}) "
                             f"at {scope}"),
                    filename=unit.filename,
                    line=variable.line,
                    severity=Severity.MAJOR,
            )):
                continue
            mutable += 1
            if variable.is_extern:
                extern += 1
            if variable.is_static:
                static += 1
        report.stats.update({
            "mutable_globals": mutable,
            "extern_globals": extern,
            "static_globals": static,
            "const_globals": sum(1 for variable in unit.globals
                                 if not variable.is_mutable_global),
        })
