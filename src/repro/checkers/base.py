"""Checker framework: findings, reports, and the checker base class.

Each checker inspects the fuzzy model (:class:`~repro.lang.cppmodel.
TranslationUnit`) of one or more source files and produces a
:class:`CheckerReport` — a list of located :class:`Finding` objects plus a
dictionary of aggregate statistics.  The statistics are the *evidence* the
ISO 26262 compliance engine consumes (see
:mod:`repro.iso26262.compliance`); the findings are what a developer would
fix.

Findings flow through the rules layer (:mod:`repro.rules`): every rule id
a checker emits is registered in :data:`~repro.rules.REGISTRY`, and
reports created with :meth:`Checker.new_report` route each finding past
the active :class:`~repro.rules.RuleProfile` (enable/disable globs,
severity overrides) and any inline ``DEVIATION(...)`` comments before it
lands.  With no profile and no deviations the routing layer is not even
constructed, so the default path is byte-identical to the pre-rules
behavior.
"""

from __future__ import annotations

import abc
import traceback as traceback_module
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from ..engine.index import function_line_index
from ..errors import ReproError
from ..lang.cppmodel import TranslationUnit
from ..obs import NULL_LOG, NULL_TRACER
from ..rules import (
    CHECKER_CRASH,
    DEVIATION_RULES,
    DeviationIndex,
    MISSING_RATIONALE,
    REGISTRY,
    RuleProfile,
    Severity,
    UNKNOWN_RULE,
    scan_deviations,
)

__all__ = [
    "Checker",
    "CheckerCrash",
    "CheckerReport",
    "Finding",
    "RuleView",
    "Severity",
    "crash_report",
    "enclosing_function_name",
    "make_crash",
    "require_unique_checker",
    "run_checkers",
]


@dataclass(frozen=True)
class Finding:
    """One located rule violation or noteworthy fact.

    Attributes:
        rule: stable rule identifier, e.g. ``"M15.1"`` or ``"UD9.goto"``.
        message: human-readable description.
        filename: source file of the finding.
        line: 1-based line number (0 for file-level findings).
        severity: blocking strength.
        function: qualified name of the enclosing function, when known.
    """

    rule: str
    message: str
    filename: str
    line: int = 0
    severity: Severity = Severity.MINOR
    function: str = ""

    def located(self) -> str:
        """``file:line rule message`` string for reports."""
        location = f"{self.filename}:{self.line}" if self.line else self.filename
        return f"{location}: [{self.rule}] {self.message}"


class RuleView:
    """The routing context a report's findings pass through.

    Built by :meth:`Checker.new_report` only when a rule profile is
    configured or the checked units declare deviations; carries no
    registry reference, only plain picklable state, so reports cross
    process pools and the result cache unchanged.
    """

    def __init__(self, checker: str,
                 profile: Optional[RuleProfile] = None,
                 deviations: Optional[DeviationIndex] = None) -> None:
        self.checker = checker
        self.profile = profile
        self.deviations = deviations

    def route(self, report: "CheckerReport", finding: Finding) -> bool:
        """File ``finding`` into ``report``; True when it was reported.

        Disabled rules drop the finding entirely; a matching justified
        deviation moves it to :attr:`CheckerReport.suppressed` (counted
        under the ``deviations`` stat); severity overrides rewrite it in
        place.
        """
        if self.profile is not None:
            if not self.profile.enabled(finding.rule):
                return False
            severity = self.profile.severity_for(finding.rule,
                                                 finding.severity)
            if severity is not finding.severity:
                finding = replace(finding, severity=severity)
        if self.deviations is not None and self.deviations.suppressing(
                finding.rule, finding.filename, finding.line):
            report.suppressed.append(finding)
            report.stats["deviations"] = \
                report.stats.get("deviations", 0) + 1
            return False
        report.findings.append(finding)
        return True


@dataclass(frozen=True)
class CheckerCrash:
    """One contained checker fault: what crashed, where, and how.

    Plain strings only, so crash records survive process-pool result
    queues, the result cache, and JSON serialization unchanged.

    Attributes:
        checker: name of the crashed checker (or ``"parse"`` for a
            parser-internal fault).
        stage: the call that raised — ``"check_unit"``,
            ``"check_project"``, ``"finalize"``, or ``"parse"``.
        exc_type: qualified exception class name.
        message: ``str(exception)``.
        path: file being processed when known, else ``""``.
        traceback: the formatted traceback, for the degradation report.
    """

    checker: str
    stage: str
    exc_type: str
    message: str
    path: str = ""
    traceback: str = ""

    def describe(self) -> str:
        where = f" on {self.path}" if self.path else ""
        return (f"checker {self.checker!r} crashed in {self.stage}"
                f"{where}: {self.exc_type}: {self.message}")


def make_crash(checker: str, stage: str, error: BaseException,
               path: str = "") -> CheckerCrash:
    """A :class:`CheckerCrash` record for a just-caught exception."""
    return CheckerCrash(
        checker=checker,
        stage=stage,
        exc_type=type(error).__name__,
        message=str(error),
        path=path,
        traceback="".join(traceback_module.format_exception(
            type(error), error, error.__traceback__)),
    )


@dataclass
class CheckerReport:
    """The outcome of running one checker over one or more units."""

    checker: str
    findings: List[Finding] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)
    #: Findings reclassified by a justified ``DEVIATION(...)`` comment;
    #: kept out of :attr:`findings` but reported separately.
    suppressed: List[Finding] = field(default_factory=list)
    #: Contained faults this checker hit; a non-empty list marks the
    #: owning assessment as degraded.
    crashes: List[CheckerCrash] = field(default_factory=list)
    #: Routing context, or ``None`` for the direct (default) path.
    rules: Optional[RuleView] = field(default=None, repr=False,
                                      compare=False)

    @property
    def finding_count(self) -> int:
        return len(self.findings)

    def count_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def emit(self, finding: Finding) -> bool:
        """Report ``finding``; True when it landed in :attr:`findings`.

        Checkers gate sibling counters on the return value so disabled
        or deviated findings vanish from the evidence statistics too.
        """
        if self.rules is None:
            self.findings.append(finding)
            return True
        return self.rules.route(self, finding)

    def merge(self, other: "CheckerReport") -> None:
        """Fold another report of the same checker into this one.

        Statistics are summed; derived ratios must be recomputed by the
        owning checker afterwards.
        """
        if other.checker != self.checker:
            raise ValueError(
                f"cannot merge report of {other.checker!r} into "
                f"{self.checker!r}")
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.crashes.extend(other.crashes)
        for key, value in other.stats.items():
            self.stats[key] = self.stats.get(key, 0) + value

    def record_crash(self, crash: CheckerCrash) -> None:
        """Attach a contained fault: crash record plus a
        :data:`~repro.rules.CHECKER_CRASH` finding, bypassing profile
        routing so a degraded run can never silence its own evidence."""
        self.crashes.append(crash)
        self.findings.append(Finding(
            rule=CHECKER_CRASH,
            message=crash.describe(),
            filename=crash.path or "<internal>",
            severity=Severity.CRITICAL,
        ))


def crash_report(checker: str, crash: CheckerCrash) -> CheckerReport:
    """A fresh report carrying nothing but one contained crash."""
    report = CheckerReport(checker=checker)
    report.record_crash(crash)
    return report


def _unit_deviations(unit: TranslationUnit) -> DeviationIndex:
    """The unit's deviation index, scanned once and memoized on it."""
    index = getattr(unit, "_deviations", None)
    if index is None:
        index = scan_deviations(unit.tokens, unit.filename)
        unit._deviations = index
    return index


class Checker(abc.ABC):
    """Base class for all static checkers.

    Subclasses implement :meth:`check_unit`; project-level checkers that
    need cross-file information (call graphs, include graphs) additionally
    override :meth:`check_project`.
    """

    #: Stable checker name, used as the report key.
    name: str = "checker"

    #: Cache-invalidation tag: bump whenever the checker's output for an
    #: unchanged unit can change (new rules, changed heuristics).
    version: str = "1"

    #: Active rule profile; ``None`` (the default) reports every
    #: registered rule at its default severity.  The pipeline assigns
    #: :attr:`PipelineConfig.rules` here before checking starts.
    profile: Optional[RuleProfile] = None

    #: Exactly one checker flags deviations naming unregistered rules
    #: (they have no owner, so per-owner flagging cannot reach them).
    audits_unknown_deviations: bool = False

    @abc.abstractmethod
    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        """Analyze one translation unit."""

    def unit_visitor(self, unit: TranslationUnit, report: CheckerReport,
                     sweep) -> bool:
        """Register this checker's interests on a fused ``sweep``.

        Called by :func:`repro.engine.driver.fused_unit_bundle` with a
        fresh ``report`` (from :meth:`new_report`) that the registered
        handlers emit into.  Return True when registered; the default
        False sends the checker down the legacy :meth:`check_unit`
        fallback, so external checkers keep working unchanged.

        The contract is byte-identical output: the handlers must emit
        exactly what :meth:`check_unit` emits, in the same order (the
        sweep's phase ordering — see :class:`~repro.engine.interests.
        UnitSweep` — plus buffering where the legacy order demands it).
        """
        return False

    def finish_from_units(self, units: List[TranslationUnit],
                          unit_reports: List[CheckerReport]
                          ) -> CheckerReport:
        """Assemble the project report from per-unit reports.

        ``unit_reports`` are this checker's per-unit reports in unit
        order — produced by :meth:`check_unit` or the fused engine, and
        possibly replayed from the result cache.  The default merge +
        :meth:`finalize` mirrors the base :meth:`check_project`; a
        checker with extra project-level work (e.g. unit design's
        call-graph recursion pass) overrides this so the pipeline can
        still distribute and cache its per-unit portion.
        """
        report = CheckerReport(checker=self.name)
        for unit_report in unit_reports:
            report.merge(unit_report)
        self.finalize(report)
        return report

    def rules(self):
        """The :class:`~repro.rules.Rule` records this checker emits."""
        return REGISTRY.rules_for(self.name)

    def new_report(self, units: Iterable[TranslationUnit] = (),
                   flag_deviations: bool = True) -> CheckerReport:
        """A report wired to the rules layer for checking ``units``.

        With no profile and no ``DEVIATION(...)`` comments in ``units``
        this returns a bare report (no :class:`RuleView`), keeping the
        default path identical to the pre-rules behavior.  Otherwise the
        report routes findings through the view, and — unless
        ``flag_deviations`` is off, as in project-level reports whose
        per-unit reports already did it — malformed deviations owned by
        this checker are emitted as findings up front.
        """
        deviations: Optional[DeviationIndex] = None
        for unit in units:
            index = _unit_deviations(unit)
            if index:
                if deviations is None:
                    deviations = DeviationIndex()
                deviations.extend(index)
        report = CheckerReport(checker=self.name)
        if self.profile is None and deviations is None:
            return report
        report.rules = RuleView(self.name, self.profile, deviations)
        if deviations is not None and flag_deviations:
            self._flag_malformed_deviations(deviations, report)
        return report

    def _flag_malformed_deviations(self, deviations: DeviationIndex,
                                   report: CheckerReport) -> None:
        """Report this checker's unjustified or unknown-rule deviations."""
        for deviation in deviations:
            owner = REGISTRY.checker_of(deviation.rule)
            if owner == self.name and not deviation.rationale:
                rule = REGISTRY.get(MISSING_RATIONALE)
                report.emit(Finding(
                    rule=MISSING_RATIONALE,
                    message=(f"deviation from {deviation.rule} states "
                             f"no rationale"),
                    filename=deviation.filename,
                    line=deviation.line,
                    severity=rule.severity,
                ))
            elif not owner and self.audits_unknown_deviations:
                rule = REGISTRY.get(UNKNOWN_RULE)
                report.emit(Finding(
                    rule=UNKNOWN_RULE,
                    message=(f"deviation names unregistered rule "
                             f"{deviation.rule!r}"),
                    filename=deviation.filename,
                    line=deviation.line,
                    severity=rule.severity,
                ))

    def fingerprint(self) -> str:
        """Key material for the per-unit result cache.

        Covers everything that can change this checker's per-unit
        output: the implementation identity, the :attr:`version` tag,
        a ``config`` dataclass's deterministic ``repr`` when present,
        and — when a rule profile is active — how the profile alters
        this checker's rule resolution.  A profile that leaves this
        checker's rules (and the deviation process rules) at their
        defaults contributes nothing, so unaffected cache entries
        survive profile changes targeting other checkers.
        """
        config = getattr(self, "config", None)
        suffix = f"/{config!r}" if config is not None else ""
        if self.profile is not None:
            tag = self.profile.fingerprint_for(
                list(REGISTRY.rules_for(self.name)) + list(DEVIATION_RULES))
            if tag:
                suffix += f"@rules:{tag}"
        return (f"{type(self).__module__}.{type(self).__qualname__}"
                f":{self.version}{suffix}")

    def for_units(self, units: Iterable[TranslationUnit]) -> "Checker":
        """A checker equivalent to ``self`` for checking exactly ``units``.

        Stateless checkers (the default) return ``self``.  Checkers
        holding per-file state (:class:`~repro.checkers.style.
        StyleChecker`'s registered sources) override this to prune that
        state, so process-pool tasks ship only their own chunk's data.
        """
        return self

    def check_project(self,
                      units: Iterable[TranslationUnit]) -> CheckerReport:
        """Analyze a set of translation units.

        The default implementation merges per-unit reports and then calls
        :meth:`finalize` so ratio statistics can be recomputed from the
        summed counters.
        """
        report = CheckerReport(checker=self.name)
        for unit in units:
            report.merge(self.check_unit(unit))
        self.finalize(report)
        return report

    def finalize(self, report: CheckerReport) -> None:
        """Recompute derived statistics after merging; default no-op."""

    @staticmethod
    def ratio(numerator: float, denominator: float) -> float:
        """A safe ratio: 0.0 when the denominator is zero."""
        if denominator == 0:
            return 0.0
        return numerator / denominator


def require_unique_checker(checker: Checker,
                           reports: Dict[str, CheckerReport]) -> None:
    """Reject a checker whose name already has a report.

    Two checkers sharing a ``name`` would silently shadow each other's
    report (and the evidence derived from it), so every checker-running
    loop calls this before filing a report.
    """
    if checker.name in reports:
        raise ValueError(
            f"duplicate checker name {checker.name!r}: its report "
            f"would silently overwrite an earlier checker's")


def run_checkers(checkers: Iterable[Checker],
                 units: Iterable[TranslationUnit],
                 tracer=None,
                 strict: bool = False,
                 log=None,
                 ) -> Dict[str, CheckerReport]:
    """Run several checkers over the same units; returns name -> report.

    Duplicate checker names are a :class:`ValueError` (see
    :func:`require_unique_checker`).

    A checker that raises a non-:class:`~repro.errors.ReproError` is
    *contained*: the crash becomes a :class:`CheckerCrash` record plus a
    ``internal.checker_crash`` finding in that checker's report, and the
    remaining checkers still run.  ``strict=True`` restores the old
    abort-on-first-crash behavior (the original exception propagates).

    Args:
        tracer: optional :class:`~repro.obs.Tracer`; each checker gets a
            ``checker`` span with its finding count, and findings are
            counted under ``checker.findings{checker=...}``.
        strict: re-raise checker crashes instead of containing them.
        log: optional :class:`~repro.obs.EventLog`; contained crashes
            are logged as ``checker.crash`` events.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    log = log if log is not None else NULL_LOG
    units = list(units)
    reports: Dict[str, CheckerReport] = {}
    for checker in checkers:
        require_unique_checker(checker, reports)
        with tracer.span("checker", name=checker.name) as span:
            try:
                report = checker.check_project(units)
            except ReproError:
                raise
            except Exception as error:
                if strict:
                    raise
                log.error("checker.crash", checker=checker.name,
                          stage="check_project",
                          error=f"{type(error).__name__}: {error}")
                report = crash_report(checker.name, make_crash(
                    checker.name, "check_project", error))
                tracer.metrics.counter("pipeline.checker_crashes").inc()
                span.set("crashed", 1)
            span.set("findings", report.finding_count)
        tracer.metrics.counter("checker.findings",
                               checker=checker.name).inc(
            report.finding_count)
        reports[checker.name] = report
    return reports


def enclosing_function_name(unit: TranslationUnit, line: int) -> str:
    """Qualified name of the innermost function containing ``line``.

    Backed by the memoized per-line index
    (:func:`repro.engine.index.function_line_index`): the first call on
    a unit flattens its function intervals, every further call is a
    list access — the legacy per-call function scan made this O(units ×
    findings × functions) across a run.
    """
    return function_line_index(unit).lookup(line)
