"""Checker framework: findings, reports, and the checker base class.

Each checker inspects the fuzzy model (:class:`~repro.lang.cppmodel.
TranslationUnit`) of one or more source files and produces a
:class:`CheckerReport` — a list of located :class:`Finding` objects plus a
dictionary of aggregate statistics.  The statistics are the *evidence* the
ISO 26262 compliance engine consumes (see
:mod:`repro.iso26262.compliance`); the findings are what a developer would
fix.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..lang.cppmodel import TranslationUnit
from ..obs import NULL_TRACER


class Severity(enum.IntEnum):
    """How strongly a finding blocks ISO 26262 compliance."""

    INFO = 0
    MINOR = 1
    MAJOR = 2
    CRITICAL = 3


@dataclass(frozen=True)
class Finding:
    """One located rule violation or noteworthy fact.

    Attributes:
        rule: stable rule identifier, e.g. ``"M15.1"`` or ``"UD.exits"``.
        message: human-readable description.
        filename: source file of the finding.
        line: 1-based line number (0 for file-level findings).
        severity: blocking strength.
        function: qualified name of the enclosing function, when known.
    """

    rule: str
    message: str
    filename: str
    line: int = 0
    severity: Severity = Severity.MINOR
    function: str = ""

    def located(self) -> str:
        """``file:line rule message`` string for reports."""
        location = f"{self.filename}:{self.line}" if self.line else self.filename
        return f"{location}: [{self.rule}] {self.message}"


@dataclass
class CheckerReport:
    """The outcome of running one checker over one or more units."""

    checker: str
    findings: List[Finding] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def finding_count(self) -> int:
        return len(self.findings)

    def count_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def merge(self, other: "CheckerReport") -> None:
        """Fold another report of the same checker into this one.

        Statistics are summed; derived ratios must be recomputed by the
        owning checker afterwards.
        """
        if other.checker != self.checker:
            raise ValueError(
                f"cannot merge report of {other.checker!r} into "
                f"{self.checker!r}")
        self.findings.extend(other.findings)
        for key, value in other.stats.items():
            self.stats[key] = self.stats.get(key, 0) + value


class Checker(abc.ABC):
    """Base class for all static checkers.

    Subclasses implement :meth:`check_unit`; project-level checkers that
    need cross-file information (call graphs, include graphs) additionally
    override :meth:`check_project`.
    """

    #: Stable checker name, used as the report key.
    name: str = "checker"

    #: Cache-invalidation tag: bump whenever the checker's output for an
    #: unchanged unit can change (new rules, changed heuristics).
    version: str = "1"

    @abc.abstractmethod
    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        """Analyze one translation unit."""

    def fingerprint(self) -> str:
        """Key material for the per-unit result cache.

        Covers everything that can change this checker's per-unit
        output: the implementation identity, the :attr:`version` tag,
        and — when the checker carries a ``config`` dataclass — its
        deterministic ``repr``.
        """
        config = getattr(self, "config", None)
        suffix = f"/{config!r}" if config is not None else ""
        return (f"{type(self).__module__}.{type(self).__qualname__}"
                f":{self.version}{suffix}")

    def for_units(self, units: Iterable[TranslationUnit]) -> "Checker":
        """A checker equivalent to ``self`` for checking exactly ``units``.

        Stateless checkers (the default) return ``self``.  Checkers
        holding per-file state (:class:`~repro.checkers.style.
        StyleChecker`'s registered sources) override this to prune that
        state, so process-pool tasks ship only their own chunk's data.
        """
        return self

    def check_project(self,
                      units: Iterable[TranslationUnit]) -> CheckerReport:
        """Analyze a set of translation units.

        The default implementation merges per-unit reports and then calls
        :meth:`finalize` so ratio statistics can be recomputed from the
        summed counters.
        """
        report = CheckerReport(checker=self.name)
        for unit in units:
            report.merge(self.check_unit(unit))
        self.finalize(report)
        return report

    def finalize(self, report: CheckerReport) -> None:
        """Recompute derived statistics after merging; default no-op."""

    @staticmethod
    def ratio(numerator: float, denominator: float) -> float:
        """A safe ratio: 0.0 when the denominator is zero."""
        if denominator == 0:
            return 0.0
        return numerator / denominator


def run_checkers(checkers: Iterable[Checker],
                 units: Iterable[TranslationUnit],
                 tracer=None,
                 ) -> Dict[str, CheckerReport]:
    """Run several checkers over the same units; returns name -> report.

    Two checkers sharing a ``name`` would silently shadow each other's
    report (and the evidence derived from it), so duplicates are a
    :class:`ValueError`.

    Args:
        tracer: optional :class:`~repro.obs.Tracer`; each checker gets a
            ``checker`` span with its finding count, and findings are
            counted under ``checker.findings{checker=...}``.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    units = list(units)
    reports: Dict[str, CheckerReport] = {}
    for checker in checkers:
        if checker.name in reports:
            raise ValueError(
                f"duplicate checker name {checker.name!r}: its report "
                f"would silently overwrite an earlier checker's")
        with tracer.span("checker", name=checker.name) as span:
            report = checker.check_project(units)
            span.set("findings", report.finding_count)
        tracer.metrics.counter("checker.findings",
                               checker=checker.name).inc(
            report.finding_count)
        reports[checker.name] = report
    return reports


def enclosing_function_name(unit: TranslationUnit, line: int) -> str:
    """Qualified name of the function containing ``line``, or ``""``."""
    best: Optional[str] = None
    best_span = 0
    for function in unit.functions:
        if function.start_line <= line <= function.end_line:
            span = function.end_line - function.start_line
            if best is None or span < best_span:
                best = function.qualified_name
                best_span = span
    return best or ""
