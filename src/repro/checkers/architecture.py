"""Architectural-design checks — paper Table 2 (ISO 26262-6 Table 3).

Section 3.4: hierarchy of components, restricted component/interface size,
cohesion, coupling, scheduling properties, and restricted interrupt use.
The paper notes "Main modules of Apollo have from 5k to 60k lines of code"
and concludes (Observation 13) that AD frameworks do not comply with the
size/interface restrictions, though compliance is reachable with
non-negligible effort.

This checker is project-level: modules are derived from file paths (first
path component by default), and the cohesion/coupling metrics need the
whole include and call graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Set

from ..lang.cppmodel import TranslationUnit
from ..rules import REGISTRY, Rule
from .base import Checker, CheckerReport, Finding, Severity

RULES = REGISTRY.register_many("architecture", (
    Rule("AR2.component_size", "Components shall respect the size limit",
         Severity.MAJOR, table="architectural_design",
         topic="restricted_component_size"),
    Rule("AR3.interface_size", "Interfaces shall respect the method limit",
         Severity.MINOR, table="architectural_design",
         topic="restricted_interface_size"),
    Rule("AR4.cohesion", "Modules shall be cohesive",
         Severity.MINOR, table="architectural_design",
         topic="high_cohesion"),
    Rule("AR5.coupling", "Module fan-out shall respect the limit",
         Severity.MAJOR, table="architectural_design",
         topic="restricted_coupling"),
    Rule("AR6.scheduling", "Scheduling properties shall be static",
         Severity.MINOR, table="architectural_design",
         topic="scheduling_properties"),
    Rule("AR7.interrupt", "Interrupt use shall be restricted",
         Severity.MINOR, table="architectural_design",
         topic="restricted_interrupts"),
))

#: Thread-creation and asynchronous-execution identifiers (Table 3 item 6).
SCHEDULING_CALLS = frozenset({
    "pthread_create", "thread", "async", "CreateThread", "std::thread",
    "detach", "Spin", "spin", "Timer", "CreateTimer", "usleep", "sleep_for",
})

#: Interrupt/signal-handling identifiers (Table 3 item 7).
INTERRUPT_CALLS = frozenset({
    "signal", "sigaction", "raise", "kill", "irq_request", "attachInterrupt",
})


@dataclass(frozen=True)
class ArchitectureConfig:
    """Thresholds for the size/coupling checks.

    Defaults reflect common ASIL-D review practice: components of at most
    10k LOC, interfaces of at most 20 public methods, and at most 15
    cross-module include dependencies per module.
    """

    max_component_loc: int = 10_000
    max_interface_methods: int = 20
    max_module_fanout: int = 15
    min_cohesion: float = 0.5


def module_from_path(filename: str) -> str:
    """Default module mapper: first path component (``perception/x.cc``)."""
    normalized = filename.replace("\\", "/").lstrip("./")
    if "/" in normalized:
        return normalized.split("/", 1)[0]
    return "<root>"


class ArchitectureChecker(Checker):
    """Implements the seven Table 3 architectural-design checks."""

    name = "architecture"

    def __init__(self, config: ArchitectureConfig = ArchitectureConfig(),
                 module_of: Callable[[str], str] = module_from_path) -> None:
        self.config = config
        self.module_of = module_of

    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        """Per-unit behaviour: only the interface-size check applies."""
        report = self.new_report((unit,))
        self._check_interfaces([unit], report)
        report.stats.setdefault("oversized_interfaces", 0)
        return report

    def check_project(self,
                      units: Iterable[TranslationUnit]) -> CheckerReport:
        units = list(units)
        report = self.new_report(units)
        modules = self._group_by_module(units)

        hierarchy_depth = self._hierarchy_depth(units)
        oversized = self._check_component_sizes(modules, report)
        interface_violations = self._check_interfaces(units, report)
        cohesion = self._cohesion(modules)
        fanout = self._coupling(modules, report)
        scheduling_sites = self._count_calls(units, SCHEDULING_CALLS,
                                             "AR6.scheduling", report,
                                             "dynamic thread/timer creation")
        interrupt_sites = self._count_calls(units, INTERRUPT_CALLS,
                                            "AR7.interrupt", report,
                                            "signal/interrupt handling")

        low_cohesion = [name for name, value in cohesion.items()
                        if value < self.config.min_cohesion]
        flagged_cohesion = 0
        for name in sorted(low_cohesion):
            if report.emit(Finding(
                    rule="AR4.cohesion",
                    message=(f"module {name!r} cohesion "
                             f"{cohesion[name]:.2f} below "
                             f"{self.config.min_cohesion:.2f}"),
                    filename=name,
                    severity=Severity.MINOR,
            )):
                flagged_cohesion += 1

        report.stats.update({
            "modules": len(modules),
            "hierarchy_depth": hierarchy_depth,
            "oversized_components": oversized,
            "oversized_interfaces": interface_violations,
            "mean_cohesion": (sum(cohesion.values()) / len(cohesion)
                              if cohesion else 1.0),
            "low_cohesion_modules": flagged_cohesion,
            "max_module_fanout": max(fanout.values(), default=0),
            "coupled_module_pairs": sum(fanout.values()),
            "scheduling_sites": scheduling_sites,
            "interrupt_sites": interrupt_sites,
        })
        return report

    # ------------------------------------------------------------------

    def _group_by_module(self, units: List[TranslationUnit]
                         ) -> Dict[str, List[TranslationUnit]]:
        modules: Dict[str, List[TranslationUnit]] = {}
        for unit in units:
            modules.setdefault(self.module_of(unit.filename), []).append(unit)
        return modules

    @staticmethod
    def _hierarchy_depth(units: List[TranslationUnit]) -> int:
        depth = 0
        for unit in units:
            normalized = unit.filename.replace("\\", "/")
            depth = max(depth, normalized.count("/"))
        return depth

    def _check_component_sizes(self,
                               modules: Dict[str, List[TranslationUnit]],
                               report: CheckerReport) -> int:
        oversized = 0
        for name, members in sorted(modules.items()):
            loc = sum(unit.line_count for unit in members)
            if loc > self.config.max_component_loc:
                if report.emit(Finding(
                        rule="AR2.component_size",
                        message=(f"module {name!r} has {loc} LOC "
                                 f"(limit {self.config.max_component_loc})"),
                        filename=name,
                        severity=Severity.MAJOR,
                )):
                    oversized += 1
        return oversized

    def _check_interfaces(self, units: List[TranslationUnit],
                          report: CheckerReport) -> int:
        violations = 0
        for unit in units:
            for class_info in unit.classes:
                if class_info.interface_size > self.config.max_interface_methods:
                    if report.emit(Finding(
                            rule="AR3.interface_size",
                            message=(f"class {class_info.qualified_name!r} "
                                     f"exposes {class_info.interface_size} "
                                     f"public methods (limit "
                                     f"{self.config.max_interface_methods})"),
                            filename=unit.filename,
                            line=class_info.start_line,
                            severity=Severity.MINOR,
                    )):
                        violations += 1
        return violations

    def _cohesion(self, modules: Dict[str, List[TranslationUnit]]
                  ) -> Dict[str, float]:
        """Fraction of resolvable calls staying inside the module.

        A proxy for "high cohesion": a module whose functions mostly call
        each other is self-contained; one whose calls mostly resolve into
        other modules is doing another module's work.
        """
        owner: Dict[str, str] = {}
        for name, members in modules.items():
            for unit in members:
                for function in unit.functions:
                    owner.setdefault(function.name, name)
        cohesion: Dict[str, float] = {}
        for name, members in modules.items():
            internal = 0
            resolvable = 0
            for unit in members:
                for function in unit.functions:
                    for call in function.calls:
                        target = owner.get(call)
                        if target is None:
                            continue
                        resolvable += 1
                        if target == name:
                            internal += 1
            cohesion[name] = internal / resolvable if resolvable else 1.0
        return cohesion

    def _coupling(self, modules: Dict[str, List[TranslationUnit]],
                  report: CheckerReport) -> Dict[str, int]:
        """Cross-module include fan-out per module (Table 3 item 5)."""
        fanout: Dict[str, int] = {}
        for name, members in sorted(modules.items()):
            targets: Set[str] = set()
            for unit in members:
                for include in unit.preprocessor.local_includes:
                    target_module = self.module_of(include.target)
                    if target_module not in ("<root>", name):
                        targets.add(target_module)
            fanout[name] = len(targets)
            if len(targets) > self.config.max_module_fanout:
                report.emit(Finding(
                    rule="AR5.coupling",
                    message=(f"module {name!r} depends on {len(targets)} "
                             f"other modules "
                             f"(limit {self.config.max_module_fanout})"),
                    filename=name,
                    severity=Severity.MAJOR,
                ))
        return fanout

    @staticmethod
    def _count_calls(units: List[TranslationUnit], names: frozenset,
                     rule: str, report: CheckerReport,
                     description: str) -> int:
        sites = 0
        for unit in units:
            for function in unit.functions:
                hits = [call for call in function.calls if call in names]
                if hits:
                    if report.emit(Finding(
                            rule=rule,
                            message=(f"{function.name!r} performs "
                                     f"{description} "
                                     f"({sorted(set(hits))})"),
                            filename=unit.filename,
                            line=function.start_line,
                            severity=Severity.MINOR,
                            function=function.qualified_name,
                    )):
                        sites += len(hits)
        return sites
