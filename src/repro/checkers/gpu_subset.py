"""A certification-friendly GPU language subset checker (Brook Auto-style).

The paper's Observation 3 is that *no* language subset exists for GPU
code, and its proposed remediation is Brook Auto [Trompouki & Kosmidis,
DAC 2018]: a stream-language subset that hides pointers and memory
management from the programmer.  This module implements the reproduction's
version of that research direction — a concrete, checkable "GPU-safe
subset" for CUDA kernels, with two front ends:

* :meth:`GpuSubsetChecker.check_program` — precise rules on the strict
  MiniC AST of a kernel module (the kernels the GPU emulator runs);
* :meth:`GpuSubsetChecker.check_unit` — fuzzy rules on arbitrary ``.cu``
  translation units (the corpus).

Subset rules (ids ``GS1``-``GS7``):

GS1  kernels take only buffer (pointer) and scalar parameters;
GS2  no pointer arithmetic — buffers may only be subscripted;
GS3  every kernel guards its thread index against a size parameter
     before any buffer write (the range-guard idiom);
GS4  no dynamic memory anywhere in device code;
GS5  no recursion among device functions;
GS6  loops inside kernels are bounded by a parameter or constant
     (no ``while (true)``-style unbounded iteration);
GS7  a kernel has a single entry and its exits are guard-returns only.

The checker also reports the *migration cost*: how many constructs a
Brook-Auto-style rewrite would have to lift into stream operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..lang import cppmodel
from ..lang.minic import ast
from ..rules import REGISTRY, Rule
from .base import Checker, CheckerReport, Finding, Severity

RULES = REGISTRY.register_many("gpu_subset", (
    Rule("GS1", "Kernels take only buffer and scalar parameters",
         Severity.MINOR, table="modeling_coding", topic="language_subsets"),
    Rule("GS2", "No pointer arithmetic on kernel buffers",
         Severity.MAJOR, table="modeling_coding", topic="language_subsets"),
    Rule("GS3", "Kernels guard the thread index before buffer writes",
         Severity.CRITICAL, table="modeling_coding",
         topic="language_subsets"),
    Rule("GS4", "No dynamic memory in device code",
         Severity.CRITICAL, table="modeling_coding",
         topic="language_subsets"),
    Rule("GS5", "No recursion among device functions",
         Severity.CRITICAL, table="modeling_coding",
         topic="language_subsets"),
    Rule("GS6", "Kernel loops are parameter- or constant-bounded",
         Severity.MAJOR, table="modeling_coding", topic="language_subsets"),
    Rule("GS7", "Kernels have a single entry and guard-return exits",
         Severity.MAJOR, table="modeling_coding", topic="language_subsets"),
))


@dataclass
class KernelAudit:
    """Subset-compliance record for one kernel."""

    name: str
    findings: List[Finding] = field(default_factory=list)
    pointer_parameters: int = 0
    guarded: bool = False

    @property
    def compliant(self) -> bool:
        return not self.findings


class GpuSubsetChecker(Checker):
    """Checks CUDA kernels against the GPU-safe subset."""

    name = "gpu_subset"

    # ------------------------------------------------------------------
    # strict front end (MiniC kernel modules)

    def check_program(self, program: ast.Program,
                      filename: str = "<kernels>") -> CheckerReport:
        """Audit every ``__global__`` kernel of a MiniC program."""
        report = self.new_report(())
        audits: List[KernelAudit] = []
        device_names = {function.name for function in program.functions
                        if function.is_kernel or function.is_device}
        for function in program.functions:
            if not function.is_kernel:
                continue
            audit = self._audit_kernel(program, function, filename,
                                       device_names)
            audits.append(audit)
            for finding in audit.findings:
                report.emit(finding)
        report.stats.update({
            "kernels_checked": len(audits),
            "subset_compliant_kernels": sum(1 for audit in audits
                                            if audit.compliant),
            "stream_rewrites_needed": sum(audit.pointer_parameters
                                          for audit in audits),
            "guarded_kernels": sum(1 for audit in audits if audit.guarded),
        })
        return report

    def _audit_kernel(self, program: ast.Program, function: ast.Function,
                      filename: str,
                      device_names: Set[str]) -> KernelAudit:
        audit = KernelAudit(name=function.name)
        pointer_names = set()
        scalar_names = set()
        for parameter in function.parameters:
            if parameter.is_pointer:
                audit.pointer_parameters += 1
                pointer_names.add(parameter.name)
            else:
                scalar_names.add(parameter.name)
        statements = ast.iter_statements(function.body)

        # GS2: pointer arithmetic on buffer parameters.
        for statement in statements:
            for expression in self._expressions_of(statement):
                self._find_pointer_arithmetic(
                    expression, pointer_names, function, filename, audit)

        # GS3: a range guard comparing an index against a scalar
        # parameter must dominate buffer writes.  Approximation faithful
        # to the idiom: the kernel contains at least one If whose
        # condition mentions a scalar parameter, and writes occur only
        # beneath an If (never at kernel top level before any guard).
        audit.guarded = self._has_range_guard(function, scalar_names)
        if pointer_names and not audit.guarded:
            audit.findings.append(Finding(
                rule="GS3",
                message=(f"kernel {function.name!r} writes buffers "
                         f"without a thread-index range guard"),
                filename=filename,
                line=function.line,
                severity=Severity.CRITICAL,
                function=function.name,
            ))

        # GS5: recursion among device code.
        if self._calls_recursively(program, function, device_names):
            audit.findings.append(Finding(
                rule="GS5",
                message=f"kernel {function.name!r} participates in "
                        f"device-code recursion",
                filename=filename,
                line=function.line,
                severity=Severity.CRITICAL,
                function=function.name,
            ))

        # GS6: unbounded loops.
        for statement in statements:
            line = self._unbounded_loop_line(statement, scalar_names)
            if line is not None:
                audit.findings.append(Finding(
                    rule="GS6",
                    message=(f"loop in kernel {function.name!r} has no "
                             f"parameter- or constant-bounded condition"),
                    filename=filename,
                    line=line,
                    severity=Severity.MAJOR,
                    function=function.name,
                ))

        # GS7: exits are guard-returns only (a return carrying a value
        # inside a kernel is ill-formed CUDA anyway; flag non-guard
        # mid-body returns).
        returns = [statement for statement in statements
                   if isinstance(statement, ast.Return)]
        for statement in returns:
            if statement.value is not None:
                audit.findings.append(Finding(
                    rule="GS7",
                    message=f"kernel {function.name!r} returns a value",
                    filename=filename,
                    line=statement.line,
                    severity=Severity.MAJOR,
                    function=function.name,
                ))
        return audit

    @staticmethod
    def _expressions_of(statement):
        if isinstance(statement, ast.Declaration):
            yield statement.initializer
            yield statement.array_size
        elif isinstance(statement, ast.ExpressionStatement):
            yield statement.expression
        elif isinstance(statement, ast.If):
            yield statement.condition.expression
        elif isinstance(statement, (ast.While, ast.DoWhile)):
            yield statement.condition.expression
        elif isinstance(statement, ast.For):
            if statement.condition is not None:
                yield statement.condition.expression
            yield statement.increment
        elif isinstance(statement, ast.Return):
            yield statement.value
        elif isinstance(statement, ast.Switch):
            yield statement.subject

    def _find_pointer_arithmetic(self, node, pointer_names, function,
                                 filename, audit) -> None:
        if node is None:
            return
        if isinstance(node, ast.Binary):
            if node.operator in ("+", "-"):
                for side in (node.left, node.right):
                    if isinstance(side, ast.Identifier) \
                            and side.name in pointer_names:
                        audit.findings.append(Finding(
                            rule="GS2",
                            message=(f"pointer arithmetic on buffer "
                                     f"{side.name!r} in kernel "
                                     f"{function.name!r}"),
                            filename=filename,
                            line=node.line,
                            severity=Severity.MAJOR,
                            function=function.name,
                        ))
            self._find_pointer_arithmetic(node.left, pointer_names,
                                          function, filename, audit)
            self._find_pointer_arithmetic(node.right, pointer_names,
                                          function, filename, audit)
        elif isinstance(node, (ast.Logical,)):
            self._find_pointer_arithmetic(node.left, pointer_names,
                                          function, filename, audit)
            self._find_pointer_arithmetic(node.right, pointer_names,
                                          function, filename, audit)
        elif isinstance(node, ast.Unary):
            self._find_pointer_arithmetic(node.operand, pointer_names,
                                          function, filename, audit)
        elif isinstance(node, ast.Assignment):
            self._find_pointer_arithmetic(node.value, pointer_names,
                                          function, filename, audit)
            if isinstance(node.target, ast.Index):
                self._find_pointer_arithmetic(node.target.base,
                                              pointer_names, function,
                                              filename, audit)
                self._find_pointer_arithmetic(node.target.offset,
                                              pointer_names, function,
                                              filename, audit)
        elif isinstance(node, ast.Call):
            for argument in node.arguments:
                self._find_pointer_arithmetic(argument, pointer_names,
                                              function, filename, audit)
        elif isinstance(node, ast.Index):
            # Subscripting a buffer is the allowed access form, but the
            # base may itself hide arithmetic (``(p + k)[0]``).
            self._find_pointer_arithmetic(node.base, pointer_names,
                                          function, filename, audit)
            self._find_pointer_arithmetic(node.offset, pointer_names,
                                          function, filename, audit)
        elif isinstance(node, ast.Conditional):
            self._find_pointer_arithmetic(node.condition.expression,
                                          pointer_names, function,
                                          filename, audit)
            self._find_pointer_arithmetic(node.then_value, pointer_names,
                                          function, filename, audit)
            self._find_pointer_arithmetic(node.else_value, pointer_names,
                                          function, filename, audit)
        elif isinstance(node, ast.Cast):
            self._find_pointer_arithmetic(node.operand, pointer_names,
                                          function, filename, audit)

    @staticmethod
    def _mentions_any(node, names: Set[str]) -> bool:
        found = False

        def walk(current):
            nonlocal found
            if current is None or found:
                return
            if isinstance(current, ast.Identifier):
                if current.name in names:
                    found = True
                return
            for attribute in ("left", "right", "operand", "value",
                              "then_value", "else_value", "base",
                              "offset"):
                child = getattr(current, attribute, None)
                if isinstance(child, ast.Expression):
                    walk(child)
            if isinstance(current, ast.Call):
                for argument in current.arguments:
                    walk(argument)
            if isinstance(current, ast.Conditional):
                walk(current.condition.expression)

        walk(node)
        return found

    def _has_range_guard(self, function: ast.Function,
                         scalar_names: Set[str]) -> bool:
        for statement in ast.iter_statements(function.body):
            if isinstance(statement, ast.If) and self._mentions_any(
                    statement.condition.expression, scalar_names):
                return True
        return False

    @staticmethod
    def _calls_recursively(program: ast.Program, kernel: ast.Function,
                           device_names: Set[str]) -> bool:
        # Collect call names reachable from the kernel within device code.
        graph: Dict[str, Set[str]] = {}
        for function in program.functions:
            if function.name not in device_names:
                continue
            calls: Set[str] = set()

            def collect(node):
                if isinstance(node, ast.Call):
                    calls.add(node.name)
                    for argument in node.arguments:
                        collect(argument)
                    return
                for attribute in ("left", "right", "operand", "value",
                                  "then_value", "else_value", "base",
                                  "offset"):
                    child = getattr(node, attribute, None)
                    if isinstance(child, ast.Expression):
                        collect(child)

            for statement in ast.iter_statements(function.body):
                for expression in GpuSubsetChecker._expressions_of(
                        statement):
                    if expression is not None:
                        collect(expression)
            graph[function.name] = calls & device_names

        def transitive(start: str) -> Set[str]:
            seen: Set[str] = set()
            stack = list(graph.get(start, ()))
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(graph.get(current, ()))
            return seen

        # Recursion anywhere in device code reachable from the kernel
        # (including the kernel itself) violates the subset.
        reachable = transitive(kernel.name) | {kernel.name}
        for node in reachable:
            if node in transitive(node):
                return True
        return False

    @staticmethod
    def _unbounded_loop_line(statement, scalar_names: Set[str]):
        if isinstance(statement, (ast.While, ast.DoWhile)):
            condition = statement.condition.expression
            if isinstance(condition, ast.IntLiteral) and condition.value:
                return statement.line
        if isinstance(statement, ast.For) and statement.condition is None:
            return statement.line
        return None

    # ------------------------------------------------------------------
    # fuzzy front end (.cu translation units)

    def check_unit(self, unit: cppmodel.TranslationUnit) -> CheckerReport:
        """Fuzzy audit of a ``.cu`` unit: GS4/GS5 plus migration stats."""
        report = self.new_report((unit,))
        self._check_into(unit, report)
        return report

    def unit_visitor(self, unit: cppmodel.TranslationUnit,
                     report: CheckerReport, sweep) -> bool:
        """The fuzzy audit reads kernel metadata from the parsed model,
        so it runs whole from the end hook."""
        sweep.at_end(lambda: self._check_into(unit, report))
        return True

    def _check_into(self, unit: cppmodel.TranslationUnit,
                    report: CheckerReport) -> None:
        kernels = [function for function in unit.functions
                   if function.is_cuda_kernel]
        compliant = 0
        rewrites = 0
        for function in kernels:
            clean = True
            rewrites += sum(1 for parameter in function.parameters
                            if parameter.is_pointer)
            if function.uses_dynamic_memory:
                if report.emit(Finding(
                        rule="GS4",
                        message=(f"kernel {function.name!r} uses dynamic "
                                 f"memory"),
                        filename=unit.filename,
                        line=function.start_line,
                        severity=Severity.CRITICAL,
                        function=function.qualified_name,
                )):
                    clean = False
            if function.name in function.calls:
                if report.emit(Finding(
                        rule="GS5",
                        message=f"kernel {function.name!r} is recursive",
                        filename=unit.filename,
                        line=function.start_line,
                        severity=Severity.CRITICAL,
                        function=function.qualified_name,
                )):
                    clean = False
            if clean:
                compliant += 1
        report.stats.update({
            "kernels_checked": len(kernels),
            "subset_compliant_kernels": compliant,
            "stream_rewrites_needed": rewrites,
        })
