"""Naming-convention conformance — Table 1 item 8, Observation 9.

The paper reports that Apollo follows the Google C++ naming rules: "the
names of all types, classes, structs, type aliases, enums, and type
template parameters should have the same naming convention".  This checker
implements the verifiable core of those rules:

* type names are ``CamelCase`` (initial capital, no underscores);
* constants (``const``/``constexpr`` globals) are ``kCamelCase``;
* mutable globals carry a ``g_`` or ``FLAGS_`` prefix;
* function names are either ``CamelCase`` or ``snake_case``, and one file
  does not mix the two styles (CUDA kernels, written darknet-style, are
  exempted from the mixing rule because they interface with C code).
"""

from __future__ import annotations

import re

from ..lang.cppmodel import TranslationUnit
from ..rules import REGISTRY, Rule
from .base import Checker, CheckerReport, Finding, Severity

RULES = REGISTRY.register_many("naming", (
    Rule("NC.type_name", "Type names shall be CamelCase",
         Severity.MINOR, table="modeling_coding",
         topic="naming_conventions"),
    Rule("NC.constant_name", "Constants shall be kCamelCase or UPPER_CASE",
         Severity.INFO, table="modeling_coding",
         topic="naming_conventions"),
    Rule("NC.global_name", "Mutable globals shall carry a scope prefix",
         Severity.MINOR, table="modeling_coding",
         topic="naming_conventions"),
    Rule("NC.function_name", "Function names shall be CamelCase or "
         "snake_case",
         Severity.MINOR, table="modeling_coding",
         topic="naming_conventions"),
    Rule("NC.mixed_styles", "One file shall not mix function-name styles",
         Severity.INFO, table="modeling_coding",
         topic="naming_conventions"),
))

CAMEL_CASE = re.compile(r"^[A-Z][A-Za-z0-9]*$")
SNAKE_CASE = re.compile(r"^[a-z][a-z0-9_]*$")
CONSTANT_NAME = re.compile(r"^(k[A-Z][A-Za-z0-9]*|[A-Z][A-Z0-9_]*)$")
GLOBAL_PREFIXES = ("g_", "FLAGS_", "s_")

#: Method names exempt from style classification (special members and
#: common STL-compatible spellings).
_EXEMPT_FUNCTIONS = frozenset({"main", "begin", "end", "size", "empty",
                               "swap", "at", "get", "set", "clear"})


class NamingChecker(Checker):
    """Verifies Google-style naming of types, functions and globals."""

    name = "naming"

    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        report = self.new_report((unit,))
        self._check_into(unit, report)
        return report

    def unit_visitor(self, unit: TranslationUnit, report: CheckerReport,
                     sweep) -> bool:
        """Naming checks read only the parsed model (classes, globals,
        functions), so the whole battery runs from the end hook."""
        sweep.at_end(lambda: self._check_into(unit, report))
        return True

    def _check_into(self, unit: TranslationUnit,
                    report: CheckerReport) -> None:
        checked = 0
        violations = 0

        for class_info in unit.classes:
            if class_info.name == "<anonymous>":
                continue
            checked += 1
            if not CAMEL_CASE.match(class_info.name):
                if report.emit(Finding(
                        rule="NC.type_name",
                        message=(f"{class_info.kind} name "
                                 f"{class_info.name!r} is not CamelCase"),
                        filename=unit.filename,
                        line=class_info.start_line,
                        severity=Severity.MINOR,
                )):
                    violations += 1

        for variable in unit.globals:
            checked += 1
            if not variable.is_mutable_global:
                if not CONSTANT_NAME.match(variable.name):
                    if report.emit(Finding(
                            rule="NC.constant_name",
                            message=(f"constant {variable.name!r} should "
                                     f"be kCamelCase or UPPER_CASE"),
                            filename=unit.filename,
                            line=variable.line,
                            severity=Severity.INFO,
                    )):
                        violations += 1
            elif not variable.name.startswith(GLOBAL_PREFIXES):
                if report.emit(Finding(
                        rule="NC.global_name",
                        message=(f"mutable global {variable.name!r} lacks "
                                 f"a 'g_' or 'FLAGS_' prefix"),
                        filename=unit.filename,
                        line=variable.line,
                        severity=Severity.MINOR,
                )):
                    violations += 1

        violations += self._check_function_styles(unit, report)
        checked += sum(1 for function in unit.functions
                       if not function.name.startswith(("~", "operator")))

        report.stats.update({
            "checked_names": checked,
            "naming_violations": violations,
        })
        self.finalize(report)

    def finalize(self, report: CheckerReport) -> None:
        checked = report.stats.get("checked_names", 0)
        violations = report.stats.get("naming_violations", 0)
        report.stats["conformance_ratio"] = (
            1.0 if checked == 0 else max(0.0, 1.0 - violations / checked))

    # ------------------------------------------------------------------

    def _check_function_styles(self, unit: TranslationUnit,
                               report: CheckerReport) -> int:
        violations = 0
        cpu_styles = set()
        class_names = {class_info.name for class_info in unit.classes}
        for function in unit.functions:
            name = function.name
            if name.startswith(("~", "operator")) or name in class_names \
                    or name in _EXEMPT_FUNCTIONS:
                continue
            if CAMEL_CASE.match(name):
                style = "camel"
            elif SNAKE_CASE.match(name):
                style = "snake"
            else:
                if report.emit(Finding(
                        rule="NC.function_name",
                        message=(f"function name {name!r} matches neither "
                                 f"CamelCase nor snake_case"),
                        filename=unit.filename,
                        line=function.start_line,
                        severity=Severity.MINOR,
                        function=function.qualified_name,
                )):
                    violations += 1
                continue
            if not function.is_gpu_code:
                cpu_styles.add(style)
        if len(cpu_styles) > 1:
            if report.emit(Finding(
                    rule="NC.mixed_styles",
                    message="file mixes CamelCase and snake_case CPU "
                            "function names",
                    filename=unit.filename,
                    severity=Severity.INFO,
            )):
                violations += 1
        return violations
