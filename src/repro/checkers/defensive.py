"""Defensive-implementation evidence — Table 1 item 4, Observation 6.

Section 3.1.4: defensive code "must behave predictably despite unexpected
inputs", which requires that (a) functions validate their input parameters
before using them, and (b) callers handle the return values of the
functions they call.  Both properties are approximated statically:

* *parameter validation*: a function with pointer/reference/arithmetic
  parameters is considered defensive when its body's leading region
  mentions a parameter inside a validation construct (``if``, ``assert``,
  ``CHECK*``-style macro, or an early ``return``/``throw`` guard);
* *return-value handling*: a call whose result is discarded (a bare
  call-statement) to a function that is known, from the same analysis run,
  to return non-void, counts as an unchecked return.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..lang.cppmodel import FunctionInfo, TranslationUnit
from ..lang.tokens import Token, TokenKind
from ..rules import REGISTRY, Rule
from .base import Checker, CheckerReport, Finding, Severity

RULES = REGISTRY.register_many("defensive", (
    Rule("DF.unvalidated_params", "Functions shall validate their "
         "parameters before use",
         Severity.MAJOR, table="modeling_coding",
         topic="defensive_implementation"),
    Rule("DF.unchecked_return", "Return values shall not be discarded",
         Severity.MINOR, table="modeling_coding",
         topic="defensive_implementation"),
))

#: Macro/function names that perform validation in industrial C++.
VALIDATION_CALLS = frozenset({
    "assert", "CHECK", "CHECK_NOTNULL", "CHECK_GT", "CHECK_GE", "CHECK_LT",
    "CHECK_LE", "CHECK_EQ", "CHECK_NE", "DCHECK", "ACHECK", "CHECK_NULL",
    "ASSERT", "VALIDATE", "EXPECT", "REQUIRE",
})

#: How many leading statements of a body count as the "validation region".
GUARD_WINDOW_STATEMENTS = 6


class DefensiveChecker(Checker):
    """Measures parameter-validation and return-value-handling discipline."""

    name = "defensive"

    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        report = self.new_report((unit,))
        guardable = 0
        guarded = 0
        for function in unit.functions:
            riskful = [parameter for parameter in function.parameters
                       if parameter.name]
            if not riskful:
                continue
            guardable += 1
            if self._validates_parameters(unit, function):
                guarded += 1
            else:
                report.emit(Finding(
                    rule="DF.unvalidated_params",
                    message=(f"function {function.name!r} uses its "
                             f"{len(riskful)} parameter(s) without a "
                             f"leading validity check"),
                    filename=unit.filename,
                    line=function.start_line,
                    severity=Severity.MAJOR,
                    function=function.qualified_name,
                ))
        unchecked = self._unchecked_returns(unit, report)
        report.stats.update({
            "guardable_functions": guardable,
            "guarded_functions": guarded,
            "unchecked_return_calls": unchecked,
        })
        self.finalize(report)
        return report

    def finalize(self, report: CheckerReport) -> None:
        report.stats["validation_ratio"] = self.ratio(
            report.stats.get("guarded_functions", 0),
            report.stats.get("guardable_functions", 0))

    def unit_visitor(self, unit: TranslationUnit, report: CheckerReport,
                     sweep) -> bool:
        """Fused registration for the defensive checks.

        Parameter validation rides the shared per-function phase (the
        body slice is handed in, so ``body_tokens`` is not re-cut).
        Unchecked-return candidates are recognized on ``(`` events
        during the token sweep but buffered: the legacy path emits them
        only after every per-function finding, so they flush from the
        end hook.
        """
        code = unit.code
        counts = {"guardable": 0, "guarded": 0}
        unchecked_pending: List[Finding] = []
        returning: Set[str] = set()
        for function in unit.functions:
            if function.return_count > 0 and self._returns_value(unit,
                                                                 function):
                returning.add(function.name)

        if returning:
            def on_open_paren(index, token):
                if index < 2:
                    return
                name = code[index - 1]
                if name.kind is not TokenKind.IDENTIFIER \
                        or name.text not in returning:
                    return
                previous = code[index - 2]
                if previous.kind is TokenKind.PUNCT \
                        and previous.text in (";", "{", "}"):
                    unchecked_pending.append(Finding(
                        rule="DF.unchecked_return",
                        message=(f"return value of {name.text!r} is "
                                 f"discarded"),
                        filename=unit.filename,
                        line=name.line,
                        severity=Severity.MINOR,
                    ))
            sweep.on_text("(", on_open_paren)

        def on_function(function, body):
            riskful = [parameter for parameter in function.parameters
                       if parameter.name]
            if not riskful:
                return
            counts["guardable"] += 1
            if self._validates_parameters(unit, function, body):
                counts["guarded"] += 1
            else:
                report.emit(Finding(
                    rule="DF.unvalidated_params",
                    message=(f"function {function.name!r} uses its "
                             f"{len(riskful)} parameter(s) without a "
                             f"leading validity check"),
                    filename=unit.filename,
                    line=function.start_line,
                    severity=Severity.MAJOR,
                    function=function.qualified_name,
                ))
        sweep.on_function(on_function)

        def finish():
            unchecked = 0
            for finding in unchecked_pending:
                if report.emit(finding):
                    unchecked += 1
            report.stats.update({
                "guardable_functions": counts["guardable"],
                "guarded_functions": counts["guarded"],
                "unchecked_return_calls": unchecked,
            })
            self.finalize(report)
        sweep.at_end(finish)
        return True

    # ------------------------------------------------------------------

    def _validates_parameters(self, unit: TranslationUnit,
                              function: FunctionInfo,
                              body: Optional[List[Token]] = None) -> bool:
        """True when the body's leading region checks any parameter.

        ``body`` is the precomputed token slice when the fused sweep
        already cut it; omitted, it is sliced here.
        """
        parameter_names: Set[str] = {parameter.name
                                     for parameter in function.parameters
                                     if parameter.name}
        if not parameter_names:
            return True
        if body is None:
            body = unit.body_tokens(function)
        statements = self._leading_statements(body)
        for statement in statements:
            if self._is_validation_statement(statement, parameter_names):
                return True
        return False

    @staticmethod
    def _leading_statements(body: List[Token]) -> List[List[Token]]:
        """Split the leading region of a body into statements.

        Statements are token runs separated by ``;`` at nesting depth zero
        relative to the body braces; an ``if (...) { ... }`` guard counts
        as one statement including its condition.
        """
        statements: List[List[Token]] = []
        current: List[Token] = []
        depth = 0
        for token in body[1:-1]:  # strip outer braces
            current.append(token)
            if token.kind is TokenKind.PUNCT:
                if token.text in ("{", "(", "["):
                    depth += 1
                elif token.text in ("}", ")", "]"):
                    depth -= 1
                    if token.text == "}" and depth == 0:
                        statements.append(current)
                        current = []
                elif token.text == ";" and depth == 0:
                    statements.append(current)
                    current = []
            if len(statements) >= GUARD_WINDOW_STATEMENTS:
                break
        if current:
            statements.append(current)
        return statements[:GUARD_WINDOW_STATEMENTS]

    @staticmethod
    def _is_validation_statement(statement: List[Token],
                                 parameter_names: Set[str]) -> bool:
        mentions_parameter = any(
            token.kind is TokenKind.IDENTIFIER
            and token.text in parameter_names
            for token in statement)
        if not mentions_parameter:
            return False
        for token in statement:
            if token.is_keyword("if"):
                return True
            if (token.kind is TokenKind.IDENTIFIER
                    and (token.text in VALIDATION_CALLS
                         or token.text.startswith("CHECK"))):
                return True
        return False

    # ------------------------------------------------------------------

    def _unchecked_returns(self, unit: TranslationUnit,
                           report: CheckerReport) -> int:
        """Count bare call-statements to functions returning non-void.

        Only functions defined in the same unit are classified (we know
        their return type from the definition head); this mirrors what a
        file-local static analysis can prove.
        """
        returning: Set[str] = set()
        for function in unit.functions:
            if function.return_count > 0 and self._returns_value(unit,
                                                                 function):
                returning.add(function.name)
        if not returning:
            return 0
        count = 0
        code = unit.code
        for index in range(1, len(code) - 1):
            token = code[index]
            if token.kind is not TokenKind.IDENTIFIER \
                    or token.text not in returning:
                continue
            previous = code[index - 1]
            after = code[index + 1]
            starts_statement = previous.kind is TokenKind.PUNCT \
                and previous.text in (";", "{", "}")
            if starts_statement and after.is_punct("("):
                if report.emit(Finding(
                        rule="DF.unchecked_return",
                        message=(f"return value of {token.text!r} is "
                                 f"discarded"),
                        filename=unit.filename,
                        line=token.line,
                        severity=Severity.MINOR,
                )):
                    count += 1
        return count

    @staticmethod
    def _returns_value(unit: TranslationUnit,
                       function: FunctionInfo) -> bool:
        """True when any `return` in the body carries an expression."""
        body = unit.body_tokens(function)
        for index, token in enumerate(body):
            if token.is_keyword("return"):
                if index + 1 < len(body) and not body[index + 1].is_punct(";"):
                    return True
        return False


def project_validation_ratio(reports: Iterable[CheckerReport]) -> float:
    """Combined validation ratio over several per-module reports."""
    guarded = sum(report.stats.get("guarded_functions", 0)
                  for report in reports)
    guardable = sum(report.stats.get("guardable_functions", 0)
                    for report in reports)
    if guardable == 0:
        return 0.0
    return guarded / guardable
