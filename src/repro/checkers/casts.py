"""Strong-typing evidence: explicit casts and implicit-conversion risks.

Section 3.1.3 of the paper: "In Apollo, we have observed more than 1,400
explicit castings, which confronts the requirements of the ISO 26262
standard" (Observation 5).  This checker counts:

* C++ named casts (``static_cast`` etc.) — unambiguous on the token stream;
* C-style casts ``(type)expr`` — detected with the conservative heuristic
  every metric tool uses (parenthesized pure-type spelling followed by a
  castable operand);
* functional casts of builtin types, e.g. ``int(x)``;
* implicit narrowing risks: builtin integer declarations initialized with
  floating literals, and float declarations initialized from integer
  division (heuristic evidence for Table 8 item 7).
"""

from __future__ import annotations

from typing import List

from ..lang.cppmodel import TYPE_KEYWORDS, TranslationUnit
from ..lang.tokens import Token, TokenKind
from ..rules import REGISTRY, Rule
from .base import Checker, CheckerReport, Finding, Severity, \
    enclosing_function_name

RULES = REGISTRY.register_many("casts", (
    Rule("ST.named_cast", "C++ named cast (static_cast etc.)",
         Severity.MINOR, table="modeling_coding", topic="strong_typing"),
    Rule("ST.c_cast", "C-style casts shall not be used",
         Severity.MAJOR, table="modeling_coding", topic="strong_typing"),
    Rule("ST.functional_cast", "Functional cast of a builtin type",
         Severity.MINOR, table="modeling_coding", topic="strong_typing"),
    Rule("ST.narrowing_init", "No narrowing initialization from a "
         "floating literal",
         Severity.MAJOR, table="unit_design",
         topic="no_implicit_conversions"),
))

#: Identifiers commonly spelling types in automotive C++ (fixed-width ints
#: and common aliases); extends the builtin keywords for the C-style-cast
#: heuristic.
TYPE_LIKE_IDENTIFIERS = frozenset({
    "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
    "uint32_t", "uint64_t", "size_t", "ssize_t", "ptrdiff_t", "intptr_t",
    "uintptr_t", "uchar", "uint", "ulong", "byte", "wchar_t", "char16_t",
    "char32_t",
})

NAMED_CASTS = ("static_cast", "dynamic_cast", "const_cast",
               "reinterpret_cast")

#: Builtin integer types whose float-literal initialization narrows.
_INTEGER_TYPES = frozenset({"int", "long", "short", "char", "unsigned",
                            "signed"})


def _is_type_like(token: Token) -> bool:
    if token.kind is TokenKind.KEYWORD and token.text in TYPE_KEYWORDS:
        return True
    if token.kind is TokenKind.KEYWORD and token.text == "const":
        return True
    if token.kind is TokenKind.IDENTIFIER:
        return (token.text in TYPE_LIKE_IDENTIFIERS
                or token.text.endswith("_t"))
    return False


class CastChecker(Checker):
    """Counts explicit casts and flags implicit-conversion risks."""

    name = "casts"

    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        report = self.new_report((unit,))
        code = unit.code
        named = 0
        c_style = 0
        functional = 0
        for index, token in enumerate(code):
            if token.kind is TokenKind.KEYWORD and token.text in NAMED_CASTS:
                if report.emit(Finding(
                        rule="ST.named_cast",
                        message=f"{token.text} expression",
                        filename=unit.filename,
                        line=token.line,
                        severity=Severity.MINOR,
                        function=enclosing_function_name(unit, token.line),
                )):
                    named += 1
            elif token.is_punct("(") and self._is_c_style_cast(code, index):
                if report.emit(Finding(
                        rule="ST.c_cast",
                        message="C-style cast",
                        filename=unit.filename,
                        line=token.line,
                        severity=Severity.MAJOR,
                        function=enclosing_function_name(unit, token.line),
                )):
                    c_style += 1
            elif (token.kind is TokenKind.KEYWORD
                  and token.text in TYPE_KEYWORDS
                  and index + 1 < len(code)
                  and code[index + 1].is_punct("(")
                  and not self._is_declaration_context(code, index)):
                if report.emit(Finding(
                        rule="ST.functional_cast",
                        message=f"functional cast to {token.text}",
                        filename=unit.filename,
                        line=token.line,
                        severity=Severity.MINOR,
                        function=enclosing_function_name(unit, token.line),
                )):
                    functional += 1
        narrowing = self._implicit_narrowing(unit, report)
        report.stats.update({
            "named_casts": named,
            "c_style_casts": c_style,
            "functional_casts": functional,
            "explicit_casts": named + c_style + functional,
            "implicit_narrowing_risks": narrowing,
        })
        return report

    def unit_visitor(self, unit: TranslationUnit, report: CheckerReport,
                     sweep) -> bool:
        """Fused registration for the cast sweeps.

        The legacy main sweep's elif chain is dispatch on disjoint token
        categories (named-cast keywords, ``(``, type keywords), so three
        independent text events reproduce it token for token.  The
        narrowing check was a *second* full sweep in the legacy path, so
        its findings buffer during the shared sweep and flush at the
        end, landing after every main-sweep finding exactly as before.
        """
        code = unit.code
        length = len(code)
        counts = {"named": 0, "c": 0, "functional": 0}
        narrowing_pending: List[Finding] = []

        def on_named(index, token):
            if report.emit(Finding(
                    rule="ST.named_cast",
                    message=f"{token.text} expression",
                    filename=unit.filename,
                    line=token.line,
                    severity=Severity.MINOR,
                    function=enclosing_function_name(unit, token.line),
            )):
                counts["named"] += 1

        def on_open_paren(index, token):
            if self._is_c_style_cast(code, index):
                if report.emit(Finding(
                        rule="ST.c_cast",
                        message="C-style cast",
                        filename=unit.filename,
                        line=token.line,
                        severity=Severity.MAJOR,
                        function=enclosing_function_name(unit, token.line),
                )):
                    counts["c"] += 1

        def on_type_keyword(index, token):
            if (index + 1 < length and code[index + 1].is_punct("(")
                    and not self._is_declaration_context(code, index)):
                if report.emit(Finding(
                        rule="ST.functional_cast",
                        message=f"functional cast to {token.text}",
                        filename=unit.filename,
                        line=token.line,
                        severity=Severity.MINOR,
                        function=enclosing_function_name(unit, token.line),
                )):
                    counts["functional"] += 1
            if token.text in _INTEGER_TYPES and index < length - 3:
                name = code[index + 1]
                equals = code[index + 2]
                value = code[index + 3]
                if (name.kind is TokenKind.IDENTIFIER
                        and equals.is_punct("=")
                        and value.kind is TokenKind.NUMBER
                        and ("." in value.text or "e" in value.text.lower())
                        and not value.text.lower().startswith("0x")):
                    narrowing_pending.append(Finding(
                        rule="ST.narrowing_init",
                        message=(f"integer variable {name.text!r} "
                                 f"initialized with floating literal "
                                 f"{value.text}"),
                        filename=unit.filename,
                        line=token.line,
                        severity=Severity.MAJOR,
                        function=enclosing_function_name(unit, token.line),
                    ))

        for keyword in NAMED_CASTS:
            sweep.on_text(keyword, on_named)
        sweep.on_text("(", on_open_paren)
        for keyword in TYPE_KEYWORDS:
            sweep.on_text(keyword, on_type_keyword)

        def finish():
            narrowing = 0
            for finding in narrowing_pending:
                if report.emit(finding):
                    narrowing += 1
            report.stats.update({
                "named_casts": counts["named"],
                "c_style_casts": counts["c"],
                "functional_casts": counts["functional"],
                "explicit_casts": (counts["named"] + counts["c"]
                                   + counts["functional"]),
                "implicit_narrowing_risks": narrowing,
            })

        sweep.at_end(finish)
        return True

    # ------------------------------------------------------------------

    @staticmethod
    def _is_c_style_cast(code: List[Token], index: int) -> bool:
        """True when ``code[index]`` opens a C-style cast ``(type)x``.

        Requires: every token inside the parens is type-like (type keyword,
        ``const``, ``*``, ``&``, or a type-spelling identifier), at least
        one is a real type spelling, and the token after the close paren
        can start an operand.  The token *before* the open paren must not
        be an identifier or closing bracket (that would be a call).
        """
        if index > 0:
            previous = code[index - 1]
            if previous.kind in (TokenKind.IDENTIFIER, TokenKind.NUMBER):
                return False
            if previous.kind is TokenKind.PUNCT and previous.text in (")", "]"):
                return False
            if previous.kind is TokenKind.KEYWORD and previous.text in (
                    "if", "while", "for", "switch", "return", "sizeof"):
                # `return (x);` style parens and sizeof are not casts
                # unless the contents are purely type-like *and* followed
                # by an operand; be conservative and skip sizeof/control.
                if previous.text != "return":
                    return False
        cursor = index + 1
        saw_type = False
        saw_pointer = False
        while cursor < len(code) and not code[cursor].is_punct(")"):
            token = code[cursor]
            if _is_type_like(token):
                if not (token.is_keyword("const")):
                    saw_type = True
            elif token.kind is TokenKind.PUNCT and token.text in ("*", "&"):
                saw_pointer = True
            elif token.is_punct("::"):
                pass  # qualified type name
            else:
                return False
            cursor += 1
            if cursor - index > 8:
                return False
        if cursor >= len(code) or not saw_type:
            return False
        # An identifier alone in parens is ambiguous (`(size_t)` vs
        # `(variable)`); require a builtin keyword, a pointer, or an
        # identifier-typed spelling when followed by a castable operand.
        after = code[cursor + 1] if cursor + 1 < len(code) else None
        if after is None:
            return False
        operand_ok = (
            after.kind in (TokenKind.IDENTIFIER, TokenKind.NUMBER,
                           TokenKind.STRING, TokenKind.CHAR)
            or after.is_punct("(")
            or (after.kind is TokenKind.PUNCT and after.text in ("*", "&",
                                                                 "-", "~",
                                                                 "!"))
            or (after.kind is TokenKind.KEYWORD and after.text in (
                "sizeof", "new", "true", "false", "nullptr"))
        )
        if not operand_ok:
            return False
        only_identifier = all(
            code[position].kind is TokenKind.IDENTIFIER
            or code[position].is_punct("::")
            for position in range(index + 1, cursor)
        )
        if only_identifier and not saw_pointer:
            # `(name) x` with a bare non-_t identifier is too ambiguous.
            inner = [code[position] for position in range(index + 1, cursor)
                     if code[position].kind is TokenKind.IDENTIFIER]
            if not any(_is_type_like(token) for token in inner):
                return False
        return True

    @staticmethod
    def _is_declaration_context(code: List[Token], index: int) -> bool:
        """True when ``type (`` is a declaration, not a functional cast.

        ``int (*fp)(void)`` declares a function pointer; ``int (x)`` with a
        preceding type keyword is a declaration too.  The functional-cast
        heuristic only fires when the type keyword starts an expression:
        preceded by an operator, ``(``, ``,``, ``=`` or ``return``.
        """
        if index == 0:
            return True
        previous = code[index - 1]
        if previous.kind is TokenKind.PUNCT and previous.text in (
                "=", "(", ",", "+", "-", "*", "/", "%", "<", ">", "<=",
                ">=", "==", "!=", "&&", "||", "[", "?", ":", "<<", ">>"):
            return False
        if previous.kind is TokenKind.KEYWORD and previous.text == "return":
            return False
        return True

    @staticmethod
    def _implicit_narrowing(unit: TranslationUnit,
                            report: CheckerReport) -> int:
        """Count `int x = <float literal>` style initializations."""
        code = unit.code
        count = 0
        for index in range(len(code) - 3):
            token = code[index]
            if not (token.kind is TokenKind.KEYWORD
                    and token.text in _INTEGER_TYPES):
                continue
            name = code[index + 1]
            equals = code[index + 2]
            value = code[index + 3]
            if (name.kind is TokenKind.IDENTIFIER and equals.is_punct("=")
                    and value.kind is TokenKind.NUMBER
                    and ("." in value.text or "e" in value.text.lower())
                    and not value.text.lower().startswith("0x")):
                if report.emit(Finding(
                        rule="ST.narrowing_init",
                        message=(f"integer variable {name.text!r} "
                                 f"initialized with floating literal "
                                 f"{value.text}"),
                        filename=unit.filename,
                        line=token.line,
                        severity=Severity.MAJOR,
                        function=enclosing_function_name(unit, token.line),
                )):
                    count += 1
        return count
