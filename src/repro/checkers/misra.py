"""MISRA C:2012-inspired language-subset checker — Table 1 item 2.

Section 3.1.2 of the paper: "we focus on MISRA, the guideline for the use
of the C language in vehicle-based software, which stipulates 143 rules
(MISRA C:2012).  Since AD applications are not programmed targeting any
critical market in particular, they naturally do not adhere to MISRA C"
(Observation 2), and no equivalent subset exists for CUDA (Observation 3),
whose idiom intrinsically violates the pointer and dynamic-memory rules
(Observation 4).

This module implements the statically decidable MISRA rules that the
paper's analysis rests on.  Each rule is a small method so the rule set is
easy to audit and extend; rule identifiers follow the MISRA C:2012
numbering where a direct counterpart exists.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..lang.cppmodel import FunctionInfo, TranslationUnit
from ..lang.tokens import Token, TokenKind
from ..rules import REGISTRY, Rule
from .base import Checker, CheckerReport, Finding, Severity

RULES = REGISTRY.register_many("language_subset", (
    Rule("M2.7", "There should be no unused parameters in functions",
         Severity.MINOR, table="modeling_coding", topic="language_subsets"),
    Rule("M7.1", "Octal constants shall not be used",
         Severity.MINOR, table="modeling_coding", topic="language_subsets"),
    Rule("M8.2", "Function parameters shall be named",
         Severity.MINOR, table="modeling_coding", topic="language_subsets"),
    Rule("M12.3", "The comma operator should not be used",
         Severity.MINOR, table="modeling_coding", topic="language_subsets"),
    Rule("M13.4", "The result of an assignment shall not be used",
         Severity.MAJOR, table="modeling_coding", topic="language_subsets"),
    Rule("M15.1", "The goto statement should not be used",
         Severity.MAJOR, table="unit_design", topic="no_unconditional_jumps"),
    Rule("M15.5", "A function should have a single point of exit",
         Severity.MINOR, table="unit_design", topic="single_entry_exit"),
    Rule("M15.6", "Loop and selection bodies shall be compound statements",
         Severity.MINOR, table="modeling_coding", topic="language_subsets"),
    Rule("M16.3", "An unconditional break shall terminate every "
         "switch-clause",
         Severity.MAJOR, table="modeling_coding", topic="language_subsets"),
    Rule("M16.4", "Every switch statement shall have a default label",
         Severity.MINOR, table="modeling_coding", topic="language_subsets"),
    Rule("M17.2", "Functions shall not call themselves recursively",
         Severity.MAJOR, table="unit_design", topic="no_recursion"),
    Rule("M19.2", "The union keyword should not be used",
         Severity.MAJOR, table="modeling_coding", topic="language_subsets"),
    Rule("M21.3", "Memory allocation functions of <stdlib.h> shall not "
         "be used",
         Severity.MAJOR, table="modeling_coding", topic="language_subsets"),
    Rule("M21.4", "setjmp/longjmp shall not be used",
         Severity.MAJOR, table="modeling_coding", topic="language_subsets"),
    Rule("M21.5", "Signal handling of <signal.h> shall not be used",
         Severity.MAJOR, table="modeling_coding", topic="language_subsets"),
    Rule("M21.6", "Standard I/O shall not be used in production code",
         Severity.MAJOR, table="modeling_coding", topic="language_subsets"),
    Rule("M21.7", "atof/atoi/atol shall not be used",
         Severity.MAJOR, table="modeling_coding", topic="language_subsets"),
    Rule("M21.8", "abort/exit/getenv/system shall not be used",
         Severity.MAJOR, table="modeling_coding", topic="language_subsets"),
    Rule("D4.12", "Dynamic memory allocation shall not be used",
         Severity.MAJOR, table="unit_design", topic="no_dynamic_objects"),
))

#: Banned standard-library calls, rule id -> (names, reason).
BANNED_CALLS: Dict[str, tuple] = {
    "M21.3": (frozenset({"malloc", "calloc", "realloc", "free"}),
              "dynamic heap allocation is not permitted"),
    "M21.4": (frozenset({"setjmp", "longjmp"}),
              "setjmp/longjmp shall not be used"),
    "M21.5": (frozenset({"signal", "raise"}),
              "signal handling of <signal.h> shall not be used"),
    "M21.6": (frozenset({"printf", "fprintf", "sprintf", "scanf", "fscanf",
                         "sscanf", "fopen", "fclose", "gets", "puts"}),
              "standard I/O shall not be used in production code"),
    "M21.7": (frozenset({"atof", "atoi", "atol", "atoll"}),
              "atof/atoi/atol shall not be used"),
    "M21.8": (frozenset({"abort", "exit", "getenv", "system"}),
              "abort/exit/getenv/system shall not be used"),
}

#: Banned headers, header name -> rule id.
BANNED_HEADERS: Dict[str, str] = {
    "setjmp.h": "M21.4",
    "signal.h": "M21.5",
    "stdio.h": "M21.6",
    "cstdio": "M21.6",
    "stdlib.h": "M21.3",
}

_LOOP_OR_SELECTION = frozenset({"if", "for", "while"})
_CLAUSE_TERMINATORS = frozenset({"break", "return", "throw", "goto",
                                 "continue"})


class MisraChecker(Checker):
    """Statically decidable MISRA C:2012 subset, CUDA-aware."""

    name = "language_subset"
    version = "2"  # v2: octal check sees through digit separators (0'123')

    #: This checker stewards the deviation mechanism's hygiene rules:
    #: it flags deviations naming rules no checker registered.
    audits_unknown_deviations = True

    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        report = self.new_report((unit,))
        self._check_banned_headers(unit, report)
        self._check_octal_constants(unit, report)
        self._check_unions(unit, report)
        for function in unit.functions:
            body = unit.body_tokens(function)
            self._check_function(unit, function, body, report)
        self._summarize(unit, report)
        return report

    def unit_visitor(self, unit: TranslationUnit, report: CheckerReport,
                     sweep) -> bool:
        """Fused registration, emission-ordered exactly as
        :meth:`check_unit`: banned headers now, octal constants during
        the token sweep, unions before the function phase, the
        function-level rule battery per function, stats at the end."""
        self._check_banned_headers(unit, report)
        sweep.on_kind(TokenKind.NUMBER,
                      lambda index, token, _unit=unit, _report=report:
                      self._octal_token(_unit, token, _report))
        sweep.at_functions(lambda: self._check_unions(unit, report))
        sweep.on_function(lambda function, body:
                          self._check_function(unit, function, body,
                                               report))
        sweep.at_end(lambda: self._summarize(unit, report))
        return True

    def _check_function(self, unit: TranslationUnit,
                        function: FunctionInfo, body: List[Token],
                        report: CheckerReport) -> None:
        """The per-function rule battery, shared by both entry points.

        The body is scanned up front — identifier spellings and keyword
        positions — so the token-driven rules below walk the short
        keyword list instead of re-walking the whole body each.
        """
        self._check_goto(unit, function, report)
        self._check_single_exit(unit, function, report)
        self._check_banned_calls(unit, function, report)
        self._check_dynamic_memory(unit, function, report)
        self._check_direct_recursion(unit, function, report)
        identifier = TokenKind.IDENTIFIER
        keyword = TokenKind.KEYWORD
        used = {token.text for token in body if token.kind is identifier}
        keywords = [(index, token) for index, token in enumerate(body)
                    if token.kind is keyword]
        self._check_unused_parameters(unit, function, body, used, report)
        self._check_unnamed_parameters(unit, function, report)
        self._check_compound_bodies(unit, function, body, keywords, report)
        self._check_switch_statements(unit, function, body, keywords,
                                      report)
        self._check_assignment_in_condition(unit, function, body, keywords,
                                            report)
        self._check_comma_in_for_increment(unit, function, body, keywords,
                                           report)

    def finalize(self, report: CheckerReport) -> None:
        lines = report.stats.get("analyzed_lines", 0)
        total = report.stats.get("misra_violations", 0)
        report.stats["violations_per_kloc"] = (
            0.0 if lines == 0 else 1000.0 * total / lines)
        report.stats["misra_clean"] = 1.0 if total == 0 else 0.0

    # ------------------------------------------------------------------
    # file-level rules

    def _check_banned_headers(self, unit: TranslationUnit,
                              report: CheckerReport) -> None:
        for include in unit.preprocessor.includes:
            rule = BANNED_HEADERS.get(include.target)
            if rule is not None:
                report.emit(Finding(
                    rule=rule,
                    message=f"banned header <{include.target}> included",
                    filename=unit.filename,
                    line=include.line,
                    severity=Severity.MAJOR,
                ))

    def _check_octal_constants(self, unit: TranslationUnit,
                               report: CheckerReport) -> None:
        for token in unit.code:
            if token.kind is TokenKind.NUMBER:
                self._octal_token(unit, token, report)

    @staticmethod
    def _octal_token(unit: TranslationUnit, token: Token,
                     report: CheckerReport) -> None:
        """M7.1 for one NUMBER token (also the fused-sweep event)."""
        # Digit separators don't change the base: 0'123' is octal.
        digits = token.text.replace("'", "")
        if (len(digits) > 1 and digits.startswith("0")
                and digits[1].isdigit()
                and "." not in digits and "e" not in digits.lower()):
            report.emit(Finding(
                rule="M7.1",
                message=f"octal constant {token.text} shall not be used",
                filename=unit.filename,
                line=token.line,
                severity=Severity.MINOR,
            ))

    def _check_unions(self, unit: TranslationUnit,
                      report: CheckerReport) -> None:
        for class_info in unit.classes:
            if class_info.kind == "union":
                report.emit(Finding(
                    rule="M19.2",
                    message=f"union {class_info.name!r} shall not be used",
                    filename=unit.filename,
                    line=class_info.start_line,
                    severity=Severity.MAJOR,
                ))

    # ------------------------------------------------------------------
    # function-level rules

    def _check_goto(self, unit: TranslationUnit, function: FunctionInfo,
                    report: CheckerReport) -> None:
        if function.goto_count > 0:
            report.emit(Finding(
                rule="M15.1",
                message=(f"goto used {function.goto_count} time(s) in "
                         f"{function.name!r}"),
                filename=unit.filename,
                line=function.start_line,
                severity=Severity.MAJOR,
                function=function.qualified_name,
            ))

    def _check_single_exit(self, unit: TranslationUnit,
                           function: FunctionInfo,
                           report: CheckerReport) -> None:
        if function.has_multiple_exits:
            report.emit(Finding(
                rule="M15.5",
                message=(f"{function.name!r} has {function.exit_points} "
                         f"exit points (single point of exit required)"),
                filename=unit.filename,
                line=function.start_line,
                severity=Severity.MINOR,
                function=function.qualified_name,
            ))

    def _check_banned_calls(self, unit: TranslationUnit,
                            function: FunctionInfo,
                            report: CheckerReport) -> None:
        for call in function.calls:
            for rule, (names, reason) in BANNED_CALLS.items():
                if call in names:
                    report.emit(Finding(
                        rule=rule,
                        message=f"call to {call!r}: {reason}",
                        filename=unit.filename,
                        line=function.start_line,
                        severity=Severity.MAJOR,
                        function=function.qualified_name,
                    ))

    def _check_dynamic_memory(self, unit: TranslationUnit,
                              function: FunctionInfo,
                              report: CheckerReport) -> None:
        dynamic = (function.new_expressions + function.delete_expressions
                   + function.allocation_calls + function.deallocation_calls)
        if dynamic > 0:
            severity = Severity.CRITICAL if function.is_gpu_code \
                else Severity.MAJOR
            report.emit(Finding(
                rule="D4.12",
                message=(f"{function.name!r} performs {dynamic} dynamic-"
                         f"memory operation(s)"
                         + (" in GPU-related code" if function.is_gpu_code
                            or function.kernel_launches else "")),
                filename=unit.filename,
                line=function.start_line,
                severity=severity,
                function=function.qualified_name,
            ))

    def _check_direct_recursion(self, unit: TranslationUnit,
                                function: FunctionInfo,
                                report: CheckerReport) -> None:
        if function.name in function.calls:
            report.emit(Finding(
                rule="M17.2",
                message=f"{function.name!r} calls itself recursively",
                filename=unit.filename,
                line=function.start_line,
                severity=Severity.MAJOR,
                function=function.qualified_name,
            ))

    def _check_unused_parameters(self, unit: TranslationUnit,
                                 function: FunctionInfo,
                                 body: List[Token], used: Set[str],
                                 report: CheckerReport) -> None:
        if not body:
            return
        for parameter in function.parameters:
            if parameter.name and parameter.name not in used:
                report.emit(Finding(
                    rule="M2.7",
                    message=(f"parameter {parameter.name!r} of "
                             f"{function.name!r} is unused"),
                    filename=unit.filename,
                    line=function.start_line,
                    severity=Severity.MINOR,
                    function=function.qualified_name,
                ))

    def _check_unnamed_parameters(self, unit: TranslationUnit,
                                  function: FunctionInfo,
                                  report: CheckerReport) -> None:
        """M8.2: prototypes shall name their parameters."""
        for position, parameter in enumerate(function.parameters):
            if not parameter.name:
                report.emit(Finding(
                    rule="M8.2",
                    message=(f"parameter {position + 1} of "
                             f"{function.name!r} is unnamed"),
                    filename=unit.filename,
                    line=function.start_line,
                    severity=Severity.MINOR,
                    function=function.qualified_name,
                ))

    def _check_assignment_in_condition(self, unit: TranslationUnit,
                                       function: FunctionInfo,
                                       body: List[Token],
                                       keywords: List[Tuple[int, Token]],
                                       report: CheckerReport) -> None:
        """M13.4: the result of an assignment shall not be used.

        Detects plain ``=`` inside the controlling expression of an
        ``if``/``while`` — the classic ``if (x = y)`` typo.
        """
        resume = 0
        for index, token in keywords:
            if index < resume or token.text not in ("if", "while"):
                continue
            close = self._condition_span(body, index)
            if close is None:
                continue
            for position in range(index + 2, close):
                entry = body[position]
                if entry.is_punct("=") \
                        and not self._is_comparison_neighbor(
                            body, position):
                    report.emit(Finding(
                        rule="M13.4",
                        message=(f"assignment used inside a "
                                 f"{token.text} condition"),
                        filename=unit.filename,
                        line=entry.line,
                        severity=Severity.MAJOR,
                        function=function.qualified_name,
                    ))
            resume = close + 1

    @staticmethod
    def _condition_span(body: List[Token], keyword_index: int):
        """Index of the ``)`` closing the condition after ``keyword``."""
        length = len(body)
        punct = TokenKind.PUNCT
        cursor = keyword_index + 1
        if cursor >= length or not body[cursor].is_punct("("):
            return None
        depth = 0
        while cursor < length:
            token = body[cursor]
            if token.kind is punct:
                if token.text == "(":
                    depth += 1
                elif token.text == ")":
                    depth -= 1
                    if depth == 0:
                        return cursor
            cursor += 1
        return None

    @staticmethod
    def _is_comparison_neighbor(body: List[Token], position: int) -> bool:
        """True when the ``=`` at ``position`` is part of ==, <=, etc.

        The lexer already fuses those into single tokens, so a bare ``=``
        token is a real assignment; this guard only protects against
        pathological token streams.
        """
        return False

    def _check_comma_in_for_increment(self, unit: TranslationUnit,
                                      function: FunctionInfo,
                                      body: List[Token],
                                      keywords: List[Tuple[int, Token]],
                                      report: CheckerReport) -> None:
        """M12.3: the comma operator should not be used.

        Checked where it is unambiguous: the increment clause of a
        ``for`` header (``for (...; ...; i++, j++)``).
        """
        resume = 0
        for index, token in keywords:
            if index < resume or token.text != "for":
                continue
            close = self._condition_span(body, index)
            if close is None:
                continue
            semicolons = 0
            depth = 0
            for position in range(index + 2, close):
                entry = body[position]
                if entry.kind is TokenKind.PUNCT:
                    if entry.text in ("(", "["):
                        depth += 1
                    elif entry.text in (")", "]"):
                        depth -= 1
                    elif entry.text == ";" and depth == 0:
                        semicolons += 1
                    elif entry.text == "," and depth == 0 \
                            and semicolons >= 2:
                        report.emit(Finding(
                            rule="M12.3",
                            message="comma operator in for-loop "
                                    "increment clause",
                            filename=unit.filename,
                            line=entry.line,
                            severity=Severity.MINOR,
                            function=function.qualified_name,
                        ))
            resume = close + 1

    def _check_compound_bodies(self, unit: TranslationUnit,
                               function: FunctionInfo,
                               body: List[Token],
                               keywords: List[Tuple[int, Token]],
                               report: CheckerReport) -> None:
        """M15.6: bodies of selection/iteration statements need braces."""
        length = len(body)
        for index, token in keywords:
            text = token.text
            if text in _LOOP_OR_SELECTION:
                after = self._after_condition(body, index)
                if after is not None and not (
                        after.is_punct("{")
                        or after.is_punct(";")  # empty loop body
                        or after.is_keyword("if")):  # handled at that `if`
                    report.emit(Finding(
                        rule="M15.6",
                        message=(f"{token.text} body is not a compound "
                                 f"statement"),
                        filename=unit.filename,
                        line=token.line,
                        severity=Severity.MINOR,
                        function=function.qualified_name,
                    ))
            elif text == "else":
                after = body[index + 1] if index + 1 < length else None
                if after is not None and not (after.is_punct("{")
                                              or after.is_keyword("if")):
                    report.emit(Finding(
                        rule="M15.6",
                        message="else body is not a compound statement",
                        filename=unit.filename,
                        line=token.line,
                        severity=Severity.MINOR,
                        function=function.qualified_name,
                    ))
            elif text == "do":
                after = body[index + 1] if index + 1 < length else None
                if after is not None and not after.is_punct("{"):
                    report.emit(Finding(
                        rule="M15.6",
                        message="do body is not a compound statement",
                        filename=unit.filename,
                        line=token.line,
                        severity=Severity.MINOR,
                        function=function.qualified_name,
                    ))

    @staticmethod
    def _after_condition(body: List[Token], index: int):
        """Token just after the `( ... )` following body[index], or None."""
        length = len(body)
        punct = TokenKind.PUNCT
        cursor = index + 1
        if cursor >= length or not body[cursor].is_punct("("):
            return None
        depth = 0
        while cursor < length:
            token = body[cursor]
            if token.kind is punct:
                if token.text == "(":
                    depth += 1
                elif token.text == ")":
                    depth -= 1
                    if depth == 0:
                        if cursor + 1 < length:
                            return body[cursor + 1]
                        return None
            cursor += 1
        return None

    def _check_switch_statements(self, unit: TranslationUnit,
                                 function: FunctionInfo,
                                 body: List[Token],
                                 keywords: List[Tuple[int, Token]],
                                 report: CheckerReport) -> None:
        """M16.3 (no fallthrough) and M16.4 (default label required).

        Nested switches are handled inside :meth:`_check_one_switch`'s
        span, so keywords before its returned resume point are skipped —
        exactly the legacy cursor jump.
        """
        resume = 0
        for index, token in keywords:
            if index < resume or token.text != "switch":
                continue
            resume = self._check_one_switch(unit, function, body, index,
                                            report)

    def _check_one_switch(self, unit: TranslationUnit,
                          function: FunctionInfo, body: List[Token],
                          switch_index: int,
                          report: CheckerReport) -> int:
        # Locate the switch body braces.
        cursor = switch_index + 1
        while cursor < len(body) and not body[cursor].is_punct("{"):
            cursor += 1
        if cursor >= len(body):
            return switch_index + 1
        open_brace = cursor
        depth = 0
        close_brace = open_brace
        while close_brace < len(body):
            if body[close_brace].is_punct("{"):
                depth += 1
            elif body[close_brace].is_punct("}"):
                depth -= 1
                if depth == 0:
                    break
            close_brace += 1

        has_default = False
        clause_start_line = 0
        last_terminator = True  # before the first label
        inner_depth = 0
        cursor = open_brace + 1
        while cursor < close_brace:
            token = body[cursor]
            if token.is_punct("{"):
                inner_depth += 1
            elif token.is_punct("}"):
                inner_depth -= 1
            elif inner_depth == 0 and token.kind is TokenKind.KEYWORD \
                    and token.text in ("case", "default"):
                if token.text == "default":
                    has_default = True
                if not last_terminator and clause_start_line:
                    report.emit(Finding(
                        rule="M16.3",
                        message=(f"switch clause starting at line "
                                 f"{clause_start_line} falls through"),
                        filename=unit.filename,
                        line=token.line,
                        severity=Severity.MAJOR,
                        function=function.qualified_name,
                    ))
                # Skip to the colon ending this label.
                while cursor < close_brace and not body[cursor].is_punct(":"):
                    cursor += 1
                clause_start_line = token.line
                last_terminator = True  # empty clause = shared label, OK
                cursor += 1
                continue
            elif inner_depth <= 1 and token.kind is TokenKind.KEYWORD \
                    and token.text in _CLAUSE_TERMINATORS:
                # Skip the rest of the terminating statement (e.g. the
                # expression of a `return x;`).
                while cursor < close_brace and not body[cursor].is_punct(";"):
                    cursor += 1
                last_terminator = True
                cursor += 1
                continue
            if token.kind is not TokenKind.COMMENT:
                if not (token.is_punct(";") or token.is_punct("}")
                        or token.is_punct("{")):
                    last_terminator = False
            cursor += 1
        if not has_default:
            report.emit(Finding(
                rule="M16.4",
                message="switch statement has no default label",
                filename=unit.filename,
                line=body[switch_index].line,
                severity=Severity.MINOR,
                function=function.qualified_name,
            ))
        if not last_terminator and clause_start_line:
            report.emit(Finding(
                rule="M16.3",
                message=(f"final switch clause starting at line "
                         f"{clause_start_line} lacks a break"),
                filename=unit.filename,
                line=body[close_brace].line if close_brace < len(body)
                else clause_start_line,
                severity=Severity.MINOR,
                function=function.qualified_name,
            ))
        return close_brace + 1

    # ------------------------------------------------------------------

    def _summarize(self, unit: TranslationUnit,
                   report: CheckerReport) -> None:
        kernels = [function for function in unit.functions
                   if function.is_gpu_code]
        kernels_with_pointers = sum(
            1 for function in kernels
            if any(parameter.is_pointer
                   for parameter in function.parameters)
            or function.pointer_operations > 0)
        kernels_with_dynamic = sum(1 for function in kernels
                                   if function.uses_dynamic_memory)
        report.stats.update({
            "misra_violations": len(report.findings),
            "analyzed_lines": unit.line_count,
            "gpu_functions": len(kernels),
            "gpu_functions_with_pointers": kernels_with_pointers,
            "gpu_functions_with_dynamic_memory": kernels_with_dynamic,
        })


def cuda_intrinsic_violations(report: CheckerReport) -> Dict[str, float]:
    """Observation 4 evidence: pointer/dynamic-memory use in GPU code."""
    gpu = report.stats.get("gpu_functions", 0)
    return {
        "gpu_functions": gpu,
        "pointer_ratio": (0.0 if gpu == 0 else
                          report.stats.get("gpu_functions_with_pointers", 0)
                          / gpu),
        "dynamic_memory_ratio": (
            0.0 if gpu == 0 else
            report.stats.get("gpu_functions_with_dynamic_memory", 0) / gpu),
    }
