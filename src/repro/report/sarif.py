"""SARIF 2.1.0 export: findings any code-review or CI surface can ingest.

One ``run`` per assessment: the tool driver carries a ``rules`` array
with exactly one entry per registered rule that produced a finding
(active or deviation-suppressed), each mapped to its ISO 26262-6
table/topic via rule properties; every result points back into that
array by ``ruleIndex``; and deviation-suppressed findings are emitted
as results carrying a ``suppressions`` entry (``kind: inSource``) so
ingesting surfaces show them as reviewed-and-accepted rather than
dropping them silently.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List

from ..rules import REGISTRY, Severity
from .base import Reporter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .model import ReportModel

#: The SARIF spec version this exporter targets.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Severity -> SARIF ``level``.  CRITICAL and MAJOR both block
#: compliance, so both map to ``error``.
LEVELS: Dict[Severity, str] = {
    Severity.CRITICAL: "error",
    Severity.MAJOR: "error",
    Severity.MINOR: "warning",
    Severity.INFO: "note",
}


def _rule_entry(rule) -> Dict:
    entry: Dict = {
        "id": rule.id,
        "name": rule.id.replace(".", "_"),
        "shortDescription": {"text": rule.title},
        "defaultConfiguration": {"level": LEVELS[rule.severity]},
        "properties": {"checker": rule.checker},
    }
    if rule.table:
        entry["properties"]["iso26262Table"] = rule.table
        entry["properties"]["iso26262Topic"] = rule.topic
    return entry


def _location(finding) -> Dict:
    physical: Dict = {
        "artifactLocation": {
            "uri": finding.filename.replace("\\", "/"),
        },
    }
    if finding.line > 0:
        physical["region"] = {"startLine": finding.line}
    return {"physicalLocation": physical}


def _result(finding, rule_index: Dict[str, int],
            suppressed: bool) -> Dict:
    result: Dict = {
        "ruleId": finding.rule,
        "level": LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [_location(finding)],
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if finding.function:
        result["properties"] = {"function": finding.function}
    if suppressed:
        result["suppressions"] = [{
            "kind": "inSource",
            "status": "accepted",
            "justification": "suppressed by inline DEVIATION comment",
        }]
    return result


def sarif_document(model: "ReportModel") -> Dict:
    """The complete SARIF 2.1.0 log for one assessment."""
    result = model.result
    active_rules: List[str] = sorted({
        finding.rule
        for report in result.reports.values()
        for finding in list(report.findings) + list(report.suppressed)})
    rules_array: List[Dict] = []
    rule_index: Dict[str, int] = {}
    for rule_id in active_rules:
        rule = REGISTRY.get(rule_id)
        rule_index[rule_id] = len(rules_array)
        if rule is not None:
            rules_array.append(_rule_entry(rule))
        else:
            # A finding under an unregistered id (should not happen —
            # emission routes through the registry) still keeps the
            # rules array index-complete.
            rules_array.append({"id": rule_id})

    results: List[Dict] = []
    for name in sorted(result.reports):
        report = result.reports[name]
        for finding in report.findings:
            results.append(_result(finding, rule_index, suppressed=False))
        for finding in report.suppressed:
            results.append(_result(finding, rule_index, suppressed=True))

    run: Dict = {
        "tool": {
            "driver": {
                "name": "repro-assess",
                "version": model.tool_version,
                "informationUri":
                    "https://github.com/repro/iso26262-adherence",
                "rules": rules_array,
            },
        },
        "columnKind": "utf16CodeUnits",
        "results": results,
    }
    if result.degraded:
        run["invocations"] = [{
            "executionSuccessful": True,
            "toolExecutionNotifications": [
                {
                    "level": "error",
                    "message": {"text": crash.describe()},
                }
                for crash in result.crashes
            ],
        }]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


class SarifReporter(Reporter):
    """Writes :func:`sarif_document` as indented JSON."""

    format = "sarif"
    error_label = "SARIF report"

    def render(self, model: "ReportModel") -> str:
        return json.dumps(sarif_document(model), indent=2)

    def announce(self, destination: str) -> str:
        return f"SARIF written to {destination}"
