"""The static HTML dashboard: the assessment as a browsable site.

``write_dashboard`` renders one :class:`~repro.report.model.ReportModel`
into a directory:

* ``index.html`` — overview recreating the paper's figures as charts
  (findings per ISO 26262-6 table/topic, severity mix, per-module
  violation density, coverage by type), the requirement-table verdicts,
  a degradations panel on degraded runs, per-rule trend sparklines from
  the run ledger, profile hotspots, and the full rule index;
* ``modules/<module>.html`` — per-module drilldown with every source
  file annotated line by line (findings, deviation suppressions);
* ``coverage/<file>.html`` — per-covered-file drilldown with hit
  counts and branch-gap marks on each line.

Every page is fully self-contained: one inline ``<style>`` block, no
script tags, no external asset references — charts are inline SVG — so
the directory works from ``file://``, an artifact store, or any static
host.  Light and dark themes come from the same CSS custom properties
(the validated default palette) via ``prefers-color-scheme``.
"""

from __future__ import annotations

import html as html_module
import os
import re
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..coverage.annotate import line_coverage_index
from ..errors import ReportError
from .base import Reporter
from .charts import (
    SERIES_VARS,
    grouped_hbar_chart,
    hbar_chart,
    severity_stack,
    sparkline,
)
from .model import SEVERITY_ORDER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .model import ModuleRollup, ReportModel

#: Shared inline stylesheet — the only chrome every page carries.
#: Light values are the validated default palette; the dark block
#: re-steps the same hues for the dark surface (selected, not flipped).
STYLE = """
:root {
  color-scheme: light dark;
  --surface: #fcfcfb; --panel: #f4f3f0; --grid: #e4e3df;
  --ink: #0b0b0b; --ink-muted: #52514e;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
  --critical: #d03b3b; --serious: #ec835a; --warning: #fab219;
  --good: #0ca30c;
  --cov-hit: #d9efdc; --cov-miss: #f7dcdc;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #242423; --grid: #383835;
    --ink: #ffffff; --ink-muted: #c3c2b7;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
    --cov-hit: #1e3323; --cov-miss: #3c2222;
  }
}
* { box-sizing: border-box; }
body { margin: 0 auto; padding: 24px 32px 64px; max-width: 1080px;
  background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 10px; }
h3 { font-size: 14px; margin: 18px 0 6px; }
a { color: var(--s1); text-decoration: none; }
a:hover { text-decoration: underline; }
.sub { color: var(--ink-muted); margin: 0 0 18px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 16px 0; }
.tile { background: var(--panel); border-radius: 8px;
  padding: 10px 16px; min-width: 110px; }
.tile .v { font-size: 20px; font-weight: 600; }
.tile .k { font-size: 12px; color: var(--ink-muted); }
.tile.bad .v { color: var(--critical); }
table { border-collapse: collapse; width: 100%; margin: 8px 0; }
th { text-align: left; font-size: 12px; color: var(--ink-muted);
  border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0; }
td { border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0; }
td.n, th.n { text-align: right; font-variant-numeric: tabular-nums; }
svg.chart { display: block; margin: 6px 0; }
svg.chart text { font: 12px system-ui, sans-serif; fill: var(--ink); }
svg.chart text.label { fill: var(--ink-muted); }
svg.chart text.value { fill: var(--ink); }
svg.spark { vertical-align: middle; }
.legend { display: flex; flex-wrap: wrap; gap: 12px; margin: 4px 0;
  font-size: 12px; color: var(--ink-muted); }
.chip { display: inline-flex; align-items: center; gap: 5px; }
.swatch { width: 10px; height: 10px; border-radius: 2px;
  display: inline-block; }
.badge { display: inline-block; border-radius: 4px; padding: 0 6px;
  font-size: 11px; font-weight: 600; color: #fff; }
.badge.CRITICAL { background: var(--critical); }
.badge.MAJOR { background: var(--serious); }
.badge.MINOR { background: var(--warning); color: #0b0b0b; }
.badge.INFO { background: var(--ink-muted); }
.verdict { font-size: 12px; font-weight: 600; }
.verdict.compliant { color: var(--good); }
.verdict.partial { color: var(--warning); }
.verdict.non-compliant { color: var(--critical); }
.verdict.unknown, .verdict.not-applicable { color: var(--ink-muted); }
.panel { background: var(--panel); border-radius: 8px;
  padding: 12px 16px; margin: 10px 0; }
.panel.degraded { border-left: 4px solid var(--critical); }
.src { background: var(--panel); border-radius: 8px; padding: 8px 0;
  margin: 10px 0; overflow-x: auto;
  font: 12px/1.45 ui-monospace, "SF Mono", Menlo, Consolas, monospace; }
.ln { display: flex; white-space: pre; }
.ln .no { width: 46px; flex: none; text-align: right; padding-right: 10px;
  color: var(--ink-muted); user-select: none; }
.ln .m { width: 58px; flex: none; text-align: right; padding-right: 10px;
  color: var(--ink-muted); }
.ln.hit { background: var(--cov-hit); }
.ln.miss { background: var(--cov-miss); }
.ln.finding { background: color-mix(in srgb, var(--critical) 14%,
  transparent); }
.ln.deviation { background: color-mix(in srgb, var(--warning) 18%,
  transparent); }
.ann { padding-left: 56px; font-size: 12px; }
.ann.f { color: var(--critical); }
.ann.d { color: var(--ink-muted); }
.empty { color: var(--ink-muted); font-style: italic; }
footer { margin-top: 48px; font-size: 12px; color: var(--ink-muted); }
"""


def _escape(text: str) -> str:
    return html_module.escape(str(text), quote=True)


def _slug(name: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9_.-]+", "-", name).strip("-")
    return cleaned or "unnamed"


def _page(title: str, body: str, *, crumb: str = "") -> str:
    nav = f"<p class=\"sub\">{crumb}</p>" if crumb else ""
    return (f"<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
            f"<meta charset=\"utf-8\">\n"
            f"<meta name=\"viewport\" "
            f"content=\"width=device-width, initial-scale=1\">\n"
            f"<title>{_escape(title)}</title>\n"
            f"<style>{STYLE}</style>\n</head>\n<body>\n"
            f"<h1>{_escape(title)}</h1>\n{nav}{body}\n"
            f"</body>\n</html>\n")


def _footer(model: "ReportModel") -> str:
    return (f"<footer>generated by repro-assess "
            f"{_escape(model.tool_version)} — reporter bridge</footer>")


# ----------------------------------------------------------------------
# overview page


def _tiles(model: "ReportModel") -> str:
    result = model.result
    tiles = [
        (str(result.unit_count), "translation units"),
        (str(result.total_loc), "lines of code"),
        (str(result.total_functions), "functions"),
        (str(result.moderate_or_higher), "functions cc&gt;10"),
        (str(model.total_findings), "findings"),
    ]
    if result.total_suppressed:
        tiles.append((str(result.total_suppressed), "suppressed"))
    rendered = "".join(
        f"<div class=\"tile\"><div class=\"v\">{value}</div>"
        f"<div class=\"k\">{key}</div></div>"
        for value, key in tiles)
    if result.degraded:
        rendered += (f"<div class=\"tile bad\"><div class=\"v\">"
                     f"{len(result.crashes)}</div>"
                     f"<div class=\"k\">contained faults</div></div>")
    return f"<div class=\"tiles\">{rendered}</div>"


def _degradations_panel(model: "ReportModel") -> str:
    result = model.result
    if not result.degraded:
        return ""
    rows = "".join(
        f"<tr><td>{_escape(crash.checker)}</td>"
        f"<td>{_escape(crash.stage)}</td>"
        f"<td>{_escape(crash.path or '-')}</td>"
        f"<td>{_escape(crash.exc_type)}: {_escape(crash.message)}</td>"
        f"</tr>"
        for crash in result.crashes)
    return (f"<h2>Degradations</h2><div class=\"panel degraded\">"
            f"<p>This run completed <strong>degraded</strong>: "
            f"{len(result.crashes)} internal fault(s) were contained; "
            f"findings are a lower bound.</p>"
            f"<table><tr><th>checker</th><th>stage</th><th>file</th>"
            f"<th>exception</th></tr>{rows}</table></div>")


def _topics_section(model: "ReportModel") -> str:
    rows = [(topic.label, float(topic.findings))
            for topic in model.topics]
    return ("<h2>Findings per ISO 26262-6 table / topic</h2>"
            + hbar_chart(rows))


def _severity_section(model: "ReportModel") -> str:
    ordered = {name: model.severity_mix.get(name, 0)
               for name in SEVERITY_ORDER}
    return "<h2>Severity mix</h2>" + severity_stack(ordered)


def _modules_section(model: "ReportModel") -> str:
    density_rows = [(rollup.name, rollup.density)
                    for rollup in sorted(model.modules,
                                         key=lambda r: -r.density)]
    chart = hbar_chart(density_rows, unit="", fraction_digits=1)
    table_rows = "".join(
        f"<tr><td><a href=\"modules/{_slug(rollup.name)}.html\">"
        f"{_escape(rollup.name)}</a></td>"
        f"<td class=\"n\">{rollup.loc}</td>"
        f"<td class=\"n\">{rollup.functions}</td>"
        f"<td class=\"n\">{rollup.cc_over_10}</td>"
        f"<td class=\"n\">{rollup.findings}</td>"
        f"<td class=\"n\">{rollup.suppressed}</td>"
        f"<td class=\"n\">{rollup.density:.1f}</td></tr>"
        for rollup in model.modules)
    return (f"<h2>Violation density per module "
            f"(findings / KLOC)</h2>{chart}"
            f"<h3>Module metrics (Figure 3)</h3>"
            f"<table><tr><th>module</th><th class=\"n\">LOC</th>"
            f"<th class=\"n\">functions</th><th class=\"n\">cc&gt;10</th>"
            f"<th class=\"n\">findings</th><th class=\"n\">suppressed"
            f"</th><th class=\"n\">per KLOC</th></tr>{table_rows}"
            f"</table>")


def _coverage_section(model: "ReportModel") -> str:
    coverage = model.coverage
    if coverage is None or not coverage.campaign.files:
        return ("<h2>Coverage by type</h2><p class=\"empty\">no "
                "coverage data collected for this run</p>")
    campaign = coverage.campaign
    labels = [record.filename for record in campaign.files]
    has_mcdc = any(record.mcdc is not None for record in campaign.files)
    series = [
        ("statement", SERIES_VARS[0],
         [record.statement_percent for record in campaign.files]),
        ("branch", SERIES_VARS[1],
         [record.branch_percent for record in campaign.files]),
    ]
    if has_mcdc:
        series.append(("MC/DC", SERIES_VARS[2],
                       [record.mcdc_percent
                        for record in campaign.files]))
    chart = grouped_hbar_chart(labels, series)
    averages = (f"averages: statement "
                f"{campaign.average('statement'):.1f}%, branch "
                f"{campaign.average('branch'):.1f}%")
    if has_mcdc:
        averages += f", MC/DC {campaign.average('mcdc'):.1f}%"
    links = " · ".join(
        f"<a href=\"coverage/{_slug(record.filename)}.html\">"
        f"{_escape(record.filename)}</a>"
        for record in campaign.files)
    return (f"<h2>Coverage by type (Figure 5)</h2>{chart}"
            f"<p class=\"sub\">{averages}</p>"
            f"<p class=\"sub\">annotated sources: {links}</p>")


def _verdicts_section(model: "ReportModel") -> str:
    sections = []
    for key in ("modeling_coding", "architectural_design", "unit_design"):
        assessment = model.result.tables.get(key)
        if assessment is None:
            continue
        rows = "".join(
            f"<tr><td class=\"n\">{entry.technique.index}</td>"
            f"<td>{_escape(entry.technique.title)}</td>"
            f"<td><span class=\"verdict "
            f"{_slug(entry.verdict.value)}\">"
            f"{_escape(entry.verdict.value)}</span></td>"
            f"<td>{_escape(entry.rationale)}</td></tr>"
            for entry in assessment.assessments)
        sections.append(
            f"<h3>Table {assessment.table.paper_number}: "
            f"{_escape(assessment.table.caption)}</h3>"
            f"<table><tr><th>#</th><th>technique</th><th>verdict</th>"
            f"<th>rationale</th></tr>{rows}</table>")
    return "<h2>Requirement-table verdicts</h2>" + "".join(sections)


def _trends_section(model: "ReportModel") -> str:
    trends = model.trends
    if trends is None or not trends.series:
        return ""
    ranked = sorted(trends.series.items(),
                    key=lambda item: (-item[1][-1], item[0]))[:12]
    rows = "".join(
        f"<tr><td>{_escape(rule)}</td>"
        f"<td>{sparkline(counts, label=rule)}</td>"
        f"<td class=\"n\">{counts[-1]}</td></tr>"
        for rule, counts in ranked)
    profile = (trends.rules_fingerprint or "defaults")
    caption = (f"{trends.matched_runs} of {trends.window_size} recorded "
               f"run(s) share the latest configuration (config "
               f"{_escape(trends.config_fingerprint or 'unknown')}, "
               f"rules {_escape(profile)})")
    return (f"<h2>Finding trends (run ledger)</h2>"
            f"<p class=\"sub\">{caption}</p>"
            f"<table><tr><th>rule</th><th>trend "
            f"(oldest → newest)</th><th class=\"n\">latest</th></tr>"
            f"{rows}</table>")


def _hotspots_section(model: "ReportModel") -> str:
    hotspots = model.hotspots
    if not hotspots.get("files") and not hotspots.get("checkers"):
        return ""
    files = "".join(
        f"<tr><td>{_escape(row['path'])}</td>"
        f"<td class=\"n\">{row['seconds']:.3f}s</td></tr>"
        for row in hotspots.get("files", []))
    checkers = "".join(
        f"<tr><td>{_escape(row['checker'])}</td>"
        f"<td class=\"n\">{row['seconds']:.3f}s</td></tr>"
        for row in hotspots.get("checkers", []))
    return (f"<h2>Profile hotspots</h2>"
            f"<table><tr><th>slowest files</th><th class=\"n\">time"
            f"</th></tr>{files}</table>"
            f"<table><tr><th>slowest checkers</th><th class=\"n\">time"
            f"</th></tr>{checkers}</table>")


def _rule_index_section(model: "ReportModel") -> str:
    has_baseline = model.result.baseline is not None
    new_header = "<th class=\"n\">new</th>" if has_baseline else ""
    rows = []
    for activity in model.rules:
        rule = activity.rule
        topic = f"{rule.table}/{rule.topic}" if rule.table else "-"
        new_cell = (f"<td class=\"n\">{activity.new}</td>"
                    if has_baseline else "")
        rows.append(
            f"<tr><td>{_escape(rule.id)}</td>"
            f"<td>{_escape(rule.checker)}</td>"
            f"<td><span class=\"badge {rule.severity.name}\">"
            f"{rule.severity.name}</span></td>"
            f"<td>{_escape(topic)}</td>"
            f"<td class=\"n\">{activity.findings}</td>"
            f"<td class=\"n\">{activity.suppressed}</td>{new_cell}</tr>")
    return (f"<h2>Rule index</h2>"
            f"<table><tr><th>rule</th><th>checker</th><th>severity</th>"
            f"<th>ISO topic</th><th class=\"n\">findings</th>"
            f"<th class=\"n\">suppressed</th>{new_header}</tr>"
            f"{''.join(rows)}</table>")


def render_index(model: "ReportModel") -> str:
    body = "".join([
        _tiles(model),
        _degradations_panel(model),
        _topics_section(model),
        _severity_section(model),
        _modules_section(model),
        _coverage_section(model),
        _verdicts_section(model),
        _trends_section(model),
        _hotspots_section(model),
        _rule_index_section(model),
        _footer(model),
    ])
    return _page("ISO 26262-6 adherence assessment", body)


# ----------------------------------------------------------------------
# module drilldown pages


def _annotated_source(text: str, findings, suppressed,
                      coverage=None) -> str:
    """One source file as highlighted, annotated rows."""
    by_line: Dict[int, List] = {}
    for finding in findings:
        by_line.setdefault(finding.line, []).append(("f", finding))
    for finding in suppressed:
        by_line.setdefault(finding.line, []).append(("d", finding))
    hits_by_line: Dict[int, int] = {}
    instrumented = partial = frozenset()
    if coverage is not None:
        hits_by_line, instrumented, partial = \
            line_coverage_index(coverage)

    rows: List[str] = []
    for number, line in enumerate(text.split("\n"), start=1):
        classes = ["ln"]
        margin = ""
        if coverage is not None:
            if number in instrumented:
                hits = hits_by_line.get(number, 0)
                classes.append("hit" if hits > 0 else "miss")
                margin = str(hits) if hits > 0 else "####"
        marks = by_line.get(number, ())
        if any(kind == "f" for kind, _ in marks):
            classes.append("finding")
        elif any(kind == "d" for kind, _ in marks):
            classes.append("deviation")
        margin_cell = (f"<span class=\"m\">{_escape(margin)}</span>"
                       if coverage is not None else "")
        rows.append(
            f"<div class=\"{' '.join(classes)}\" id=\"L{number}\">"
            f"<span class=\"no\">{number}</span>{margin_cell}"
            f"<span class=\"code\">{_escape(line) or ' '}</span></div>")
        for kind, finding in marks:
            css = "f" if kind == "f" else "d"
            prefix = ("suppressed by deviation — "
                      if kind == "d" else "")
            rows.append(
                f"<div class=\"ann {css}\">[{_escape(finding.rule)}] "
                f"{prefix}{_escape(finding.message)}</div>")
        if coverage is not None and number in partial:
            rows.append("<div class=\"ann d\">branch not fully "
                        "covered</div>")
    return f"<div class=\"src\">{''.join(rows)}</div>"


def render_module_page(model: "ReportModel",
                       rollup: "ModuleRollup") -> str:
    parts: List[str] = [
        f"<div class=\"tiles\">"
        f"<div class=\"tile\"><div class=\"v\">{rollup.loc}</div>"
        f"<div class=\"k\">LOC</div></div>"
        f"<div class=\"tile\"><div class=\"v\">{rollup.functions}</div>"
        f"<div class=\"k\">functions</div></div>"
        f"<div class=\"tile\"><div class=\"v\">{rollup.findings}</div>"
        f"<div class=\"k\">findings</div></div>"
        f"<div class=\"tile\"><div class=\"v\">{rollup.density:.1f}"
        f"</div><div class=\"k\">per KLOC</div></div></div>"]
    for path in rollup.files:
        findings = model.findings_for(path)
        suppressed = model.suppressed_for(path)
        file_level = [finding for finding in findings
                      if finding.line == 0]
        located = [finding for finding in findings if finding.line > 0]
        parts.append(f"<h2 id=\"{_slug(path)}\">{_escape(path)} "
                     f"<span class=\"sub\">({len(findings)} finding(s), "
                     f"{len(suppressed)} suppressed)</span></h2>")
        if file_level:
            items = "".join(
                f"<li><span class=\"badge {f.severity.name}\">"
                f"{f.severity.name}</span> [{_escape(f.rule)}] "
                f"{_escape(f.message)}</li>"
                for f in file_level)
            parts.append(f"<ul>{items}</ul>")
        source = model.sources.get(path)
        if source is None:
            parts.append("<p class=\"empty\">source unavailable</p>")
            continue
        parts.append(_annotated_source(source, located, suppressed))
    parts.append(_footer(model))
    return _page(f"module {rollup.name}", "".join(parts),
                 crumb="<a href=\"../index.html\">← overview</a>")


def render_coverage_page(model: "ReportModel", filename: str) -> str:
    coverage = model.coverage
    record = next((entry for entry in coverage.campaign.files
                   if entry.filename == filename), None)
    collector = coverage.collectors.get(filename)
    source = coverage.sources.get(filename, "")
    tiles = ""
    if record is not None:
        cells = [(f"{record.statement_percent:.1f}%", "statement"),
                 (f"{record.branch_percent:.1f}%", "branch")]
        if record.mcdc_percent is not None:
            cells.append((f"{record.mcdc_percent:.1f}%", "MC/DC"))
        tiles = "<div class=\"tiles\">" + "".join(
            f"<div class=\"tile\"><div class=\"v\">{value}</div>"
            f"<div class=\"k\">{key}</div></div>"
            for value, key in cells) + "</div>"
    body = tiles + _annotated_source(source, (), (),
                                     coverage=collector)
    return _page(f"coverage — {filename}", body + _footer(model),
                 crumb="<a href=\"../index.html\">← overview</a>")


# ----------------------------------------------------------------------
# writer


def write_dashboard(model: "ReportModel", directory: str) -> List[str]:
    """Write the full dashboard into ``directory``; returns the paths.

    Raises :class:`OSError` when the directory tree cannot be created
    or a page cannot be written (the CLI maps that to exit 2).
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []

    def emit(relative: str, content: str) -> None:
        path = os.path.join(directory, relative)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
        written.append(path)

    emit("index.html", render_index(model))
    for rollup in model.modules:
        emit(os.path.join("modules", f"{_slug(rollup.name)}.html"),
             render_module_page(model, rollup))
    if model.coverage is not None:
        for record in model.coverage.campaign.files:
            emit(os.path.join("coverage",
                              f"{_slug(record.filename)}.html"),
                 render_coverage_page(model, record.filename))
    return written


class HtmlReporter(Reporter):
    """Writes the dashboard directory (destination is a directory)."""

    format = "html"
    error_label = "HTML dashboard"

    def render(self, model: "ReportModel") -> str:
        return render_index(model)

    def write(self, model: "ReportModel", destination: str) -> str:
        try:
            pages = write_dashboard(model, destination)
        except OSError as error:
            raise ReportError(
                f"cannot write {self.error_label}: {error}") from error
        return (f"HTML dashboard written to {destination} "
                f"({len(pages)} page(s))")
