"""The reporter interface and the pre-bridge JSON/Markdown writers.

A :class:`Reporter` renders one :class:`~repro.report.model.ReportModel`
to one destination (a file, or a directory for the HTML dashboard).
The CLI no longer carries ad-hoc ``open``/``dump`` blocks per format:
it asks :func:`configured_reporters` for the (reporter, destination)
pairs the :class:`ReportTargets` request and runs them in order.  Each
reporter owns its announcement line and its error prefix, so the
pre-bridge stdout and stderr stay byte-identical.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..errors import ReportError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .model import ReportModel


@dataclass(frozen=True)
class ReportTargets:
    """Where each configured reporter writes; ``None`` disables it.

    Carried on :attr:`~repro.core.config.PipelineConfig.report` so a
    run's full output fan-out is part of its configuration, not CLI
    plumbing.
    """

    json: Optional[str] = None
    markdown: Optional[str] = None
    html: Optional[str] = None
    sarif: Optional[str] = None
    cobertura: Optional[str] = None

    def any(self) -> bool:
        return any((self.json, self.markdown, self.html, self.sarif,
                    self.cobertura))

    def needs_coverage(self) -> bool:
        """True when a requested surface renders coverage data."""
        return bool(self.html or self.cobertura)


class Reporter(abc.ABC):
    """One output surface over the shared report model."""

    #: Short format name, e.g. ``"json"`` — keys the reporter registry.
    format: str = ""
    #: Error prefix: ``"cannot write <label>: <oserror>"`` on exit 2.
    error_label: str = "report"

    @abc.abstractmethod
    def render(self, model: "ReportModel") -> str:
        """The serialized document (single-file formats only)."""

    def announce(self, destination: str) -> str:
        """The stdout line printed after a successful write."""
        return f"{self.error_label} written to {destination}"

    def write(self, model: "ReportModel", destination: str) -> str:
        """Render to ``destination``; returns the announcement line.

        Raises :class:`~repro.errors.ReportError` on any filesystem
        failure, carrying the exact pre-bridge error message.
        """
        try:
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(self.render(model))
        except OSError as error:
            raise ReportError(
                f"cannot write {self.error_label}: {error}") from error
        return self.announce(destination)


class JsonReporter(Reporter):
    """The ``--json`` document — byte-identical to the pre-bridge writer
    (``json.dump(result.to_dict(), indent=2)``)."""

    format = "json"
    error_label = "JSON report"

    def render(self, model: "ReportModel") -> str:
        return json.dumps(model.result.to_dict(), indent=2)

    def announce(self, destination: str) -> str:
        return f"\nJSON written to {destination}"


class MarkdownReporter(Reporter):
    """The ``--markdown`` document — byte-identical to the pre-bridge
    :func:`~repro.core.markdown.render_markdown` writer."""

    format = "markdown"
    error_label = "Markdown report"

    def render(self, model: "ReportModel") -> str:
        from ..core.markdown import render_markdown
        return render_markdown(model.result)

    def announce(self, destination: str) -> str:
        return f"Markdown written to {destination}"


def configured_reporters(targets: ReportTargets
                         ) -> List[Tuple[Reporter, str]]:
    """The (reporter, destination) pairs ``targets`` request, in the
    CLI's historical output order: JSON, Markdown, then the new
    surfaces (SARIF, Cobertura, HTML)."""
    from .cobertura import CoberturaReporter
    from .html import HtmlReporter
    from .sarif import SarifReporter
    pairs: List[Tuple[Reporter, str]] = []
    if targets.json:
        pairs.append((JsonReporter(), targets.json))
    if targets.markdown:
        pairs.append((MarkdownReporter(), targets.markdown))
    if targets.sarif:
        pairs.append((SarifReporter(), targets.sarif))
    if targets.cobertura:
        pairs.append((CoberturaReporter(), targets.cobertura))
    if targets.html:
        pairs.append((HtmlReporter(), targets.html))
    return pairs
