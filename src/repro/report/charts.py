"""Inline-SVG chart primitives for the HTML dashboard.

Every chart is a self-contained ``<svg>`` fragment — no script, no
external assets — styled through CSS custom properties defined by the
page (``--s1``..``--s3`` categorical slots, status colors, ink and grid
tokens), so the one set of light/dark variables themes every chart.

Design rules applied throughout (and deliberately boring): horizontal
bars for labeled magnitudes, one hue per job (sequential blue for
single-measure magnitude, the first three categorical slots for the
coverage triple — the only multi-series chart), direct value labels
instead of dense gridlines, 2px gaps between adjacent fills, native
``<title>`` tooltips on every mark, and a legend only when there are
two or more series.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

#: Categorical slot CSS variables, fixed order (validated palette).
SERIES_VARS = ("var(--s1)", "var(--s2)", "var(--s3)")

#: Severity -> status-palette CSS variable.  INFO is not a state, so it
#: wears neutral ink rather than impersonating ``good``.
SEVERITY_VARS = {
    "CRITICAL": "var(--critical)",
    "MAJOR": "var(--serious)",
    "MINOR": "var(--warning)",
    "INFO": "var(--ink-muted)",
}

_BAR_HEIGHT = 18
_BAR_GAP = 6
_LABEL_WIDTH = 190
_VALUE_WIDTH = 56
_CHART_WIDTH = 640


def _escape(text: str) -> str:
    return html.escape(str(text), quote=True)


def _truncate(label: str, limit: int = 26) -> str:
    return label if len(label) <= limit else label[:limit - 1] + "…"


def hbar_chart(rows: Sequence[Tuple[str, float]], *,
               color: str = "var(--s1)",
               unit: str = "",
               fraction_digits: int = 0,
               max_value: Optional[float] = None) -> str:
    """A horizontal bar chart: one labeled magnitude per row.

    Single series — sequential hue, direct value labels, no legend.
    Each bar carries a native ``<title>`` tooltip with the full label
    and exact value.
    """
    if not rows:
        return "<p class=\"empty\">no data</p>"
    peak = max_value if max_value is not None \
        else max(value for _, value in rows) or 1.0
    plot_width = _CHART_WIDTH - _LABEL_WIDTH - _VALUE_WIDTH
    height = len(rows) * (_BAR_HEIGHT + _BAR_GAP)
    parts = [f"<svg class=\"chart\" role=\"img\" "
             f"viewBox=\"0 0 {_CHART_WIDTH} {height}\" "
             f"width=\"{_CHART_WIDTH}\" height=\"{height}\">"]
    for index, (label, value) in enumerate(rows):
        y = index * (_BAR_HEIGHT + _BAR_GAP)
        width = max(1.0, plot_width * (value / peak)) if value else 0.0
        rendered = f"{value:.{fraction_digits}f}{unit}"
        parts.append("<g>")
        parts.append(f"<title>{_escape(label)}: {_escape(rendered)}"
                     f"</title>")
        parts.append(
            f"<text x=\"{_LABEL_WIDTH - 8}\" y=\"{y + 13}\" "
            f"text-anchor=\"end\" class=\"label\">"
            f"{_escape(_truncate(label))}</text>")
        if width:
            parts.append(
                f"<rect x=\"{_LABEL_WIDTH}\" y=\"{y}\" "
                f"width=\"{width:.1f}\" height=\"{_BAR_HEIGHT}\" "
                f"rx=\"2\" fill=\"{color}\"/>")
        parts.append(
            f"<text x=\"{_LABEL_WIDTH + width + 6:.1f}\" y=\"{y + 13}\" "
            f"class=\"value\">{_escape(rendered)}</text>")
        parts.append("</g>")
    parts.append("</svg>")
    return "".join(parts)


def grouped_hbar_chart(labels: Sequence[str],
                       series: Sequence[Tuple[str, str, Sequence[Optional[float]]]],
                       *, unit: str = "%",
                       max_value: float = 100.0) -> str:
    """Grouped horizontal bars: up to three series per label.

    ``series`` is ``[(name, css color, values)]`` with one value (or
    ``None`` for not-measured) per label.  A legend is emitted above
    the plot — identity is never color-alone.
    """
    if not labels:
        return "<p class=\"empty\">no data</p>"
    bar = 12
    gap = 2
    group = len(series) * (bar + gap) + 8
    plot_width = _CHART_WIDTH - _LABEL_WIDTH - _VALUE_WIDTH
    height = len(labels) * group
    legend = "".join(
        f"<span class=\"chip\"><span class=\"swatch\" "
        f"style=\"background:{color}\"></span>{_escape(name)}</span>"
        for name, color, _ in series)
    parts = [f"<div class=\"legend\">{legend}</div>",
             f"<svg class=\"chart\" role=\"img\" "
             f"viewBox=\"0 0 {_CHART_WIDTH} {height}\" "
             f"width=\"{_CHART_WIDTH}\" height=\"{height}\">"]
    for index, label in enumerate(labels):
        top = index * group
        parts.append(
            f"<text x=\"{_LABEL_WIDTH - 8}\" "
            f"y=\"{top + group // 2 + 4}\" text-anchor=\"end\" "
            f"class=\"label\">{_escape(_truncate(label))}</text>")
        for offset, (name, color, values) in enumerate(series):
            value = values[index]
            y = top + offset * (bar + gap)
            if value is None:
                parts.append(
                    f"<text x=\"{_LABEL_WIDTH}\" y=\"{y + 10}\" "
                    f"class=\"value\">–</text>")
                continue
            width = max(1.0, plot_width * (value / max_value))
            parts.append("<g>")
            parts.append(f"<title>{_escape(label)} — {_escape(name)}: "
                         f"{value:.1f}{unit}</title>")
            parts.append(
                f"<rect x=\"{_LABEL_WIDTH}\" y=\"{y}\" "
                f"width=\"{width:.1f}\" height=\"{bar}\" rx=\"2\" "
                f"fill=\"{color}\"/>")
            parts.append(
                f"<text x=\"{_LABEL_WIDTH + width + 6:.1f}\" "
                f"y=\"{y + 10}\" class=\"value\">"
                f"{value:.1f}{unit}</text>")
            parts.append("</g>")
    parts.append("</svg>")
    return "".join(parts)


def severity_stack(counts: Dict[str, int]) -> str:
    """The severity mix: one stacked bar with 2px gaps plus count chips.

    Severities wear the reserved status palette (critical/serious/
    warning); each segment has a tooltip and the chips carry the icon-
    free textual identity, so color never stands alone.
    """
    total = sum(counts.values())
    if not total:
        return "<p class=\"empty\">no findings</p>"
    width = _CHART_WIDTH - 2 * len([c for c in counts.values() if c])
    parts = [f"<svg class=\"chart\" role=\"img\" "
             f"viewBox=\"0 0 {_CHART_WIDTH} 26\" "
             f"width=\"{_CHART_WIDTH}\" height=\"26\">"]
    x = 0.0
    for name, count in counts.items():
        if not count:
            continue
        segment = width * (count / total)
        color = SEVERITY_VARS.get(name, "var(--ink-muted)")
        parts.append("<g>")
        parts.append(f"<title>{_escape(name)}: {count} "
                     f"({100.0 * count / total:.1f}%)</title>")
        parts.append(f"<rect x=\"{x:.1f}\" y=\"4\" "
                     f"width=\"{segment:.1f}\" height=\"18\" rx=\"2\" "
                     f"fill=\"{color}\"/>")
        parts.append("</g>")
        x += segment + 2
    parts.append("</svg>")
    chips = "".join(
        f"<span class=\"chip\"><span class=\"swatch\" style=\"background:"
        f"{SEVERITY_VARS.get(name, 'var(--ink-muted)')}\"></span>"
        f"{_escape(name)} {count}</span>"
        for name, count in counts.items() if count)
    return "".join(parts) + f"<div class=\"legend\">{chips}</div>"


def sparkline(values: Sequence[float], *, width: int = 140,
              height: int = 28, label: str = "") -> str:
    """A 2px polyline sparkline with a latest-value dot."""
    if not values:
        return ""
    peak = max(values) or 1.0
    n = len(values)
    pad = 3
    points = []
    for index, value in enumerate(values):
        x = pad + (width - 2 * pad) * (index / max(1, n - 1))
        y = height - pad - (height - 2 * pad) * (value / peak)
        points.append(f"{x:.1f},{y:.1f}")
    series = " ".join(str(int(value)) for value in values)
    title = f"{label}: {series}" if label else series
    last_x, last_y = points[-1].split(",")
    return (f"<svg class=\"spark\" role=\"img\" "
            f"viewBox=\"0 0 {width} {height}\" width=\"{width}\" "
            f"height=\"{height}\"><title>{_escape(title)}</title>"
            f"<polyline points=\"{' '.join(points)}\" fill=\"none\" "
            f"stroke=\"var(--s1)\" stroke-width=\"2\" "
            f"stroke-linejoin=\"round\" stroke-linecap=\"round\"/>"
            f"<circle cx=\"{last_x}\" cy=\"{last_y}\" r=\"2.5\" "
            f"fill=\"var(--s1)\"/></svg>")
